#include "cluster/health.h"

#include <cmath>
#include <memory>

#include "common/strings.h"
#include "obs/obs.h"

namespace esharp::cluster {

namespace {
/// Time constant of the per-shard qps window (matches ServingMetrics).
constexpr double kRateTauSeconds = 10.0;
}  // namespace

const char* ShardStateName(ShardState state) {
  switch (state) {
    case ShardState::kHealthy:
      return "healthy";
    case ShardState::kDegraded:
      return "degraded";
    case ShardState::kDown:
      return "down";
  }
  return "unknown";
}

ShardHealthTracker::ShardHealthTracker(std::vector<std::string> names,
                                       Options options)
    : options_(options) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  shards_.reserve(names.size());
  for (std::string& name : names) {
    auto shard = std::make_unique<PerShard>();
    shard->name = std::move(name);
    const obs::Labels labels{{"shard", shard->name}};
    shard->requests_counter =
        registry.GetCounter("cluster.shard.requests", labels);
    shard->failures_counter =
        registry.GetCounter("cluster.shard.failures", labels);
    shard->hedges_counter = registry.GetCounter("cluster.shard.hedges", labels);
    shard->last_event_time = Now();
    shards_.push_back(std::move(shard));
  }
}

double ShardHealthTracker::Now() const {
  return options_.clock ? options_.clock() : obs::NowSeconds();
}

void ShardHealthTracker::RecordAttempt(PerShard& shard, double latency_seconds,
                                       bool ok, uint64_t snapshot_version,
                                       const Status& error) {
  shard.requests_counter->Increment();
  if (!ok) shard.failures_counter->Increment();
  ShardState before;
  ShardState after;
  ShardStatus status_copy;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    before = StateForLocked(shard);
    ++shard.requests;
    if (ok) {
      shard.consecutive_failures = 0;
      if (snapshot_version != 0) shard.snapshot_version = snapshot_version;
    } else {
      ++shard.failures;
      ++shard.consecutive_failures;
      shard.last_error = error.ToString();
    }
    shard.latency.Add(latency_seconds);
    double now = Now();
    double dt = now - shard.last_event_time;
    if (dt > 0) shard.ewma_events *= std::exp(-dt / kRateTauSeconds);
    shard.ewma_events += 1.0;
    shard.last_event_time = now;
    after = StateForLocked(shard);
    if (after != before) status_copy = StatusOfLocked(shard);
  }
  if (after == before) return;
  // Emit outside the shard lock: the event log takes its own mutex, and
  // the transition hook may do arbitrary work (trigger a flight-recorder
  // bundle) that must never run under health-tracker locks.
  obs::EventLog* events =
      options_.events != nullptr ? options_.events : &obs::EventLog::Global();
  obs::LogLevel severity = after == ShardState::kDown ? obs::LogLevel::kERROR
                           : after == ShardState::kDegraded
                               ? obs::LogLevel::kWARN
                               : obs::LogLevel::kINFO;
  events->Add(severity, "cluster",
              StrFormat("shard %s %s -> %s", status_copy.name.c_str(),
                        ShardStateName(before), ShardStateName(after)),
              {{"shard", status_copy.name},
               {"from", ShardStateName(before)},
               {"to", ShardStateName(after)},
               {"consecutive_failures",
                StrFormat("%llu", static_cast<unsigned long long>(
                                      status_copy.consecutive_failures))},
               {"last_error", status_copy.last_error}});
  if (options_.on_transition) options_.on_transition(status_copy, before);
}

void ShardHealthTracker::RecordSuccess(size_t shard, double latency_seconds,
                                       uint64_t snapshot_version) {
  RecordAttempt(*shards_[shard], latency_seconds, /*ok=*/true,
                snapshot_version, Status::OK());
}

void ShardHealthTracker::RecordFailure(size_t shard, double latency_seconds,
                                       const Status& error) {
  RecordAttempt(*shards_[shard], latency_seconds, /*ok=*/false,
                /*snapshot_version=*/0, error);
}

void ShardHealthTracker::RecordHedge(size_t shard) {
  PerShard& s = *shards_[shard];
  s.hedges_counter->Increment();
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.hedges;
}

ShardState ShardHealthTracker::StateForLocked(const PerShard& shard) const {
  if (shard.consecutive_failures == 0) return ShardState::kHealthy;
  if (shard.consecutive_failures < options_.down_threshold) {
    return ShardState::kDegraded;
  }
  return ShardState::kDown;
}

ShardState ShardHealthTracker::StateOf(size_t shard) const {
  const PerShard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return StateForLocked(s);
}

size_t ShardHealthTracker::healthy_shards() const {
  size_t healthy = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (StateOf(i) != ShardState::kDown) ++healthy;
  }
  return healthy;
}

double ShardHealthTracker::LatencyPercentileMs(double p) const {
  LatencyHistogram merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    merged.Merge(shard->latency);
  }
  return merged.Percentile(p) * 1e3;
}

size_t ShardHealthTracker::total_samples() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->latency.count();
  }
  return total;
}

ShardStatus ShardHealthTracker::StatusOfLocked(const PerShard& shard) const {
  ShardStatus status;
  status.name = shard.name;
  status.state = StateForLocked(shard);
  status.snapshot_version = shard.snapshot_version;
  status.requests = shard.requests;
  status.failures = shard.failures;
  status.hedges = shard.hedges;
  status.consecutive_failures = shard.consecutive_failures;
  double now = Now();
  double dt = now - shard.last_event_time;
  double decayed =
      dt > 0 ? shard.ewma_events * std::exp(-dt / kRateTauSeconds)
             : shard.ewma_events;
  status.window_qps = decayed / kRateTauSeconds;
  status.p50_ms = shard.latency.Percentile(50) * 1e3;
  status.p99_ms = shard.latency.Percentile(99) * 1e3;
  status.last_error = shard.last_error;
  return status;
}

ShardStatus ShardHealthTracker::StatusOf(size_t shard) const {
  const PerShard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return StatusOfLocked(s);
}

std::vector<ShardStatus> ShardHealthTracker::Snapshot() const {
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.push_back(StatusOfLocked(*shard));
  }
  return out;
}

std::string ShardHealthTracker::RenderTable() const {
  std::string out =
      "shard              state     snapshot      qps    p50_ms    p99_ms"
      "  requests  failures  hedges  last_error\n";
  for (const ShardStatus& s : Snapshot()) {
    out += StrFormat(
        "%-18s %-9s %8llu %8.1f %9.2f %9.2f %9llu %9llu %7llu  %s\n",
        s.name.c_str(), ShardStateName(s.state),
        static_cast<unsigned long long>(s.snapshot_version), s.window_qps,
        s.p50_ms, s.p99_ms, static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.failures),
        static_cast<unsigned long long>(s.hedges),
        s.last_error.empty() ? "-" : s.last_error.c_str());
  }
  return out;
}

}  // namespace esharp::cluster
