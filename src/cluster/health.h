#ifndef ESHARP_CLUSTER_HEALTH_H_
#define ESHARP_CLUSTER_HEALTH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace esharp::cluster {

/// \brief Router-side verdict on one shard, derived from its recent attempt
/// outcomes (no out-of-band health checks: the query traffic itself is the
/// probe, so a shard that answers queries is healthy by construction).
enum class ShardState {
  kHealthy,   ///< Last attempt succeeded.
  kDegraded,  ///< 1..down_threshold-1 consecutive failures.
  kDown,      ///< >= down_threshold consecutive failures.
};

const char* ShardStateName(ShardState state);

/// \brief Point-in-time stats of one shard, for /statusz and tests.
struct ShardStatus {
  std::string name;
  ShardState state = ShardState::kHealthy;
  uint64_t snapshot_version = 0;  ///< Last version a success reported.
  uint64_t requests = 0;          ///< Attempts, successes + failures.
  uint64_t failures = 0;
  uint64_t hedges = 0;
  uint64_t consecutive_failures = 0;
  double window_qps = 0;  ///< EWMA attempt rate (tau ~10 s).
  double p50_ms = 0;
  double p99_ms = 0;
  /// The most recent failure's Status::ToString() — over the HTTP
  /// transport this is the shard's own error detail carried through the
  /// wire ("Failed precondition: no snapshot published yet"), not just an
  /// HTTP code. Empty until a failure occurs; kept after recovery so
  /// /statusz still shows what last went wrong.
  std::string last_error;
};

/// \brief Per-shard outcome/latency accounting behind the router: feeds the
/// hedging trigger (cluster-wide latency percentile), the degraded-mode
/// decision (StateOf), the /statusz shard table and the quorum readiness
/// probe. Every attempt — primary or hedge, success or failure — is
/// recorded, so a down shard keeps accumulating evidence of being down.
///
/// All methods are thread-safe. Counters mirror into the global
/// MetricsRegistry as cluster.shard.* with a {shard=<name>} label.
class ShardHealthTracker {
 public:
  struct Options {
    /// Consecutive failures after which a shard reads kDown.
    uint64_t down_threshold = 3;
    /// Test seam: replaces obs::NowSeconds for the qps window.
    std::function<double()> clock;
    /// Invoked on every state transition (healthy <-> degraded <-> down),
    /// outside the per-shard lock, on whichever thread recorded the
    /// attempt. Must be thread-safe. The flight recorder's
    /// shard-down trigger hangs off this.
    std::function<void(const ShardStatus& status, ShardState previous)>
        on_transition;
    /// Transition events land here (null = obs::EventLog::Global()).
    obs::EventLog* events = nullptr;
  };

  explicit ShardHealthTracker(std::vector<std::string> names)
      : ShardHealthTracker(std::move(names), Options()) {}
  ShardHealthTracker(std::vector<std::string> names, Options options);

  size_t num_shards() const { return shards_.size(); }

  void RecordSuccess(size_t shard, double latency_seconds,
                     uint64_t snapshot_version);
  /// `error` becomes the shard's last_error (default keeps the old
  /// call shape working where the cause is unknown).
  void RecordFailure(size_t shard, double latency_seconds,
                     const Status& error = Status::Internal("unknown"));
  void RecordHedge(size_t shard);

  ShardState StateOf(size_t shard) const;

  /// Shards currently not kDown.
  size_t healthy_shards() const;

  /// Cluster-wide shard-attempt latency percentile in milliseconds,
  /// merged across shards (the hedging trigger's input). 0 until any
  /// attempt was recorded.
  double LatencyPercentileMs(double p) const;

  /// Total attempts recorded across all shards (hedging warmup gate).
  size_t total_samples() const;

  ShardStatus StatusOf(size_t shard) const;
  std::vector<ShardStatus> Snapshot() const;

  /// Plain-text shard table for the /statusz overview block.
  std::string RenderTable() const;

 private:
  struct PerShard {
    mutable std::mutex mu;
    std::string name;
    uint64_t requests = 0;
    uint64_t failures = 0;
    uint64_t hedges = 0;
    uint64_t consecutive_failures = 0;
    uint64_t snapshot_version = 0;
    std::string last_error;
    LatencyHistogram latency;  // seconds
    double ewma_events = 0;
    double last_event_time = 0;
    // Registry mirrors (never deleted; safe to cache).
    obs::Counter* requests_counter = nullptr;
    obs::Counter* failures_counter = nullptr;
    obs::Counter* hedges_counter = nullptr;
  };

  double Now() const;
  void RecordAttempt(PerShard& shard, double latency_seconds, bool ok,
                     uint64_t snapshot_version, const Status& error);
  ShardState StateForLocked(const PerShard& shard) const;
  ShardStatus StatusOfLocked(const PerShard& shard) const;

  Options options_;
  std::vector<std::unique_ptr<PerShard>> shards_;
};

}  // namespace esharp::cluster

#endif  // ESHARP_CLUSTER_HEALTH_H_
