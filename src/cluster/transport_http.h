#ifndef ESHARP_CLUSTER_TRANSPORT_HTTP_H_
#define ESHARP_CLUSTER_TRANSPORT_HTTP_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "cluster/shard.h"
#include "common/result.h"
#include "obs/debugz.h"
#include "serving/engine.h"

namespace esharp::cluster {

/// \brief Mounts the shard-side wire endpoints on a debugz server, so a
/// shard process reuses the HTTP stack it already runs for /statusz:
///   /shard/evidence?q=<query>[&deadline_ms=<d>][&trace=<traceparent>]
///                                                 the collection RPC
///   /shard/health                                 version + readiness line
/// The trace parameter is a TraceContext header; the shard serves under it
/// (shard spans carry the router's trace id) and echoes it on the response
/// profile line. A malformed header degrades to a fresh root, never an
/// error. Status mapping: 400 InvalidArgument, 503
/// Unavailable/FailedPrecondition (shedding, no snapshot), 504
/// DeadlineExceeded, 500 anything else; error bodies carry the shard's
/// Status::ToString(), so the router sees the true cause. The engine must
/// outlive the server.
void MountShardEndpoint(obs::DebugServer* server,
                        serving::ServingEngine* engine);

/// \brief Text wire format of one ShardEvidence (version line, then an
/// optional "profile trace=... queue=... expand=... detect=..." line when
/// the shard served under a trace, then one line per candidate). Exposed
/// for tests; candidate counts are pure integer formatting, so a
/// decode(encode(x)) round trip is exact — the bit-identical rank
/// guarantee survives the wire. Decode tolerates a missing profile line
/// (older shards) and drops a malformed one without failing the payload.
std::string EncodeShardEvidence(const ShardEvidence& evidence);
Result<ShardEvidence> DecodeShardEvidence(const std::string& body);

/// \brief Percent-encodes a query parameter value.
std::string UrlEncode(const std::string& value);

/// \brief HTTP transport: the shard is another process serving
/// MountShardEndpoint. Collect() is one blocking GET with a socket
/// timeout derived from the attempt deadline, so a dead host resolves as
/// a failed attempt instead of hanging the gather.
class HttpShardTransport final : public ShardTransport {
 public:
  struct Options {
    /// Socket timeout when the attempt carries no deadline.
    double default_timeout_seconds = 5.0;
    /// Slack added on top of a deadline-derived timeout, so the shard's
    /// own deadline answer (504) wins over a raw socket cut.
    double timeout_slack_seconds = 0.5;
  };

  HttpShardTransport(std::string name, std::string host, int port)
      : HttpShardTransport(std::move(name), std::move(host), port,
                           Options()) {}
  HttpShardTransport(std::string name, std::string host, int port,
                     Options options);

  const std::string& name() const override { return name_; }
  Result<ShardEvidence> Collect(const ShardRequest& request) override;

  /// Last snapshot version a successful Collect reported — no RPC, so a
  /// remote publish is only noticed (and the router cache invalidated)
  /// at the next successful contact.
  uint64_t VersionHint() const override {
    return last_version_.load(std::memory_order_acquire);
  }

 private:
  std::string name_;
  std::string host_;
  int port_;
  Options options_;
  std::atomic<uint64_t> last_version_{0};
};

}  // namespace esharp::cluster

#endif  // ESHARP_CLUSTER_TRANSPORT_HTTP_H_
