#include "cluster/merge.h"

namespace esharp::cluster {

std::vector<expert::CandidateEvidence> MergeShardEvidence(
    const std::vector<const std::vector<expert::CandidateEvidence>*>& pools) {
  return expert::MergeEvidenceViews(pools);
}

Result<std::vector<expert::RankedExpert>> MergeAndRank(
    const expert::ExpertDetector& detector,
    const std::vector<const std::vector<expert::CandidateEvidence>*>& pools) {
  return detector.RankCandidates(MergeShardEvidence(pools));
}

}  // namespace esharp::cluster
