#include "cluster/coldstart.h"

#include "common/strings.h"
#include "serving/snapshot_file.h"

namespace esharp::cluster {

std::string ShardSnapshotPath(const std::string& prefix, uint32_t shard,
                              uint32_t num_shards) {
  return prefix + StrFormat(".shard%u-of-%u.esnap", shard, num_shards);
}

Status SaveShardSnapshots(
    const PartitionedCorpus& partition,
    const community::CommunityStore& store,
    const std::vector<const expert::TermEvidenceIndex*>& evidence,
    const std::string& prefix) {
  if (!evidence.empty() && evidence.size() != partition.num_shards()) {
    return Status::InvalidArgument(
        "SaveShardSnapshots: ", evidence.size(), " evidence indexes for ",
        partition.num_shards(), " shards");
  }
  const uint32_t n = static_cast<uint32_t>(partition.num_shards());
  for (uint32_t i = 0; i < n; ++i) {
    const expert::TermEvidenceIndex* shard_evidence =
        evidence.empty() ? nullptr : evidence[i];
    ESHARP_RETURN_NOT_OK(serving::SaveSnapshotFile(
        ShardSnapshotPath(prefix, i, n), *partition.shards[i], store,
        shard_evidence));
  }
  return Status::OK();
}

Result<std::vector<ColdShard>> LoadShardSnapshots(
    const std::string& prefix, uint32_t num_shards,
    core::ESharpOptions options) {
  std::vector<ColdShard> shards;
  shards.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    const std::string path = ShardSnapshotPath(prefix, i, num_shards);
    Result<serving::SnapshotManager::ColdStartArtifacts> loaded =
        serving::SnapshotManager::LoadSnapshot(path, options);
    if (!loaded.ok()) {
      return Status::IOError("shard ", i, " cold start failed: ",
                             loaded.status().message());
    }
    serving::SnapshotManager::ColdStartArtifacts artifacts =
        loaded.MoveValueUnsafe();
    ColdShard shard;
    shard.corpus = std::move(artifacts.corpus);
    shard.manager = std::move(artifacts.manager);
    shard.info = artifacts.info;
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace esharp::cluster
