#include "cluster/introspect.h"

#include <utility>

#include "common/strings.h"

namespace esharp::cluster {

obs::Probe ClusterQuorumReadiness(const ClusterRouter* router, size_t quorum) {
  return [router, quorum]() {
    size_t total = router->num_shards();
    size_t need = quorum > 0 ? quorum : total / 2 + 1;
    size_t healthy = router->health().healthy_shards();
    obs::ProbeResult result;
    if (healthy < need) {
      result.ok = false;
      result.detail = StrFormat("quorum lost: %zu/%zu shards up (need %zu)",
                                healthy, total, need);
      return result;
    }
    if (healthy < total) {
      // Ready but degraded: partial answers are being served.
      result.detail = StrFormat("degraded: %zu/%zu shards up (quorum %zu)",
                                healthy, total, need);
      return result;
    }
    result.detail = StrFormat("%zu/%zu shards up", healthy, total);
    return result;
  };
}

std::vector<obs::SloObjective> DefaultClusterObjectives(
    const ClusterRouter* router, ClusterSloThresholds thresholds) {
  std::vector<obs::SloObjective> objectives;

  obs::SloObjective p99;
  p99.name = "latency_p99";
  p99.kind = obs::SloObjective::Kind::kValue;
  p99.value = [router]() {
    return router->metrics().Report().p99_ms / 1000.0;  // seconds
  };
  p99.target = thresholds.p99_latency_seconds;
  objectives.push_back(std::move(p99));

  obs::SloObjective errors;
  errors.name = "error_rate";
  errors.kind = obs::SloObjective::Kind::kRatio;
  errors.bad = [router]() {
    serving::MetricsReport report = router->metrics().Report();
    return static_cast<double>(report.errors + report.timeouts);
  };
  errors.total = [router]() {
    return static_cast<double>(router->metrics().Report().completed);
  };
  errors.target = thresholds.error_rate;
  objectives.push_back(std::move(errors));

  obs::SloObjective down;
  down.name = "shard_down_ratio";
  down.kind = obs::SloObjective::Kind::kValue;
  down.value = [router]() {
    size_t total = router->num_shards();
    if (total == 0) return 0.0;
    size_t healthy = router->health().healthy_shards();
    return static_cast<double>(total - healthy) /
           static_cast<double>(total);
  };
  down.target = thresholds.shard_down_ratio;
  objectives.push_back(std::move(down));

  return objectives;
}

void MountClusterEndpoints(obs::DebugServer* server, ClusterRouter* router,
                           ClusterIntrospectionOptions options) {
  obs::StatuszOptions statusz;
  statusz.build_info = std::move(options.build_info);
  statusz.tracer = options.tracer;
  statusz.watchdog = options.watchdog;
  statusz.timeseries = options.timeseries;
  statusz.recorder = options.recorder;
  statusz.readiness.emplace_back(
      "cluster", ClusterQuorumReadiness(router, options.quorum));
  statusz.overview = [router]() {
    serving::MetricsReport report = router->metrics().Report();
    serving::CacheStats cache = router->cache_stats();
    std::string out;
    out += StrFormat(
        "cluster:  %zu shards (%zu up), version %016llx\n",
        router->num_shards(), router->health().healthy_shards(),
        static_cast<unsigned long long>(router->ClusterVersion()));
    out += StrFormat(
        "requests: %llu completed, %llu shed, %.1f qps (window)\n",
        static_cast<unsigned long long>(report.completed),
        static_cast<unsigned long long>(report.shed), report.window_qps);
    out += StrFormat("latency:  p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
                     report.p50_ms, report.p95_ms, report.p99_ms);
    out += StrFormat("cache:    %.1f%% hit rate\n", cache.HitRate() * 100.0);
    out += StrFormat("admission: %zu / %zu in flight\n", router->in_flight(),
                     router->options().max_in_flight);
    out += "\n";
    out += router->health().RenderTable();
    return out;
  };
  obs::MountStatusz(server, std::move(statusz));
  // The slow-query log rides the same server: /queryz lists the slowest
  // and most recent routed queries, ?trace=<id> serves one query's
  // stitched Chrome trace.
  obs::MountQueryz(server, &router->slow_queries());
}

}  // namespace esharp::cluster
