#ifndef ESHARP_CLUSTER_MERGE_H_
#define ESHARP_CLUSTER_MERGE_H_

#include <vector>

#include "common/result.h"
#include "expert/detector.h"

namespace esharp::cluster {

/// \brief K-way merge of per-shard evidence pools into the union pool.
///
/// Why this is exactly rank-equivalent to an unsharded engine (the
/// cluster test suite proves it bit-identical on randomized worlds):
///
///  1. Shards hold *disjoint* tweet sets covering the source corpus
///     (PartitionCorpus), and every CandidateEvidence count is a sum of
///     per-tweet 0/1 contributions — so summing a user's counts across
///     shards reproduces the unsharded count exactly (uint64 addition is
///     exact and commutative; the is_author/is_mentioned flags OR).
///  2. Every shard expands against the *same shared* CommunityStore, so
///     the expansion term set is identical everywhere, and "tweet matches
///     query" depends only on the tweet's text — a user is a candidate in
///     the union iff it is a candidate on some shard.
///  3. Shard pools arrive sorted-unique by user (the MergeEvidence
///     invariant QueryEvidence maintains), so the k-way merge emits the
///     same ascending-user vector the unsharded detect stage builds.
///  4. Ranking happens once, at the router, with a detector over the
///     union corpus: TS/MI/RI denominators (per-user corpus totals) and
///     the candidate-pool z-scores see exactly the unsharded inputs, so
///     every double comes out of the same sequence of operations.
///
/// Null entries in `pools` (shards that failed or missed the deadline)
/// are skipped — that is the degraded partial-result mode, which trades
/// completeness, never correctness of the merge itself.
std::vector<expert::CandidateEvidence> MergeShardEvidence(
    const std::vector<const std::vector<expert::CandidateEvidence>*>& pools);

/// \brief Merge + the single cluster-level rank step. `detector` must be
/// built over the union corpus (the paper's §3 features divide by
/// corpus-wide per-user totals; partition-local denominators would skew
/// every score).
Result<std::vector<expert::RankedExpert>> MergeAndRank(
    const expert::ExpertDetector& detector,
    const std::vector<const std::vector<expert::CandidateEvidence>*>& pools);

}  // namespace esharp::cluster

#endif  // ESHARP_CLUSTER_MERGE_H_
