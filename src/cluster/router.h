#ifndef ESHARP_CLUSTER_ROUTER_H_
#define ESHARP_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/health.h"
#include "cluster/shard.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "expert/detector.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/trace_context.h"
#include "serving/cache.h"
#include "serving/engine.h"
#include "serving/metrics.h"

namespace esharp::cluster {

/// \brief Configuration of the query router.
struct RouterOptions {
  /// Worker threads when the router owns its pool (pool == nullptr). The
  /// scatter fan-out runs here, one task per shard attempt.
  size_t num_threads = 4;
  /// Existing pool to dispatch onto instead of owning one; must outlive
  /// the router. In-process clusters share one pool between the router
  /// and the shard engines without deadlock risk: router tasks call the
  /// shard engine synchronously, and shard engines collect help-first, so
  /// neither ever blocks waiting for pool capacity.
  ThreadPool* pool = nullptr;
  /// Admission bound, as in ServingOptions: beyond it requests are shed
  /// with Unavailable instead of queueing without bound.
  size_t max_in_flight = 256;
  /// Default end-to-end deadline in milliseconds; <= 0 means none.
  double default_deadline_ms = 0;
  /// Fraction of the *remaining* client budget granted to each shard
  /// attempt, leaving headroom for the merge + rank step. In (0, 1].
  double shard_deadline_fraction = 0.9;
  /// Router-level result cache over final ranked answers (shards keep no
  /// result caches of their own on this path — their snapshot-time
  /// TermEvidenceIndex is the per-shard cache).
  bool enable_cache = true;
  serving::CacheOptions cache;
  /// Hedged requests (the tail-at-scale defense): when a shard has not
  /// answered after hedge_factor * cluster-p<hedge_percentile> latency, a
  /// second attempt is sent and the first finisher wins. With the
  /// in-process transport both attempts hit the same engine, so a hedge
  /// only helps against transient slowness (queue wait behind an
  /// expensive request) — exactly the tail this tier produces.
  bool enable_hedging = true;
  double hedge_percentile = 95;
  double hedge_factor = 1.0;
  /// Floor on the hedge delay, so sub-millisecond in-process latencies do
  /// not turn every request into two.
  double hedge_min_ms = 1.0;
  /// Recorded shard attempts required before the trigger arms (an empty
  /// histogram would hedge everything instantly).
  size_t hedge_warmup = 64;
  /// Minimum shards that must answer for a (degraded) response; below it
  /// the query fails. 1 = serve whatever answered.
  size_t min_shards_answered = 1;
  /// Consecutive failures after which a shard reads kDown.
  uint64_t down_threshold = 3;
  /// Optional scatter tracing: a "cluster_request" span with a "gather"
  /// child, annotated with shard/hedge counts. Must outlive the router.
  obs::Tracer* tracer = nullptr;
  /// Head sampling for router-minted trace roots: every Nth request is
  /// sampled (1 = all, 0 = none); only sampled requests record spans into
  /// `tracer`, which keeps span-ring contention off the cache-hit fast
  /// path at high qps. Requests arriving with their own valid trace keep
  /// the caller's sampling decision. Profiles and the slow-query log are
  /// independent of this knob (they only engage on the scatter path).
  uint64_t trace_sample_period = 1;
  /// Per-query profiles: every routed query (cache hits excepted — they
  /// never scatter) is stitched into an obs::QueryProfile — one lane per
  /// shard, every attempt with its deadline and the shard's piggybacked
  /// breakdown — and recorded in the slow-query log behind /queryz.
  /// Independent of `tracer`: profiles are per-query trees, the tracer is
  /// the flat span ring.
  bool enable_profiles = true;
  obs::SlowQueryLogOptions slow_query_log;
  /// Test seam: clock for the health tracker's qps window.
  std::function<double()> clock;
  /// Forwarded to ShardHealthTracker::Options::on_transition: fires on
  /// every shard state transition, outside tracker locks, from the thread
  /// that recorded the attempt. Must be thread-safe. Wiring a flight
  /// recorder's shard-down trigger lives here (examples/cluster_demo).
  std::function<void(const ShardStatus& status, ShardState previous)>
      on_shard_transition;
};

/// \brief One routed answer, with cluster provenance.
struct ClusterResponse {
  std::vector<expert::RankedExpert> experts;
  /// Combined per-shard version hints (cache-validation key, not a
  /// globally meaningful generation number).
  uint64_t cluster_version = 0;
  bool from_cache = false;
  size_t shards_total = 0;
  /// Shards whose evidence made it into the answer. The degraded-mode
  /// annotation: shards_answered < shards_total means partial coverage.
  size_t shards_answered = 0;
  bool degraded = false;
  size_t hedges_fired = 0;
  /// Merge + rank time at the router, milliseconds.
  double merge_ms = 0;
  double total_ms = 0;
  /// Distributed trace context this query was served under (the request's
  /// when it carried a valid one, else a router-minted root). Its
  /// TraceIdHex() is the /queryz?trace= lookup key for this query's
  /// profile and the exemplar label on the latency histogram.
  obs::TraceContext trace{};
};

/// \brief The cluster tier's front door: scatter-gather over N shard
/// transports, k-way evidence merge, one union-corpus rank step, hedging,
/// per-shard deadlines and health tracking, and a router-level result
/// cache.
///
/// Request lifecycle:
///
///   Query -> admission (shed over max_in_flight)
///         -> cache probe (validated against the combined shard versions)
///         -> scatter: one Collect task per shard on the pool, each with
///            shard_deadline_fraction of the remaining client budget
///         -> gather: wait for all shards, firing one hedge per late
///            shard once the latency trigger arms; stop at the deadline
///            with whatever answered
///         -> merge evidence pools + rank once on the union detector
///         -> degraded bookkeeping (shards_answered/N), cache fill
///            (complete answers only), metrics
///
/// All public methods are thread-safe. The destructor drains: no shard
/// attempt can still touch router state after it returns.
class ClusterRouter {
 public:
  /// `detector` must rank over the union corpus (see cluster/merge.h) and
  /// must outlive the router, as must everything shard transports point
  /// at. Shard count = shards.size(); shard i keeps that identity in
  /// health accounting for its lifetime.
  ClusterRouter(std::vector<std::unique_ptr<ShardTransport>> shards,
                const expert::ExpertDetector* detector,
                RouterOptions options = {});
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Serves one query on the caller's thread (scatter legs run on the
  /// pool). Reuses serving::QueryRequest so clients and benches drive
  /// either tier with the same request type.
  Result<ClusterResponse> Query(serving::QueryRequest request);

  size_t num_shards() const { return shards_.size(); }
  const std::vector<std::unique_ptr<ShardTransport>>& shards() const {
    return shards_;
  }

  const ShardHealthTracker& health() const { return health_; }
  ShardHealthTracker* mutable_health() { return &health_; }

  /// The slow-query log of stitched per-query profiles (/queryz). Empty
  /// when RouterOptions::enable_profiles is false.
  const obs::SlowQueryLog& slow_queries() const { return slow_log_; }

  const serving::ServingMetrics& metrics() const { return metrics_; }
  serving::ServingMetrics* mutable_metrics() { return &metrics_; }

  serving::CacheStats cache_stats() const { return cache_.stats(); }

  /// Combined per-shard version hints: changes whenever any shard's last
  /// known snapshot version changes, which is what invalidates cached
  /// cluster answers.
  uint64_t ClusterVersion() const;

  void InvalidateCache() { cache_.InvalidateAll(); }

  const RouterOptions& options() const { return options_; }

  size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Atomically rebinds the union detector used by the merge + rank step.
  /// The streaming ingest path calls this after publishing a new corpus
  /// generation (the union detector must rank over the union corpus, which
  /// grows with every batch). Queries already past the rank step keep the
  /// detector they loaded — the shared_ptr pins it — so a rebind never
  /// invalidates an in-flight merge. Pass the corresponding shard publishes
  /// first, then rebind, then InvalidateCache(): cached answers ranked by
  /// the old detector are invalidated by the shard version change.
  void SetUnionDetector(
      std::shared_ptr<const expert::ExpertDetector> detector) {
    detector_override_.store(std::move(detector), std::memory_order_release);
  }

 private:
  /// Shared state of one query's gather. Heap-owned and co-owned by every
  /// scatter/hedge task, so attempts finishing after the router gave up
  /// on them (deadline) still land somewhere valid.
  struct GatherState;

  bool TryAdmit();
  Result<ClusterResponse> Execute(const serving::QueryRequest& request,
                                  const Timer& queue_timer,
                                  double deadline_ms);
  /// Launches one attempt (primary or hedge) against shard `index`.
  void LaunchAttempt(const std::shared_ptr<GatherState>& state, size_t index,
                     bool is_hedge);

  double EffectiveDeadline(const serving::QueryRequest& request) const {
    return request.deadline_ms >= 0 ? request.deadline_ms
                                    : options_.default_deadline_ms;
  }

  std::vector<std::unique_ptr<ShardTransport>> shards_;
  const expert::ExpertDetector* detector_;
  /// When set, wins over detector_ (SetUnionDetector); loaded once per
  /// ranked merge.
  std::atomic<std::shared_ptr<const expert::ExpertDetector>>
      detector_override_{nullptr};
  RouterOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;  // owned_pool_.get() or options_.pool
  ShardHealthTracker health_;
  obs::SlowQueryLog slow_log_;
  serving::ShardedResultCache cache_;
  serving::ServingMetrics metrics_;
  Timer clock_;  // monotonic time base for cache TTLs
  std::atomic<size_t> in_flight_{0};
  /// Round-robin position of the trace head sampler (trace_sample_period).
  std::atomic<uint64_t> trace_counter_{0};
  /// Attempts still running or queued anywhere; the destructor spins on
  /// zero after draining the owned pool (mirrors ServingEngine).
  std::atomic<size_t> outstanding_{0};
};

}  // namespace esharp::cluster

#endif  // ESHARP_CLUSTER_ROUTER_H_
