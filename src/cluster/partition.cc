#include "cluster/partition.h"

namespace esharp::cluster {

PartitionedCorpus PartitionCorpus(const microblog::TweetCorpus& corpus,
                                  uint32_t num_shards) {
  Partitioner partitioner(num_shards);
  PartitionedCorpus out;
  out.shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    out.shards.push_back(std::make_unique<microblog::TweetCorpus>());
  }
  // Users first: AddUser requires dense in-order ids, and replicating the
  // whole profile table keeps global UserIds valid on every shard.
  for (size_t u = 0; u < corpus.num_users(); ++u) {
    const microblog::UserProfile& user =
        corpus.user(static_cast<microblog::UserId>(u));
    for (auto& shard : out.shards) shard->AddUser(user);
  }
  for (size_t t = 0; t < corpus.num_tweets(); ++t) {
    const microblog::Tweet& tweet = corpus.tweet(static_cast<uint32_t>(t));
    microblog::TweetCorpus& shard =
        *out.shards[partitioner.ShardOfId(tweet.id)];
    shard.AddTweet(tweet.author, tweet.text, tweet.mentions,
                   tweet.retweet_count);
  }
  return out;
}

}  // namespace esharp::cluster
