#ifndef ESHARP_CLUSTER_COLDSTART_H_
#define ESHARP_CLUSTER_COLDSTART_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/partition.h"
#include "common/result.h"
#include "community/store.h"
#include "expert/evidence_index.h"
#include "serving/snapshot.h"

namespace esharp::cluster {

/// Per-shard binary snapshots: each shard of the serving tier cold-starts
/// by mapping its own file (serving/snapshot_file.h format) holding its
/// sub-corpus, the replicated community store, and optionally its
/// shard-local term-evidence index. The snapshot builder and the loader
/// derive the same `<prefix>.shard<i>-of-<n>.esnap` names, so a restarted
/// shard process only needs the prefix and its index.
std::string ShardSnapshotPath(const std::string& prefix, uint32_t shard,
                              uint32_t num_shards);

/// Saves one file per shard. `evidence` is either empty (no EVIDENCE
/// sections; shards cold-start with live collection) or exactly one
/// per-shard index aligned with `partition.shards`.
Status SaveShardSnapshots(
    const PartitionedCorpus& partition,
    const community::CommunityStore& store,
    const std::vector<const expert::TermEvidenceIndex*>& evidence,
    const std::string& prefix);

/// One cold-started shard: its decoded sub-corpus plus a SnapshotManager
/// with generation 1 published (see SnapshotManager::LoadSnapshot for the
/// lifetime and evidence semantics).
struct ColdShard {
  std::shared_ptr<microblog::TweetCorpus> corpus;
  std::unique_ptr<serving::SnapshotManager> manager;
  serving::SnapshotFileInfo info;
};

/// Cold-starts every shard of an `num_shards`-way tier from its snapshot
/// file. Fails (naming the shard) if any file is missing, corrupt, or
/// version-skewed — the caller then falls back to the pipeline path.
Result<std::vector<ColdShard>> LoadShardSnapshots(
    const std::string& prefix, uint32_t num_shards,
    core::ESharpOptions options = {});

}  // namespace esharp::cluster

#endif  // ESHARP_CLUSTER_COLDSTART_H_
