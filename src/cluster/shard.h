#ifndef ESHARP_CLUSTER_SHARD_H_
#define ESHARP_CLUSTER_SHARD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "expert/detector.h"
#include "serving/engine.h"

namespace esharp::cluster {

/// \brief One scatter leg's request: the raw query plus the deadline the
/// router carved out of the client's budget for this shard attempt.
struct ShardRequest {
  std::string query;
  /// Milliseconds this attempt may spend, queue wait included; <= 0 means
  /// no deadline. Always explicit — the router's budget overrides any
  /// engine-side default, so one slow shard cannot ignore the client.
  double deadline_ms = 0;
  /// Distributed trace context of this attempt: the router's query trace
  /// id plus a per-attempt child span id. Crosses the wire as a header
  /// line so shard-side spans carry the router's trace id.
  obs::TraceContext trace{};
};

/// \brief One shard's answer: its partition's merged candidate evidence.
/// Counts are partition-local (see serving::EvidenceResponse); the router
/// sums them across shards before ranking once.
struct ShardEvidence {
  std::vector<expert::CandidateEvidence> evidence;  // sorted-unique by user
  uint64_t snapshot_version = 0;
  size_t terms = 0;
  double shard_ms = 0;  ///< Shard-side end-to-end latency, milliseconds.
  /// The trace context the shard served under (echoes the request's when
  /// valid — proof of cross-process adoption).
  obs::TraceContext trace{};
  /// Shard-side timing breakdown, piggybacked for the router's per-query
  /// profile: where shard_ms actually went.
  double queue_ms = 0;
  double expand_ms = 0;
  double detect_ms = 0;
};

/// \brief Transport seam between the router and one shard engine. Two
/// implementations: InProcessShard below (shards as objects in the router's
/// process) and HttpShardTransport (shards as separate processes behind
/// their debugz server; see cluster/transport_http.h). The router treats
/// both identically, so correctness tests run in-process and the same
/// router binary fronts remote shards unchanged.
///
/// Collect() must be thread-safe and must return (never hang): the router's
/// hedging and degraded modes rely on every attempt eventually resolving.
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Stable display name ("shard-3", "10.0.0.7:8080").
  virtual const std::string& name() const = 0;

  /// One collection attempt against this shard.
  virtual Result<ShardEvidence> Collect(const ShardRequest& request) = 0;

  /// Last known snapshot version of the shard, without an RPC — folded
  /// into the router's cluster-wide cache-validation version, so it must
  /// be cheap (an atomic load) and only as fresh as the last contact.
  virtual uint64_t VersionHint() const = 0;
};

/// \brief In-process transport: the shard is a ServingEngine in the same
/// process. The engine must outlive the transport.
class InProcessShard final : public ShardTransport {
 public:
  InProcessShard(std::string name, serving::ServingEngine* engine)
      : name_(std::move(name)), engine_(engine) {}

  const std::string& name() const override { return name_; }

  Result<ShardEvidence> Collect(const ShardRequest& request) override {
    serving::QueryRequest query;
    query.query = request.query;
    // 0 = explicitly none; never fall through to the engine default (-1).
    query.deadline_ms = request.deadline_ms > 0 ? request.deadline_ms : 0;
    query.trace = request.trace;
    Result<serving::EvidenceResponse> result =
        engine_->QueryEvidence(std::move(query));
    if (!result.ok()) return result.status();
    serving::EvidenceResponse response = result.MoveValueUnsafe();
    ShardEvidence evidence;
    evidence.evidence = std::move(response.evidence);
    evidence.snapshot_version = response.snapshot_version;
    evidence.terms = response.terms;
    evidence.shard_ms = response.total_ms;
    evidence.trace = response.trace;
    evidence.queue_ms = response.queue_ms;
    evidence.expand_ms = response.stages.expand_ms;
    evidence.detect_ms = response.stages.detect_ms;
    return evidence;
  }

  uint64_t VersionHint() const override {
    return engine_->snapshot_version();
  }

  serving::ServingEngine* engine() const { return engine_; }

 private:
  std::string name_;
  serving::ServingEngine* engine_;
};

}  // namespace esharp::cluster

#endif  // ESHARP_CLUSTER_SHARD_H_
