#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "cluster/merge.h"
#include "common/hash.h"
#include "common/strings.h"

namespace esharp::cluster {

namespace {

std::vector<std::string> ShardNames(
    const std::vector<std::unique_ptr<ShardTransport>>& shards) {
  std::vector<std::string> names;
  names.reserve(shards.size());
  for (const auto& shard : shards) names.push_back(shard->name());
  return names;
}

}  // namespace

/// Shared state of one query's gather: co-owned by the router's caller
/// thread and every scatter/hedge task. A shard resolves with its *first*
/// finishing attempt (success or failure); later attempts still feed the
/// health tracker but cannot change the answer.
struct ClusterRouter::GatherState {
  std::string query;
  double deadline_ms = 0;  // client budget; <= 0 none
  Timer timer;             // copies the request's queue timer time base
  /// The query's trace; each attempt serves under a deterministic child.
  obs::TraceContext trace;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<bool> finished;  // shard resolved (guarded by mu)
  std::vector<bool> hedged;
  std::vector<std::optional<ShardEvidence>> results;
  std::vector<Status> errors;
  size_t resolved = 0;
  /// Child-span index of the next attempt (guarded by mu).
  uint64_t attempt_counter = 0;
  /// Profile lanes in the making: every attempt ever launched per shard,
  /// completed in place when it finishes (guarded by mu). A straggler
  /// finishing after the router harvested still completes its record here
  /// harmlessly — the profile was built from a copy.
  std::vector<std::vector<obs::LaneAttempt>> attempts;

  explicit GatherState(size_t num_shards)
      : finished(num_shards, false),
        hedged(num_shards, false),
        results(num_shards),
        errors(num_shards, Status::OK()),
        attempts(num_shards) {}
};

ClusterRouter::ClusterRouter(
    std::vector<std::unique_ptr<ShardTransport>> shards,
    const expert::ExpertDetector* detector, RouterOptions options)
    : shards_(std::move(shards)),
      detector_(detector),
      options_(std::move(options)),
      owned_pool_(options_.pool == nullptr
                      ? std::make_unique<ThreadPool>(options_.num_threads)
                      : nullptr),
      pool_(options_.pool != nullptr ? options_.pool : owned_pool_.get()),
      health_(ShardNames(shards_),
              ShardHealthTracker::Options{options_.down_threshold,
                                          options_.clock,
                                          options_.on_shard_transition}),
      slow_log_(options_.slow_query_log),
      cache_(options_.cache) {}

ClusterRouter::~ClusterRouter() {
  // Mirror ServingEngine: drain the owned pool (runs + joins queued
  // attempts), then wait out attempts queued on an external pool — the
  // outstanding_ decrement is the last router-state access an attempt
  // makes, so zero means no task can still touch shards_ or health_.
  owned_pool_.reset();
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

uint64_t ClusterRouter::ClusterVersion() const {
  uint64_t combined = shards_.size();
  for (const auto& shard : shards_) {
    combined = HashCombine(combined, shard->VersionHint());
  }
  return combined;
}

bool ClusterRouter::TryAdmit() {
  size_t current = in_flight_.load(std::memory_order_relaxed);
  while (current < options_.max_in_flight) {
    if (in_flight_.compare_exchange_weak(current, current + 1,
                                         std::memory_order_acq_rel)) {
      return true;
    }
  }
  metrics_.RecordShed();
  return false;
}

Result<ClusterResponse> ClusterRouter::Query(serving::QueryRequest request) {
  if (!TryAdmit()) {
    return Status::Unavailable("router overloaded: ", options_.max_in_flight,
                               " requests in flight");
  }
  Timer queue_timer;
  Result<ClusterResponse> result =
      Execute(request, queue_timer, EffectiveDeadline(request));
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return result;
}

void ClusterRouter::LaunchAttempt(const std::shared_ptr<GatherState>& state,
                                  size_t index, bool is_hedge) {
  if (is_hedge) health_.RecordHedge(index);
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Submit([this, state, index, is_hedge] {
    ShardRequest shard_request;
    shard_request.query = state->query;
    bool expired = false;
    if (state->deadline_ms > 0) {
      // The shard gets a fraction of what is *left* of the client budget,
      // so queue wait and earlier stages are charged to the same clock
      // and the router keeps headroom for merge + rank.
      double remaining = state->deadline_ms - state->timer.ElapsedMillis();
      if (remaining <= 0) {
        expired = true;
      } else {
        shard_request.deadline_ms =
            remaining * options_.shard_deadline_fraction;
      }
    }
    // Open this attempt's profile record and mint its child trace context;
    // the record completes in place under the same mutex when the attempt
    // resolves below.
    size_t attempt_slot;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      shard_request.trace = state->trace.Child(state->attempt_counter++);
      obs::LaneAttempt rec;
      rec.hedge = is_hedge;
      rec.start_ms = state->timer.ElapsedMillis();
      rec.deadline_ms = shard_request.deadline_ms;
      state->attempts[index].push_back(std::move(rec));
      attempt_slot = state->attempts[index].size() - 1;
    }
    Timer attempt_timer;
    Result<ShardEvidence> attempt =
        expired ? Result<ShardEvidence>(Status::DeadlineExceeded(
                      "client budget exhausted before shard attempt"))
                : shards_[index]->Collect(shard_request);
    double seconds = attempt_timer.ElapsedSeconds();
    if (attempt.ok()) {
      health_.RecordSuccess(index, seconds,
                            attempt.ValueOrDie().snapshot_version);
    } else {
      health_.RecordFailure(index, seconds, attempt.status());
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      obs::LaneAttempt& rec = state->attempts[index][attempt_slot];
      rec.dur_ms = seconds * 1e3;
      if (attempt.ok()) {
        const ShardEvidence& evidence = attempt.ValueOrDie();
        rec.outcome = "ok";
        rec.candidates = evidence.evidence.size();
        // The breakdown is trustworthy when the shard echoed our trace
        // (in-process always does; over HTTP it proves the profile line
        // belongs to this attempt, not a stale or garbled response).
        rec.has_breakdown = evidence.trace.SameTrace(shard_request.trace);
        rec.queue_ms = evidence.queue_ms;
        rec.expand_ms = evidence.expand_ms;
        rec.detect_ms = evidence.detect_ms;
      } else {
        rec.outcome = "error";
        rec.detail = attempt.status().ToString();
      }
      if (!state->finished[index]) {
        state->finished[index] = true;
        if (attempt.ok()) {
          rec.won = true;  // first finisher's evidence is the one used
          state->results[index] = attempt.MoveValueUnsafe();
        } else {
          state->errors[index] = attempt.status();
        }
        ++state->resolved;
      }
    }
    state->cv.notify_all();
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

Result<ClusterResponse> ClusterRouter::Execute(
    const serving::QueryRequest& request, const Timer& queue_timer,
    double deadline_ms) {
  if (request.query.empty()) {
    metrics_.RecordError();
    return Status::InvalidArgument("empty query");
  }
  if (shards_.empty()) {
    metrics_.RecordError();
    return Status::FailedPrecondition("router has no shards");
  }
  const size_t n = shards_.size();

  // Every routed query serves under one 128-bit trace id: the caller's
  // when it brought a valid context, a fresh root otherwise. Attempts get
  // deterministic children of it, and the shards' own spans adopt it.
  // Router-minted roots are head-sampled (trace_sample_period); only
  // sampled requests touch the span ring, so tracing stays off the
  // cache-hit fast path under load.
  obs::TraceContext trace_ctx;
  if (request.trace.valid()) {
    trace_ctx = request.trace;
  } else {
    const uint64_t period = options_.trace_sample_period;
    bool sampled =
        period == 1 ||
        (period > 0 &&
         trace_counter_.fetch_add(1, std::memory_order_relaxed) % period ==
             0);
    trace_ctx = obs::TraceContext::NewRoot(sampled);
  }
  [[maybe_unused]] obs::Tracer* tracer =
      trace_ctx.sampled ? options_.tracer : nullptr;

  ESHARP_SPAN(request_span, tracer, "cluster_request", nullptr);
  request_span.SetTrace(trace_ctx.trace_hi, trace_ctx.trace_lo);
  ESHARP_SPAN_ANNOTATE(request_span, "trace", trace_ctx.TraceIdHex());
  ESHARP_SPAN_ANNOTATE(request_span, "shards", static_cast<int64_t>(n));

  ClusterResponse response;
  response.trace = trace_ctx;
  response.shards_total = n;
  response.cluster_version = ClusterVersion();

  const std::string key = ToLowerAscii(request.query);
  const bool use_cache = options_.enable_cache && !request.bypass_cache;
  if (use_cache) {
    std::optional<serving::CachedResult> hit =
        cache_.Get(key, clock_.ElapsedSeconds(), response.cluster_version);
    if (hit.has_value()) {
      response.experts = std::move(hit->experts);
      response.from_cache = true;
      response.shards_answered = n;
      response.total_ms = queue_timer.ElapsedMillis();
      ESHARP_SPAN_ANNOTATE(request_span, "outcome", "cache_hit");
      metrics_.RecordRequest(queue_timer.ElapsedSeconds(), {},
                             /*cache_hit=*/true, /*deduplicated=*/false);
      return response;
    }
  }

  // Scatter.
  const double scatter_start_ms = queue_timer.ElapsedMillis();
  ESHARP_SPAN(gather_span, tracer, "gather", &request_span);
  auto state = std::make_shared<GatherState>(n);
  state->query = request.query;
  state->deadline_ms = deadline_ms;
  state->timer = queue_timer;
  state->trace = trace_ctx;
  for (size_t i = 0; i < n; ++i) {
    LaunchAttempt(state, i, /*is_hedge=*/false);
  }

  // Gather. The hedge trigger arms only after warmup samples exist; its
  // delay is measured from this request's submission, so "late" means
  // late relative to what the cluster recently served.
  double hedge_delay_ms = -1;
  if (options_.enable_hedging &&
      health_.total_samples() >= options_.hedge_warmup) {
    hedge_delay_ms =
        std::max(options_.hedge_min_ms,
                 health_.LatencyPercentileMs(options_.hedge_percentile) *
                     options_.hedge_factor);
  }
  size_t hedges_fired = 0;
  bool deadline_hit = false;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    for (;;) {
      if (state->resolved == n) break;
      double elapsed = state->timer.ElapsedMillis();
      if (deadline_ms > 0 && elapsed >= deadline_ms) {
        deadline_hit = true;
        break;
      }
      if (hedge_delay_ms >= 0 && elapsed >= hedge_delay_ms) {
        for (size_t i = 0; i < n; ++i) {
          if (!state->finished[i] && !state->hedged[i]) {
            state->hedged[i] = true;
            ++hedges_fired;
            // Submitting under state->mu is safe: pool workers take the
            // pool mutex only before running a task, never while holding
            // state->mu, so there is no lock cycle.
            LaunchAttempt(state, i, /*is_hedge=*/true);
          }
        }
        hedge_delay_ms = -1;  // at most one hedge wave per request
        continue;
      }
      // Next timed event: the deadline and/or the hedge trigger; plain
      // wait when neither is pending (every attempt resolves eventually).
      double next_ms = -1;
      if (deadline_ms > 0) next_ms = deadline_ms - elapsed;
      if (hedge_delay_ms >= 0) {
        double until_hedge = hedge_delay_ms - elapsed;
        next_ms = next_ms < 0 ? until_hedge : std::min(next_ms, until_hedge);
      }
      if (next_ms < 0) {
        state->cv.wait(lock);
      } else {
        state->cv.wait_for(
            lock, std::chrono::duration<double, std::milli>(next_ms));
      }
    }
  }

  // Harvest under the lock; the shared_ptr keeps GatherState alive for
  // any straggler attempt, but `pools` borrows from it, so hold the state
  // until the merge below is done (we do — `state` outlives this scope).
  std::vector<const std::vector<expert::CandidateEvidence>*> pools(n, nullptr);
  size_t answered = 0;
  bool any_shard_timeout = false;
  Status first_error = Status::OK();
  std::vector<std::vector<obs::LaneAttempt>> lane_attempts;
  std::vector<std::string> lane_annotations(n);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    for (size_t i = 0; i < n; ++i) {
      if (state->finished[i] && state->results[i].has_value()) {
        pools[i] = &state->results[i]->evidence;
        ++answered;
      } else if (state->finished[i]) {
        if (state->errors[i].IsDeadlineExceeded()) any_shard_timeout = true;
        if (first_error.ok()) first_error = state->errors[i];
        lane_annotations[i] = "failed: " + state->errors[i].ToString();
      } else {
        any_shard_timeout = true;  // still out when the budget expired
        lane_annotations[i] = "no answer before deadline";
      }
    }
    // Snapshot the attempt records for the profile while stragglers may
    // still be completing theirs in place.
    lane_attempts = state->attempts;
  }
  gather_span.End();
  ESHARP_SPAN_ANNOTATE(request_span, "answered",
                       static_cast<int64_t>(answered));
  ESHARP_SPAN_ANNOTATE(request_span, "hedges",
                       static_cast<int64_t>(hedges_fired));
  double gather_ms = queue_timer.ElapsedMillis();
  response.shards_answered = answered;
  response.hedges_fired = hedges_fired;
  response.degraded = answered < n;

  // Stitch and retain this query's profile: the router's stages plus one
  // lane per shard, with every attempt's outcome. Runs on every
  // post-scatter exit, so a timed-out or failed query still leaves a
  // complete, inspectable picture in /queryz — those are exactly the
  // queries worth debugging.
  auto record_profile = [&](const char* outcome) {
    if (!options_.enable_profiles) return;
    auto profile = std::make_shared<obs::QueryProfile>();
    profile->trace = trace_ctx;
    profile->query = request.query;
    profile->outcome = outcome;
    profile->total_ms = queue_timer.ElapsedMillis();
    profile->merge_ms = response.merge_ms;
    profile->deadline_ms = deadline_ms > 0 ? deadline_ms : 0;
    profile->shards_total = n;
    profile->shards_answered = answered;
    profile->hedges_fired = hedges_fired;
    profile->degraded = response.degraded;
    profile->recorded_at_seconds = obs::NowSeconds();
    profile->stages.push_back(
        {"gather", scatter_start_ms, gather_ms - scatter_start_ms});
    if (response.merge_ms > 0) {
      profile->stages.push_back({"merge_rank", gather_ms, response.merge_ms});
    }
    profile->lanes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      profile->lanes[i].name = shards_[i]->name();
      profile->lanes[i].annotation = lane_annotations[i];
      profile->lanes[i].attempts = std::move(lane_attempts[i]);
    }
    slow_log_.Record(std::move(profile));
  };

  if (answered == 0 || answered < options_.min_shards_answered) {
    if (deadline_hit || any_shard_timeout) {
      metrics_.RecordTimeout();
      ESHARP_SPAN_ANNOTATE(request_span, "outcome", "timeout");
      record_profile("timeout");
      return Status::DeadlineExceeded(
          "only ", answered, " of ", n, " shards answered within ",
          deadline_ms, " ms (need ",
          std::max<size_t>(options_.min_shards_answered, 1), ")");
    }
    metrics_.RecordError();
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", "error");
    record_profile("error");
    if (!first_error.ok()) return first_error;
    return Status::Unavailable("no shard answered");
  }

  // Merge + the single cluster-level rank step (see cluster/merge.h for
  // why this reproduces the unsharded ranking bit for bit).
  Timer merge_timer;
  ESHARP_SPAN(rank_span, tracer, "merge_rank", &request_span);
  // Keep the loaded override alive across the whole rank step: a concurrent
  // SetUnionDetector must not reclaim the detector mid-merge.
  std::shared_ptr<const expert::ExpertDetector> override_detector =
      detector_override_.load(std::memory_order_acquire);
  Result<std::vector<expert::RankedExpert>> ranked = MergeAndRank(
      override_detector != nullptr ? *override_detector : *detector_, pools);
  rank_span.End();
  if (!ranked.ok()) {
    metrics_.RecordError();
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", "error");
    record_profile("error");
    return ranked.status();
  }
  response.experts = ranked.MoveValueUnsafe();
  response.merge_ms = merge_timer.ElapsedMillis();
  response.total_ms = queue_timer.ElapsedMillis();

  // Complete answers only: a degraded answer is correct for the shards
  // that spoke but must not outlive the outage in the cache.
  if (use_cache && !response.degraded) {
    cache_.Put(key,
               serving::CachedResult{response.experts,
                                     response.cluster_version},
               clock_.ElapsedSeconds());
  }
  serving::StageTimings stages;
  stages.detect_ms = gather_ms;
  stages.rank_ms = response.merge_ms;
  // The trace id rides the latency histogram as an exemplar, so a p99
  // bucket in /varz points straight at a retained /queryz profile.
  metrics_.RecordRequest(queue_timer.ElapsedSeconds(), stages,
                         /*cache_hit=*/false, /*deduplicated=*/false,
                         trace_ctx.TraceIdHex());
  ESHARP_SPAN_ANNOTATE(request_span, "outcome",
                       response.degraded ? "degraded" : "ok");
  record_profile(response.degraded ? "degraded" : "ok");
  return response;
}

}  // namespace esharp::cluster
