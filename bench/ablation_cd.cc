// Ablation: community-detection backends.
//
// Compares the three detectors this repository implements on planted-
// partition graphs of growing size:
//  * Newman's sequential greedy heuristic (§4.2.1) — quality reference;
//  * the paper's parallel neighborhood-merge algorithm, native in-memory;
//  * the same algorithm executed as SQL plans on the relational engine,
//    serial and parallel (§4.2.2-4.2.3).
//
// google-benchmark timings plus a printed quality table (modularity and
// iteration counts), since the paper's pitch is that the SQL formulation
// buys distribution at modest quality cost versus the sequential greedy.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "community/newman.h"
#include "community/parallel_cd.h"
#include "community/sql_cd.h"
#include "common/rng.h"

namespace {

using namespace esharp;

graph::Graph PlantedGraph(size_t groups, size_t group_size, uint64_t seed) {
  Rng rng(seed);
  graph::Graph g;
  size_t n = groups * group_size;
  for (size_t i = 0; i < n; ++i) g.AddVertex("v" + std::to_string(i));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      bool same = (a / group_size) == (b / group_size);
      if (rng.Bernoulli(same ? 0.6 : 8.0 / static_cast<double>(n))) {
        (void)g.AddEdge(static_cast<graph::VertexId>(a),
                        static_cast<graph::VertexId>(b),
                        0.2 + 0.8 * rng.NextDouble());
      }
    }
  }
  g.Finalize();
  return g;
}

void BM_NewmanGreedy(benchmark::State& state) {
  graph::Graph g = PlantedGraph(static_cast<size_t>(state.range(0)), 12, 7);
  for (auto _ : state) {
    auto r = community::DetectCommunitiesNewman(g);
    benchmark::DoNotOptimize(r);
  }
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
  state.counters["edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_NewmanGreedy)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ParallelNative(benchmark::State& state) {
  graph::Graph g = PlantedGraph(static_cast<size_t>(state.range(0)), 12, 7);
  ThreadPool pool(8);
  community::ParallelCdOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    auto r = community::DetectCommunitiesParallel(g, options);
    benchmark::DoNotOptimize(r);
  }
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
}
BENCHMARK(BM_ParallelNative)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_SqlSerial(benchmark::State& state) {
  graph::Graph g = PlantedGraph(static_cast<size_t>(state.range(0)), 12, 7);
  for (auto _ : state) {
    auto r = community::DetectCommunitiesSql(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlSerial)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_SqlParallel(benchmark::State& state) {
  graph::Graph g = PlantedGraph(static_cast<size_t>(state.range(0)), 12, 7);
  ThreadPool pool(8);
  community::SqlCdOptions options;
  options.pool = &pool;
  options.num_partitions = 8;
  for (auto _ : state) {
    auto r = community::DetectCommunitiesSql(g, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlParallel)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void PrintQualityTable() {
  std::printf("\n=== Ablation: detection quality (planted partition) ===\n");
  std::printf("%-10s %-22s %-14s %-12s\n", "Vertices", "Algorithm",
              "Modularity", "Iterations");
  for (size_t groups : {8, 16, 32}) {
    graph::Graph g = PlantedGraph(groups, 12, 7);
    auto newman = *community::DetectCommunitiesNewman(g);
    auto parallel = *community::DetectCommunitiesParallel(g);
    auto sql = *community::DetectCommunitiesSql(g);
    std::printf("%-10zu %-22s %-14.3f %-12zu\n", g.num_vertices(),
                "newman-greedy", newman.modularity_per_iteration.back(),
                newman.iterations);
    std::printf("%-10zu %-22s %-14.3f %-12zu\n", g.num_vertices(),
                "parallel-native", parallel.modularity_per_iteration.back(),
                parallel.iterations);
    std::printf("%-10zu %-22s %-14.3f %-12zu\n", g.num_vertices(),
                "sql-engine", sql.modularity_per_iteration.back(),
                sql.iterations);
  }
  std::printf(
      "Shape: parallel/sql modularity tracks the greedy reference closely\n"
      "while converging in a handful of bulk iterations instead of one\n"
      "merge at a time.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke (used by the `bench`-labelled ctest smoke runs) skips the
  // quality table, which runs all three detectors at the largest size.
  bool smoke = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!smoke) PrintQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
