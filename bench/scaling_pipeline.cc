// Scaling: the offline pipeline as the simulated log grows.
//
// The paper's pipeline digests 998 GB with 65 VMs; this bench sweeps the
// simulated world size and the worker count, printing per-stage wall time
// so the scaling behavior (extraction ~linear in click records, clustering
// ~linear in edges x iterations; workers help both) is visible.
//
// A second sweep runs the kSqlEngine clustering backend at 8 partitions
// twice per world — once on the reference row kernels, once on the
// vectorized columnar kernels — and cross-checks the two EXPLAIN ANALYZE
// profiles node by node: identical plans, identical exact row counts and
// batch counts, different wall time. That is the headline measurement of
// DESIGN.md "Columnar execution".
//
// Usage: scaling_pipeline [--json=PATH] [--smoke]
//
// --smoke shrinks both sweeps to one tiny world each (CI-speed; used by the
// `bench`-labelled ctest smoke runs).
//
// Every sweep point is also published as bench.pipeline.* gauges
// (labelled {workers=...,domains=...}, and {path=...,domains=...} for the
// backend comparison) into a bench-local MetricsRegistry and written as a
// JSON snapshot (default BENCH_pipeline.json; schema in EXPERIMENTS.md).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.h"
#include "esharp/pipeline.h"
#include "obs/obs.h"
#include "querylog/generator.h"

using namespace esharp;

namespace {

struct Row {
  size_t domains;
  size_t queries;
  size_t edges;
  double extraction_s;
  double clustering_s;
};

querylog::GeneratedLog MakeWorld(size_t domains_per_category,
                                 size_t* num_domains) {
  querylog::UniverseOptions uo;
  uo.num_categories = 6;
  uo.domains_per_category = domains_per_category;
  uo.seed = 42;
  querylog::TopicUniverse universe = *querylog::TopicUniverse::Generate(uo);
  *num_domains = universe.num_domains();
  querylog::GeneratorOptions go;
  go.seed = 43;
  return *GenerateQueryLog(universe, go);
}

ThreadPool& Pool() {
  static ThreadPool pool(8);
  return pool;
}

Row RunOne(size_t domains_per_category, size_t threads) {
  size_t num_domains = 0;
  querylog::GeneratedLog gen = MakeWorld(domains_per_category, &num_domains);

  ResourceMeter meter;
  core::OfflineOptions options;
  options.pool = threads > 1 ? &Pool() : nullptr;
  options.num_partitions = threads;
  options.meter = &meter;
  core::OfflineArtifacts artifacts = *RunOfflinePipeline(gen.log, options);

  Row row;
  row.domains = num_domains;
  row.queries = artifacts.similarity_graph.num_vertices();
  row.edges = artifacts.similarity_graph.num_edges();
  row.extraction_s = meter.Get("Extraction").seconds;
  row.clustering_s = meter.Get("Clustering").seconds;
  return row;
}

/// One kSqlEngine clustering run (8 partitions); profiles the first
/// iteration's main plan into `explain`.
Row RunSqlOne(size_t domains_per_category, bool use_columnar,
              sql::ExplainStats* explain) {
  size_t num_domains = 0;
  querylog::GeneratedLog gen = MakeWorld(domains_per_category, &num_domains);

  ResourceMeter meter;
  core::OfflineOptions options;
  options.backend = core::ClusteringBackend::kSqlEngine;
  options.pool = &Pool();
  options.num_partitions = 8;
  options.sql_use_columnar = use_columnar;
  options.meter = &meter;
  options.explain = explain;
  core::OfflineArtifacts artifacts = *RunOfflinePipeline(gen.log, options);

  Row row;
  row.domains = num_domains;
  row.queries = artifacts.similarity_graph.num_vertices();
  row.edges = artifacts.similarity_graph.num_edges();
  row.extraction_s = meter.Get("Extraction").seconds;
  row.clustering_s = meter.Get("Clustering").seconds;
  return row;
}

/// Node-by-node comparison of two EXPLAIN ANALYZE trees: same operators,
/// same exact row counts, same batch counts (wall time excluded — that is
/// the quantity under test). Returns false and prints the first divergence.
bool SameCounts(const sql::ExplainStats& a, const sql::ExplainStats& b) {
  if (a.op != b.op || a.rows_in != b.rows_in || a.rows_out != b.rows_out ||
      a.batches != b.batches || a.children.size() != b.children.size()) {
    std::printf("EXPLAIN divergence: %s (in=%llu out=%llu batches=%zu) vs "
                "%s (in=%llu out=%llu batches=%zu)\n",
                a.op.c_str(), static_cast<unsigned long long>(a.rows_in),
                static_cast<unsigned long long>(a.rows_out), a.batches,
                b.op.c_str(), static_cast<unsigned long long>(b.rows_in),
                static_cast<unsigned long long>(b.rows_out), b.batches);
    return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!SameCounts(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

/// Publishes one sweep point as bench.pipeline.<field>{workers=,domains=}.
void PublishRow(obs::MetricsRegistry& registry, size_t threads,
                const Row& row) {
  const obs::Labels point{{"workers", StrFormat("%zu", threads)},
                          {"domains", StrFormat("%zu", row.domains)}};
  registry.GetGauge("bench.pipeline.queries", point)
      ->Set(static_cast<double>(row.queries));
  registry.GetGauge("bench.pipeline.edges", point)
      ->Set(static_cast<double>(row.edges));
  registry.GetGauge("bench.pipeline.extraction_seconds", point)
      ->Set(row.extraction_s);
  registry.GetGauge("bench.pipeline.clustering_seconds", point)
      ->Set(row.clustering_s);
}

/// Publishes one backend-comparison point as
/// bench.pipeline.sql_clustering_seconds{path=,domains=}.
void PublishSqlRow(obs::MetricsRegistry& registry, const char* path,
                   const Row& row) {
  const obs::Labels point{{"path", path},
                          {"domains", StrFormat("%zu", row.domains)}};
  registry.GetGauge("bench.pipeline.sql_clustering_seconds", point)
      ->Set(row.clustering_s);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_pipeline.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<size_t> thread_sweep =
      smoke ? std::vector<size_t>{8} : std::vector<size_t>{1, 8};
  const std::vector<size_t> dpc_sweep =
      smoke ? std::vector<size_t>{20} : std::vector<size_t>{20, 60, 120, 240};
  const std::vector<size_t> sql_dpc_sweep =
      smoke ? std::vector<size_t>{20} : std::vector<size_t>{20, 60};

  obs::MetricsRegistry registry;
  std::printf("\n=== Scaling: offline pipeline vs world size ===\n");
  std::printf("%-10s %-9s %-9s %-9s %-14s %-14s\n", "Workers", "Domains",
              "Queries", "Edges", "Extraction(s)", "Clustering(s)");
  for (size_t threads : thread_sweep) {
    for (size_t dpc : dpc_sweep) {
      Row row = RunOne(dpc, threads);
      std::printf("%-10zu %-9zu %-9zu %-9zu %-14.3f %-14.3f\n", threads,
                  row.domains, row.queries, row.edges, row.extraction_s,
                  row.clustering_s);
      PublishRow(registry, threads, row);
    }
  }
  std::printf(
      "\nShape to check: both stages grow roughly linearly with the world.\n"
      "On multi-core machines the worker pool cuts extraction wall time;\n"
      "clustering's native backend is bookkeeping-bound at this scale.\n");

  std::printf("\n=== kSqlEngine clustering: row vs columnar kernels "
              "(8 partitions) ===\n");
  std::printf("%-9s %-9s %-9s %-12s %-14s %-9s %-8s\n", "Domains", "Queries",
              "Edges", "Row(s)", "Columnar(s)", "Speedup", "EXPLAIN");
  bool explain_ok = true;
  for (size_t dpc : sql_dpc_sweep) {
    sql::ExplainStats row_explain, col_explain;
    Row row_run = RunSqlOne(dpc, /*use_columnar=*/false, &row_explain);
    Row col_run = RunSqlOne(dpc, /*use_columnar=*/true, &col_explain);
    bool same = SameCounts(row_explain, col_explain);
    explain_ok = explain_ok && same;
    double speedup = col_run.clustering_s > 0
                         ? row_run.clustering_s / col_run.clustering_s
                         : 0;
    std::printf("%-9zu %-9zu %-9zu %-12.3f %-14.3f %7.2fx %-8s\n",
                row_run.domains, row_run.queries, row_run.edges,
                row_run.clustering_s, col_run.clustering_s, speedup,
                same ? "same" : "DIFFER");
    PublishSqlRow(registry, "row", row_run);
    PublishSqlRow(registry, "columnar", col_run);
    registry.GetGauge("bench.pipeline.sql_columnar_speedup",
                      {{"domains", StrFormat("%zu", row_run.domains)}})
        ->Set(speedup);
  }
  std::printf(
      "\nBoth backends run the identical plan — the EXPLAIN column asserts\n"
      "exact per-operator row and batch counts match — so the speedup is\n"
      "purely the vectorized kernels and copy-free partitioning.\n");

  Status written = registry.WriteJsonFile(json_path);
  if (!written.ok()) {
    ESHARP_LOG(WARN) << "could not write " << json_path << ": "
                     << written.ToString();
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return explain_ok ? 0 : 1;
}
