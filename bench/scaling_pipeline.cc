// Scaling: the offline pipeline as the simulated log grows.
//
// The paper's pipeline digests 998 GB with 65 VMs; this bench sweeps the
// simulated world size and the worker count, printing per-stage wall time
// so the scaling behavior (extraction ~linear in click records, clustering
// ~linear in edges x iterations; workers help both) is visible.
//
// Usage: scaling_pipeline [--json=PATH]
//
// Every sweep point is also published as bench.pipeline.* gauges
// (labelled {workers=...,domains=...}) into a bench-local MetricsRegistry
// and written as a JSON snapshot (default BENCH_pipeline.json; schema in
// EXPERIMENTS.md).

#include <cstdio>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "esharp/pipeline.h"
#include "obs/obs.h"
#include "querylog/generator.h"

using namespace esharp;

namespace {

struct Row {
  size_t domains;
  size_t queries;
  size_t edges;
  double extraction_s;
  double clustering_s;
};

Row RunOne(size_t domains_per_category, size_t threads) {
  querylog::UniverseOptions uo;
  uo.num_categories = 6;
  uo.domains_per_category = domains_per_category;
  uo.seed = 42;
  querylog::TopicUniverse universe = *querylog::TopicUniverse::Generate(uo);
  querylog::GeneratorOptions go;
  go.seed = 43;
  querylog::GeneratedLog gen = *GenerateQueryLog(universe, go);

  static ThreadPool pool(8);
  ResourceMeter meter;
  core::OfflineOptions options;
  options.pool = threads > 1 ? &pool : nullptr;
  options.num_partitions = threads;
  options.meter = &meter;
  core::OfflineArtifacts artifacts = *RunOfflinePipeline(gen.log, options);

  Row row;
  row.domains = universe.num_domains();
  row.queries = artifacts.similarity_graph.num_vertices();
  row.edges = artifacts.similarity_graph.num_edges();
  row.extraction_s = meter.Get("Extraction").seconds;
  row.clustering_s = meter.Get("Clustering").seconds;
  return row;
}

/// Publishes one sweep point as bench.pipeline.<field>{workers=,domains=}.
void PublishRow(obs::MetricsRegistry& registry, size_t threads,
                const Row& row) {
  const obs::Labels point{{"workers", StrFormat("%zu", threads)},
                          {"domains", StrFormat("%zu", row.domains)}};
  registry.GetGauge("bench.pipeline.queries", point)
      ->Set(static_cast<double>(row.queries));
  registry.GetGauge("bench.pipeline.edges", point)
      ->Set(static_cast<double>(row.edges));
  registry.GetGauge("bench.pipeline.extraction_seconds", point)
      ->Set(row.extraction_s);
  registry.GetGauge("bench.pipeline.clustering_seconds", point)
      ->Set(row.clustering_s);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  obs::MetricsRegistry registry;
  std::printf("\n=== Scaling: offline pipeline vs world size ===\n");
  std::printf("%-10s %-9s %-9s %-9s %-14s %-14s\n", "Workers", "Domains",
              "Queries", "Edges", "Extraction(s)", "Clustering(s)");
  for (size_t threads : {size_t{1}, size_t{8}}) {
    for (size_t dpc : {20, 60, 120, 240}) {
      Row row = RunOne(dpc, threads);
      std::printf("%-10zu %-9zu %-9zu %-9zu %-14.3f %-14.3f\n", threads,
                  row.domains, row.queries, row.edges, row.extraction_s,
                  row.clustering_s);
      PublishRow(registry, threads, row);
    }
  }
  std::printf(
      "\nShape to check: both stages grow roughly linearly with the world.\n"
      "On multi-core machines the worker pool cuts extraction wall time;\n"
      "clustering's native backend is bookkeeping-bound at this scale.\n");

  Status written = registry.WriteJsonFile(json_path);
  if (!written.ok()) {
    ESHARP_LOG(WARN) << "could not write " << json_path << ": "
                     << written.ToString();
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
