// Ablation: the weekly refresh (§6.3: "The offline part of our system runs
// weekly on a production cluster").
//
// Simulates two consecutive weeks of search logs over the same topic
// universe and compares re-clustering week 2 from scratch against warm-
// starting from week 1's communities: iterations, wall time and the
// stability of the resulting collection.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/metrics.h"

int main() {
  using namespace esharp;
  bench::PrintHeader("Ablation: weekly refresh, cold vs warm start");

  querylog::UniverseOptions uo;
  uo.seed = 3001;
  querylog::TopicUniverse universe = *querylog::TopicUniverse::Generate(uo);

  querylog::GeneratorOptions week1_options;
  week1_options.seed = 3002;
  querylog::GeneratedLog week1 = *GenerateQueryLog(universe, week1_options);
  querylog::GeneratorOptions week2_options;
  week2_options.seed = 3003;
  querylog::GeneratedLog week2 = *GenerateQueryLog(universe, week2_options);

  core::OfflineOptions base;
  core::OfflineArtifacts week1_artifacts =
      *RunOfflinePipeline(week1.log, base);

  Timer cold_timer;
  core::OfflineArtifacts cold = *RunOfflinePipeline(week2.log, base);
  double cold_seconds = cold_timer.ElapsedSeconds();

  core::OfflineOptions incremental = base;
  incremental.previous_store = &week1_artifacts.store;
  Timer warm_timer;
  core::OfflineArtifacts warm = *RunOfflinePipeline(week2.log, incremental);
  double warm_seconds = warm_timer.ElapsedSeconds();

  std::printf("%-26s %-12s %-12s\n", "Metric (week 2)", "Cold", "Warm");
  std::printf("%-26s %-12zu %-12zu\n", "Clustering iterations",
              cold.communities_per_iteration.size() - 1,
              warm.communities_per_iteration.size() - 1);
  std::printf("%-26s %-12.3f %-12.3f\n", "Pipeline seconds", cold_seconds,
              warm_seconds);
  std::printf("%-26s %-12zu %-12zu\n", "Communities",
              cold.store.num_communities(), warm.store.num_communities());
  std::printf("%-26s %-12.3f %-12.3f\n", "Final modularity",
              cold.modularity_per_iteration.back(),
              warm.modularity_per_iteration.back());

  eval::ClusterQuality cold_quality =
      eval::EvaluateClustering(cold.store, week2.log);
  eval::ClusterQuality warm_quality =
      eval::EvaluateClustering(warm.store, week2.log);
  std::printf("%-26s %-12.3f %-12.3f\n", "Purity vs ground truth",
              cold_quality.purity, warm_quality.purity);
  std::printf("%-26s %-12.3f %-12.3f\n", "NMI vs ground truth",
              cold_quality.nmi, warm_quality.nmi);

  std::printf(
      "\nShape to check: the warm start converges in fewer iterations with\n"
      "matching quality — why a weekly production cadence is affordable.\n");
  return 0;
}
