// Micro-benchmarks: row-store kernels vs their vectorized columnar
// counterparts, on the exact operator shapes the clustering iteration runs
// (edge-shaped fact table, small community dimension table).
//
// For each kernel — filter, project, join, aggregate, hash partition — the
// row path times the operators.h kernel over a materialized row table and
// the columnar path times the columnar.h kernel over a pre-built
// ColumnTable. The conversion is deliberately outside the timed region: on
// the clustering hot path tables stay columnar end-to-end (base tables are
// converted once at catalog registration), so steady-state kernel cost is
// the number that matters. Every pair is cross-checked for exact multiset
// equality before its timings are reported.
//
// Usage: micro_sql [--rows=N] [--iters=K] [--json=PATH]
//
// Results are published as bench.sql.* gauges (labelled
// {kernel=...,path="row"|"columnar"}) into a bench-local MetricsRegistry
// and written as a JSON snapshot (default BENCH_sql.json; schema in
// EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "obs/obs.h"
#include "sqlengine/columnar.h"
#include "sqlengine/parallel.h"

namespace {

using namespace esharp;
using namespace esharp::sql;

// Edge-shaped fact table: (query1, query2, distance), the join/aggregate
// input of every clustering iteration.
Table EdgeTable(size_t rows, size_t vertices, uint64_t seed) {
  Rng rng(seed);
  TableBuilder b({{"query1", DataType::kString},
                  {"query2", DataType::kString},
                  {"distance", DataType::kDouble}});
  for (size_t i = 0; i < rows; ++i) {
    b.AddRow({Value::String("v" + std::to_string(rng.Uniform(vertices))),
              Value::String("v" + std::to_string(rng.Uniform(vertices))),
              Value::Double(rng.NextDouble())});
  }
  return b.Build();
}

// Community dimension table: (comm_name, query), one row per vertex.
Table CommunityTable(size_t vertices) {
  TableBuilder b({{"comm_name", DataType::kString},
                  {"query", DataType::kString}});
  for (size_t v = 0; v < vertices; ++v) {
    b.AddRow({Value::String("c" + std::to_string(v / 8)),
              Value::String("v" + std::to_string(v))});
  }
  return b.Build();
}

// Best-of-K wall time of `fn` (minimum filters out scheduler noise, the
// usual micro-benchmark convention).
double BestOf(size_t iters, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < iters; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

struct KernelResult {
  const char* kernel;
  size_t rows_in = 0;
  size_t rows_out = 0;
  double row_s = 0;
  double columnar_s = 0;
  double Speedup() const { return columnar_s > 0 ? row_s / columnar_s : 0; }
};

void Fail(const char* kernel, const std::string& why) {
  std::fprintf(stderr, "micro_sql: %s: %s\n", kernel, why.c_str());
  std::exit(1);
}

// Asserts a row-kernel output and a columnar-kernel output are the same
// multiset of rows (the equivalence the randomized test suite enforces;
// re-checked here so a timing table can never ship from divergent kernels).
void CheckSame(const char* kernel, const Table& row_out,
               const ColumnTable& col_out) {
  Result<ColumnTable> converted = ColumnTable::FromTable(row_out);
  if (!converted.ok()) Fail(kernel, converted.status().ToString());
  if (!ColumnTablesEqualAsMultisets(*converted, col_out)) {
    Fail(kernel, "row and columnar outputs differ");
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t rows = 200000;
  size_t iters = 5;
  std::string json_path = "BENCH_sql.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      rows = std::strtoul(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::strtoul(argv[i] + 8, nullptr, 10);
    }
  }
  if (rows < 16) rows = 16;
  if (iters < 1) iters = 1;
  const size_t vertices = rows / 8;
  constexpr size_t kPartitions = 8;

  std::printf("\n=== Micro: row vs columnar sqlengine kernels ===\n");
  std::printf("fact table: %zu rows, %zu distinct vertices; best of %zu\n\n",
              rows, vertices, iters);

  Table edges = EdgeTable(rows, vertices, 3);
  Table communities = CommunityTable(vertices);
  ColumnTable edges_ct = *ColumnTable::FromTable(edges);
  ColumnTable communities_ct = *ColumnTable::FromTable(communities);

  std::vector<KernelResult> results;

  {
    KernelResult r{"filter"};
    ExprPtr pred = Gt(Col("distance"), LitDouble(0.5));
    Table row_out = *Filter(edges, pred);
    ColumnTable col_out = *ColumnarFilter(edges_ct, pred);
    CheckSame(r.kernel, row_out, col_out);
    r.rows_in = edges.num_rows();
    r.rows_out = row_out.num_rows();
    r.row_s = BestOf(iters, [&] { (void)*Filter(edges, pred); });
    r.columnar_s = BestOf(iters, [&] { (void)*ColumnarFilter(edges_ct, pred); });
    results.push_back(r);
  }

  {
    KernelResult r{"project"};
    std::vector<ProjectedColumn> cols = {
        {Col("query1"), "q"},
        {Mul(Col("distance"), LitDouble(2.0)), "d2"}};
    Table row_out = *Project(edges, cols);
    ColumnTable col_out = *ColumnarProject(edges_ct, cols);
    CheckSame(r.kernel, row_out, col_out);
    r.rows_in = edges.num_rows();
    r.rows_out = row_out.num_rows();
    r.row_s = BestOf(iters, [&] { (void)*Project(edges, cols); });
    r.columnar_s =
        BestOf(iters, [&] { (void)*ColumnarProject(edges_ct, cols); });
    results.push_back(r);
  }

  {
    KernelResult r{"join"};
    Table row_out = *HashJoin(edges, communities, {"query1"}, {"query"});
    ColumnTable col_out =
        *ColumnarHashJoin(edges_ct, communities_ct, {"query1"}, {"query"});
    CheckSame(r.kernel, row_out, col_out);
    r.rows_in = edges.num_rows() + communities.num_rows();
    r.rows_out = row_out.num_rows();
    r.row_s = BestOf(iters, [&] {
      (void)*HashJoin(edges, communities, {"query1"}, {"query"});
    });
    r.columnar_s = BestOf(iters, [&] {
      (void)*ColumnarHashJoin(edges_ct, communities_ct, {"query1"}, {"query"});
    });
    results.push_back(r);
  }

  {
    KernelResult r{"aggregate"};
    std::vector<AggSpec> aggs = {SumOf(Col("distance"), "w"), CountStar("n")};
    Table row_out = *HashAggregate(edges, {"query1"}, aggs);
    ColumnTable col_out = *ColumnarHashAggregate(edges_ct, {"query1"}, aggs);
    CheckSame(r.kernel, row_out, col_out);
    r.rows_in = edges.num_rows();
    r.rows_out = row_out.num_rows();
    r.row_s =
        BestOf(iters, [&] { (void)*HashAggregate(edges, {"query1"}, aggs); });
    r.columnar_s = BestOf(
        iters, [&] { (void)*ColumnarHashAggregate(edges_ct, {"query1"}, aggs); });
    results.push_back(r);
  }

  {
    KernelResult r{"hash_partition"};
    std::vector<Table> row_out = *HashPartition(edges, {"query1"}, kPartitions);
    std::vector<ColumnTable> col_out =
        *ColumnarHashPartition(edges_ct, {"query1"}, kPartitions);
    if (row_out.size() != col_out.size()) {
      Fail(r.kernel, "partition counts differ");
    }
    for (size_t p = 0; p < row_out.size(); ++p) {
      CheckSame(r.kernel, row_out[p], col_out[p]);
    }
    r.rows_in = edges.num_rows();
    r.rows_out = edges.num_rows();
    r.row_s = BestOf(
        iters, [&] { (void)*HashPartition(edges, {"query1"}, kPartitions); });
    r.columnar_s = BestOf(iters, [&] {
      (void)*ColumnarHashPartition(edges_ct, {"query1"}, kPartitions);
    });
    results.push_back(r);
  }

  std::printf("%-16s %-10s %-10s %-12s %-12s %-9s\n", "Kernel", "RowsIn",
              "RowsOut", "Row(ms)", "Columnar(ms)", "Speedup");
  obs::MetricsRegistry registry;
  registry.GetGauge("bench.sql.rows")->Set(static_cast<double>(rows));
  for (const KernelResult& r : results) {
    std::printf("%-16s %-10zu %-10zu %-12.3f %-12.3f %8.2fx\n", r.kernel,
                r.rows_in, r.rows_out, r.row_s * 1e3, r.columnar_s * 1e3,
                r.Speedup());
    const obs::Labels row_point{{"kernel", r.kernel}, {"path", "row"}};
    const obs::Labels col_point{{"kernel", r.kernel}, {"path", "columnar"}};
    registry.GetGauge("bench.sql.seconds", row_point)->Set(r.row_s);
    registry.GetGauge("bench.sql.seconds", col_point)->Set(r.columnar_s);
    registry.GetGauge("bench.sql.rows_out", {{"kernel", r.kernel}})
        ->Set(static_cast<double>(r.rows_out));
    registry.GetGauge("bench.sql.speedup", {{"kernel", r.kernel}})
        ->Set(r.Speedup());
  }
  std::printf(
      "\nShape to check: every kernel at least breaks even; filter/project\n"
      "and partition (selection vectors, typed scatter, shared dictionaries)\n"
      "should clear 2x at this scale. All pairs multiset-checked.\n");

  Status written = registry.WriteJsonFile(json_path);
  if (!written.ok()) {
    ESHARP_LOG(WARN) << "could not write " << json_path << ": "
                     << written.ToString();
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
