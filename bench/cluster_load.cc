// Load generator for the sharded serving tier: replays the Zipf query
// workload through a ClusterRouter over N in-process shards and sweeps the
// shard count, so one run shows how scatter-gather + merge overhead moves
// against per-shard work shrinking with 1/N.
//
// Before any timing, each cluster is checked for the tier's core
// guarantee: the routed answer must be *bit-identical* to an unsharded
// engine over the union corpus (the bench aborts on the first mismatch —
// a fast cluster that returns different experts is not a result).
//
// Per shard count the closed-loop workload runs twice: cold (router cache
// invalidated) and warm (populated by the cold pass). Hedging stays on
// with its default trigger, and any hedges/degraded answers observed are
// published as gauges — on a healthy in-process cluster both should be at
// or near zero, so a jump in the baseline diff is itself a finding.
//
// After the sweep, an A/B section measures what the PR 7 tracing stack
// (per-query profiles + slow-query log + sampled span tracing) costs on
// the 4-shard path: the same closed loop runs against two otherwise
// identical clusters — tracing fully off vs fully on — interleaved over
// several rounds with best-of qps per side, published as
// bench.cluster.trace.{qps_off,qps_on,overhead_pct}. With
// --overhead_budget_pct=N the bench exits non-zero when the overhead
// exceeds N percent, which is how scripts/check_bench.sh enforces the
// "< 2% qps" budget.
//
// Usage: cluster_load [closed_threads] [queries_per_thread]
//                     [--smoke] [--json=PATH] [--overhead_budget_pct=N]
//
// Results are published as bench.cluster.* gauges (labelled
// {run="closed_cold"|"closed_warm", shards=N}) into a bench-local registry
// and written as a JSON snapshot (default BENCH_cluster.json; schema in
// EXPERIMENTS.md) for mechanical diffing with bench_diff.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/partition.h"
#include "cluster/router.h"
#include "cluster/shard.h"
#include "common/rng.h"
#include "community/store.h"
#include "expert/detector.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serving/engine.h"

namespace {

using namespace esharp;

/// Distinct surviving queries, Zipf-ranked by popularity (same workload
/// construction as serving_load, so the two benches stress the two tiers
/// with the same traffic shape).
std::vector<std::string> WorkloadQueries(const querylog::QueryLog& log) {
  std::vector<const querylog::QueryInfo*> infos;
  infos.reserve(log.num_queries());
  for (const querylog::QueryInfo& q : log.queries()) infos.push_back(&q);
  std::sort(infos.begin(), infos.end(),
            [](const querylog::QueryInfo* a, const querylog::QueryInfo* b) {
              if (a->total_count != b->total_count)
                return a->total_count > b->total_count;
              return a->id < b->id;
            });
  std::vector<std::string> queries;
  queries.reserve(infos.size());
  for (const querylog::QueryInfo* q : infos) queries.push_back(q->text);
  return queries;
}

/// One N-shard in-process cluster over the world corpus. Members are
/// declaration-ordered so teardown is safe: router drains first, then the
/// engines, managers and partitions it pointed at.
struct Cluster {
  cluster::PartitionedCorpus partition;
  std::shared_ptr<const community::CommunityStore> store;
  std::vector<std::unique_ptr<serving::SnapshotManager>> managers;
  std::vector<std::unique_ptr<serving::ServingEngine>> engines;
  std::unique_ptr<expert::ExpertDetector> union_detector;
  std::unique_ptr<cluster::ClusterRouter> router;
};

std::unique_ptr<Cluster> BuildCluster(const bench::ExperimentWorld& world,
                                      uint32_t num_shards,
                                      size_t router_threads,
                                      cluster::RouterOptions router_options =
                                          cluster::RouterOptions()) {
  auto c = std::make_unique<Cluster>();
  c->partition = cluster::PartitionCorpus(world.corpus, num_shards);
  c->store = std::make_shared<const community::CommunityStore>(
      world.artifacts.store);
  std::vector<std::unique_ptr<cluster::ShardTransport>> transports;
  for (uint32_t s = 0; s < num_shards; ++s) {
    c->managers.push_back(std::make_unique<serving::SnapshotManager>(
        c->partition.shards[s].get()));
    c->managers.back()->Publish(c->store);
    serving::ServingOptions engine_options;
    engine_options.num_threads = 2;
    engine_options.enable_cache = false;  // router caches; shards don't
    engine_options.enable_single_flight = false;
    c->engines.push_back(std::make_unique<serving::ServingEngine>(
        c->managers.back().get(), engine_options));
    transports.push_back(std::make_unique<cluster::InProcessShard>(
        "shard-" + std::to_string(s), c->engines.back().get()));
  }
  c->union_detector = std::make_unique<expert::ExpertDetector>(&world.corpus);
  router_options.num_threads = router_threads;
  c->router = std::make_unique<cluster::ClusterRouter>(
      std::move(transports), c->union_detector.get(), router_options);
  return c;
}

/// Aborts unless the routed answer equals the unsharded reference bit for
/// bit on a sample of the workload. Runs before timing, on every N.
void AssertRankEquivalence(Cluster& cluster,
                           serving::ServingEngine& reference,
                           const std::vector<std::string>& queries,
                           size_t sample) {
  cluster.router->InvalidateCache();
  for (size_t i = 0; i < std::min(sample, queries.size()); ++i) {
    const std::string& q = queries[i * 7919 % queries.size()];
    auto ref = reference.Query({q});
    auto routed = cluster.router->Query({q});
    if (!ref.ok() || !routed.ok()) {
      std::fprintf(stderr, "equivalence probe failed on '%s': %s / %s\n",
                   q.c_str(), ref.status().ToString().c_str(),
                   routed.status().ToString().c_str());
      std::abort();
    }
    bool same = ref->experts.size() == routed->experts.size();
    for (size_t e = 0; same && e < ref->experts.size(); ++e) {
      same = ref->experts[e].user == routed->experts[e].user &&
             ref->experts[e].score == routed->experts[e].score;
    }
    if (!same) {
      std::fprintf(stderr,
                   "rank mismatch on '%s' at %zu shards: sharded answer is "
                   "not bit-identical to the union engine\n",
                   q.c_str(), cluster.router->num_shards());
      std::abort();
    }
  }
  cluster.router->InvalidateCache();
}

struct RunResult {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t degraded = 0;
  uint64_t hedges = 0;
  double wall_seconds = 0;
  double qps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double hit_rate = 0;
  double merge_ms_mean = 0;
};

/// Closed loop through the router: `threads` clients, back-to-back
/// Zipf-sampled queries.
RunResult RunClosedLoop(cluster::ClusterRouter& router,
                        const std::vector<std::string>& queries,
                        const ZipfSampler& zipf, size_t threads,
                        size_t per_thread, uint64_t seed) {
  router.mutable_metrics()->Reset();
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> hedges{0};
  std::atomic<double> merge_ms_sum{0};
  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(seed + t);
      uint64_t my_degraded = 0, my_hedges = 0;
      double my_merge = 0;
      for (size_t i = 0; i < per_thread; ++i) {
        serving::QueryRequest request;
        request.query = queries[zipf.Sample(&rng)];
        auto response = router.Query(std::move(request));
        if (response.ok()) {
          if (response->degraded) ++my_degraded;
          my_hedges += response->hedges_fired;
          my_merge += response->merge_ms;
        }
      }
      degraded.fetch_add(my_degraded, std::memory_order_relaxed);
      hedges.fetch_add(my_hedges, std::memory_order_relaxed);
      double expected = merge_ms_sum.load(std::memory_order_relaxed);
      while (!merge_ms_sum.compare_exchange_weak(
          expected, expected + my_merge, std::memory_order_relaxed)) {
      }
    });
  }
  for (auto& c : clients) c.join();

  serving::MetricsReport m = router.metrics().Report();
  RunResult r;
  r.issued = threads * per_thread;
  r.ok = m.completed;
  r.shed = m.shed;
  r.errors = m.errors + m.timeouts;
  r.degraded = degraded.load();
  r.hedges = hedges.load();
  r.wall_seconds = wall.ElapsedSeconds();
  r.qps = r.wall_seconds > 0
              ? static_cast<double>(m.completed) / r.wall_seconds
              : 0;
  r.p50_ms = m.p50_ms;
  r.p95_ms = m.p95_ms;
  r.p99_ms = m.p99_ms;
  r.hit_rate = m.cache_hit_rate;
  r.merge_ms_mean =
      m.completed > 0 ? merge_ms_sum.load() / static_cast<double>(m.completed)
                      : 0;
  return r;
}

void PrintRow(uint32_t shards, const char* label, const RunResult& r) {
  std::printf(
      "%6u %-12s %8llu %8llu %9.1f %8.3f %8.3f %8.3f %6.1f%% %6llu %6llu\n",
      shards, label, static_cast<unsigned long long>(r.issued),
      static_cast<unsigned long long>(r.ok), r.qps, r.p50_ms, r.p95_ms,
      r.p99_ms, 100.0 * r.hit_rate,
      static_cast<unsigned long long>(r.degraded),
      static_cast<unsigned long long>(r.hedges));
}

void PublishRun(obs::MetricsRegistry& registry, uint32_t shards,
                const char* label, const RunResult& r) {
  const obs::Labels run{{"run", label}, {"shards", std::to_string(shards)}};
  registry.GetGauge("bench.cluster.issued", run)
      ->Set(static_cast<double>(r.issued));
  registry.GetGauge("bench.cluster.ok", run)->Set(static_cast<double>(r.ok));
  registry.GetGauge("bench.cluster.errors", run)
      ->Set(static_cast<double>(r.errors));
  registry.GetGauge("bench.cluster.degraded", run)
      ->Set(static_cast<double>(r.degraded));
  registry.GetGauge("bench.cluster.hedges", run)
      ->Set(static_cast<double>(r.hedges));
  registry.GetGauge("bench.cluster.wall_seconds", run)->Set(r.wall_seconds);
  registry.GetGauge("bench.cluster.qps", run)->Set(r.qps);
  registry.GetGauge("bench.cluster.p50_ms", run)->Set(r.p50_ms);
  registry.GetGauge("bench.cluster.p95_ms", run)->Set(r.p95_ms);
  registry.GetGauge("bench.cluster.p99_ms", run)->Set(r.p99_ms);
  registry.GetGauge("bench.cluster.hit_rate", run)->Set(r.hit_rate);
  registry.GetGauge("bench.cluster.merge_ms_mean", run)->Set(r.merge_ms_mean);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_cluster.json";
  bool smoke = false;
  double overhead_budget_pct = 0;  // 0 = measure but do not gate
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--overhead_budget_pct=", 22) == 0) {
      overhead_budget_pct = std::strtod(argv[i] + 22, nullptr);
    } else {
      positional.push_back(argv[i]);
    }
  }
  size_t closed_threads =
      positional.size() > 0 ? std::strtoul(positional[0], nullptr, 10)
                            : (smoke ? 2 : 4);
  // Default is deliberately long enough that per-N walls are tens of
  // milliseconds: shorter runs put single-scheduler-hiccup noise in the
  // committed baseline's percentiles.
  size_t per_thread =
      positional.size() > 1 ? std::strtoul(positional[1], nullptr, 10)
                            : (smoke ? 15 : 1000);
  size_t equivalence_sample = smoke ? 5 : 25;

  bench::PrintHeader("Cluster tier: shard-count sweep, Zipf workload");
  bench::WorldOptions world_options;
  world_options.scale = bench::WorldScale::kSmall;
  auto world = bench::BuildWorld(world_options);

  std::vector<std::string> queries = WorkloadQueries(world->generated.log);
  if (queries.empty()) {
    ESHARP_LOG(ERROR) << "empty workload: no query survived the log's "
                         "min-count filter";
    return 1;
  }
  ZipfSampler zipf(queries.size(), 1.05);

  // Unsharded reference for the pre-timing equivalence gate (cache off so
  // every probe exercises the full path).
  serving::SnapshotManager reference_manager(&world->corpus);
  reference_manager.Publish(std::make_shared<const community::CommunityStore>(
      world->artifacts.store));
  serving::ServingOptions reference_options;
  reference_options.num_threads = 2;
  reference_options.enable_cache = false;
  reference_options.enable_single_flight = false;
  serving::ServingEngine reference(&reference_manager, reference_options);

  std::printf("workload: %zu distinct queries, zipf s=1.05, %zu clients x "
              "%zu queries\n\n",
              queries.size(), closed_threads, per_thread);
  std::printf("%6s %-12s %8s %8s %9s %8s %8s %8s %7s %6s %6s\n", "shards",
              "run", "issued", "ok", "qps", "p50ms", "p95ms", "p99ms", "hit",
              "degr", "hedge");

  obs::MetricsRegistry registry;
  registry.GetGauge("bench.cluster.workload_queries")
      ->Set(static_cast<double>(queries.size()));
  registry.GetGauge("bench.cluster.closed_threads")
      ->Set(static_cast<double>(closed_threads));

  const uint32_t shard_counts[] = {1, 2, 4, 8};
  double qps_at_1 = 0;
  for (uint32_t n : shard_counts) {
    auto cluster = BuildCluster(*world, n, /*router_threads=*/n + 2);
    AssertRankEquivalence(*cluster, reference, queries, equivalence_sample);

    RunResult cold = RunClosedLoop(*cluster->router, queries, zipf,
                                   closed_threads, per_thread, 81);
    PrintRow(n, "closed-cold", cold);
    RunResult warm = RunClosedLoop(*cluster->router, queries, zipf,
                                   closed_threads, per_thread, 82);
    PrintRow(n, "closed-warm", warm);

    PublishRun(registry, n, "closed_cold", cold);
    PublishRun(registry, n, "closed_warm", warm);
    if (n == 1) qps_at_1 = cold.qps;
    if (n == 8 && qps_at_1 > 0) {
      registry.GetGauge("bench.cluster.cold_qps_ratio_8v1")
          ->Set(cold.qps / qps_at_1);
    }
  }

  // ---- Tracing overhead A/B (the "< 2% qps" budget) --------------------
  //
  // Two identical 4-shard clusters, one with the whole tracing stack off
  // (no profiles, no slow-query log entries, no tracer) and one with it
  // fully on (profiles + slow-query log + a live span ring). The closed
  // loop alternates sides each round and each side keeps its best round,
  // so transient scheduler noise has to hit *every* round of one side to
  // skew the comparison.
  const uint32_t ab_shards = 4;
  const size_t ab_rounds = smoke ? 1 : 3;

  cluster::RouterOptions off_options;
  off_options.enable_profiles = false;
  off_options.tracer = nullptr;
  auto off_cluster =
      BuildCluster(*world, ab_shards, ab_shards + 2, off_options);

  obs::Tracer tracer;
  cluster::RouterOptions on_options;
  on_options.enable_profiles = true;  // slow-query log at default bounds
  on_options.tracer = &tracer;
  // The production tracing configuration: head-sampled spans (1 in 64),
  // profiles + slow-query log on every scattered query.
  on_options.trace_sample_period = 64;
  auto on_cluster = BuildCluster(*world, ab_shards, ab_shards + 2, on_options);

  double qps_off = 0, qps_on = 0;
  for (size_t round = 0; round < ab_rounds; ++round) {
    uint64_t seed = 83 + 2 * round;
    RunResult off = RunClosedLoop(*off_cluster->router, queries, zipf,
                                  closed_threads, per_thread, seed);
    RunResult on = RunClosedLoop(*on_cluster->router, queries, zipf,
                                 closed_threads, per_thread, seed + 1);
    PrintRow(ab_shards, "trace-off", off);
    PrintRow(ab_shards, "trace-on", on);
    qps_off = std::max(qps_off, off.qps);
    qps_on = std::max(qps_on, on.qps);
  }
  double overhead_pct =
      qps_off > 0 ? std::max(0.0, 100.0 * (qps_off - qps_on) / qps_off) : 0;
  std::printf("\ntracing overhead: %.1f qps off, %.1f qps on -> %.2f%%"
              " (%llu profiles retained, %zu spans)\n",
              qps_off, qps_on, overhead_pct,
              static_cast<unsigned long long>(
                  on_cluster->router->slow_queries().recorded()),
              tracer.size());
  registry.GetGauge("bench.cluster.trace.qps_off")->Set(qps_off);
  registry.GetGauge("bench.cluster.trace.qps_on")->Set(qps_on);
  registry.GetGauge("bench.cluster.trace.overhead_pct")->Set(overhead_pct);

  Status written = registry.WriteJsonFile(json_path);
  if (!written.ok()) {
    ESHARP_LOG(WARN) << "could not write " << json_path << ": "
                     << written.ToString();
  } else {
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // The gate runs after the snapshot is written, so a failing run still
  // leaves its numbers on disk for inspection.
  if (overhead_budget_pct > 0 && overhead_pct > overhead_budget_pct) {
    std::fprintf(stderr,
                 "FAIL: tracing overhead %.2f%% exceeds the %.2f%% budget\n",
                 overhead_pct, overhead_budget_pct);
    return 1;
  }
  return 0;
}
