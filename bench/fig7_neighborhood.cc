// Reproduces Figure 7: the communities around the term "49ers".
//
// The paper plots the community containing "49ers" along with its three
// closest communities, showing that query-log distance recovers non-trivial
// semantic neighbors (alternative spellings, related activities, nearby
// topics) that no string distance could find.

#include <cstdio>

#include "bench/bench_common.h"

namespace {

void PrintCommunity(const esharp::community::Community& c,
                    const char* label) {
  std::printf("%s (%zu terms):\n  ", label, c.terms.size());
  for (size_t i = 0; i < c.terms.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : ", ", c.terms[i].c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace esharp;
  bench::PrintHeader("Figure 7: graph and communities around '49ers'");

  auto world = bench::BuildWorld();
  const community::CommunityStore& store = world->artifacts.store;

  auto seed = store.Find("49ers");
  if (!seed.ok()) {
    std::printf("seed term not found: %s\n", seed.status().ToString().c_str());
    return 1;
  }
  PrintCommunity(**seed, "Seed community [dark blue]");

  auto closest = store.ClosestCommunities((*seed)->id, 3);
  static const char* kShades[] = {"[light blue]", "[light green]",
                                  "[dark green]"};
  for (size_t i = 0; i < closest.size(); ++i) {
    std::printf("\nCloseness (inter-community weight): %.3f\n",
                closest[i].second);
    PrintCommunity(store.community(closest[i].first),
                   i < 3 ? kShades[i] : "[other]");
  }

  std::printf(
      "\nPaper shape: the seed community holds sibling phrases and surface\n"
      "variants of the topic; the closest communities are related but\n"
      "distinct topics of the same category.\n");
  return 0;
}
