// Reproduces Figure 8: effect of query expansion on the number of experts
// per query. For each query set and each n in 0..14, the percentage of
// queries for which the algorithm returned at least n experts.
//
// Paper shape: the e# curve dominates the baseline curve in almost every
// panel (about +10% on average, up to +30%).

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/metrics.h"

int main() {
  using namespace esharp;
  bench::PrintHeader(
      "Figure 8: % of queries with >= n experts (n = 0..14), per set");

  auto world = bench::BuildWorld();
  auto runs = bench::RunStandardComparison(*world);

  for (const eval::SetRun& run : runs) {
    std::printf("\n--- set: %s ---\n", run.name.c_str());
    auto baseline = eval::CumulativeCoverage(run, eval::Side::kBaseline, 14);
    auto esharp_curve = eval::CumulativeCoverage(run, eval::Side::kESharp, 14);
    std::printf("%-4s %-12s %-12s %-8s\n", "n", "Baseline(%)", "e#(%)",
                "Delta");
    double dominated = 0;
    for (size_t n = 0; n <= 14; ++n) {
      std::printf("%-4zu %-12.1f %-12.1f %+8.1f\n", n, baseline[n],
                  esharp_curve[n], esharp_curve[n] - baseline[n]);
      if (esharp_curve[n] >= baseline[n]) dominated += 1;
    }
    std::printf("e# >= baseline at %.0f/15 points\n", dominated);
  }
  std::printf(
      "\nPaper shape: query expansion improves the number of experts found\n"
      "in almost every case (average ~10%%, up to 30%%).\n");
  return 0;
}
