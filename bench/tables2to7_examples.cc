// Reproduces Tables 2-7: selected experts for six representative queries
// ("49ers", "bluetooth speakers", "dow futures", "diabetes", "world war i",
// "sarah palin"), top results of the baseline and of e# side by side, with
// the profile metadata the paper displays (description, verified flag,
// follower count).

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using esharp::bench::ExperimentWorld;

void PrintExperts(const ExperimentWorld& world, const char* algo,
                  const std::vector<esharp::expert::RankedExpert>& experts,
                  size_t top_k) {
  for (size_t i = 0; i < experts.size() && i < top_k; ++i) {
    const auto& profile = world.corpus.user(experts[i].user);
    std::string description = profile.description;
    if (description.size() > 46) description = description.substr(0, 43) + "...";
    std::printf("  %-9s %-24s %-46s %-6s %9llu\n", algo,
                profile.screen_name.c_str(), description.c_str(),
                profile.verified ? "True" : "False",
                static_cast<unsigned long long>(profile.followers));
  }
  if (experts.empty()) std::printf("  %-9s (no experts found)\n", algo);
}

}  // namespace

int main() {
  using namespace esharp;
  bench::PrintHeader("Tables 2-7: selected experts per example query");

  auto world = bench::BuildWorld();
  core::ESharp system(&world->artifacts.store, &world->corpus);

  const std::vector<std::pair<const char*, const char*>> kQueries = {
      {"Table 2", "49ers"},          {"Table 3", "bluetooth speakers"},
      {"Table 4", "dow futures"},    {"Table 5", "diabetes"},
      {"Table 6", "world war i"},    {"Table 7", "sarah palin"},
  };

  for (const auto& [table, query] : kQueries) {
    std::printf("\n--- %s: query '%s' ---\n", table, query);
    std::printf("  %-9s %-24s %-46s %-6s %9s\n", "Algorithm", "Screen Name",
                "Description", "Verif", "Followers");
    auto baseline = system.detector().FindExperts(query);
    auto expanded = system.FindExperts(query);
    if (!baseline.ok() || !expanded.ok()) {
      std::printf("  error running query\n");
      continue;
    }
    PrintExperts(*world, "Baseline", *baseline, 3);
    PrintExperts(*world, "e#", *expanded, 3);
    core::QueryExpansion expansion = system.Expand(query);
    std::printf("  (e# expanded to %zu terms%s)\n", expansion.terms.size(),
                expansion.matched ? "" : " - no community matched");
  }

  std::printf(
      "\nPaper shape: e# surfaces experts the baseline misses, drawn from\n"
      "sibling terms of the query's expertise domain.\n");
  return 0;
}
