// Reproduces Table 9: resource consumption of one weekly iteration of the
// offline pipeline, plus the online stages.
//
// Paper numbers (September 2015, 65 VMs): Extraction reads 998 GB and
// writes 2.6 GB in 38 min; Clustering reads 2.6 GB and writes 94 MB in 2
// hours; online Expansion takes < 100 ms and Detection < 1 s on one
// machine. Absolute numbers here are laptop-scale; the shape to check is
// the ratio structure: extraction reads much more than it writes,
// clustering dominates offline runtime, and the online stages are
// sub-second.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace esharp;
  bench::PrintHeader("Table 9: resource consumption for one iteration");

  bench::WorldOptions options;
  options.threads = 8;  // stands in for the paper's VM pool
  // The production pipeline runs clustering as SQL over the cluster; use
  // the same backend here so the runtime profile matches Table 9's
  // (clustering dominates the offline wall time).
  options.backend = core::ClusteringBackend::kSqlEngine;
  auto world = bench::BuildWorld(options);

  // Online stages, measured per query over the top-N set.
  core::ESharp system(&world->artifacts.store, &world->corpus);
  const eval::QuerySet& top = world->query_sets.back();
  Timer expansion_timer;
  size_t matched = 0;
  for (const eval::EvalQuery& q : top.queries) {
    if (system.Expand(q.text).matched) ++matched;
  }
  double expansion_ms =
      expansion_timer.ElapsedMillis() / static_cast<double>(top.queries.size());

  Timer detection_timer;
  for (const eval::EvalQuery& q : top.queries) {
    auto experts = system.FindExperts(q.text);
    if (!experts.ok()) return 1;
  }
  double detection_ms =
      detection_timer.ElapsedMillis() / static_cast<double>(top.queries.size());

  world->meter.AddTime("Expansion", expansion_ms / 1000.0);
  world->meter.SetParallelism("Expansion", 1);
  world->meter.AddTime("Detection", detection_ms / 1000.0);
  world->meter.SetParallelism("Detection", 1);

  std::printf("%s\n", world->meter.ToTable().c_str());
  std::printf("Online expansion:  %.3f ms/query (paper: < 100 ms)\n",
              expansion_ms);
  std::printf("Online detection:  %.3f ms/query (paper: < 1 s)\n",
              detection_ms);
  std::printf("Community collection size: %s (paper: ~100 MB)\n",
              HumanBytes(world->artifacts.store.SizeBytes()).c_str());
  std::printf("Similarity graph: %zu edges, %s (paper: 60M edges, 1.45 GB)\n",
              world->artifacts.similarity_graph.num_edges(),
              HumanBytes(world->artifacts.similarity_graph.SizeBytes())
                  .c_str());
  std::printf(
      "\nShape to check: extraction reads >> writes; clustering dominates\n"
      "offline runtime; online stages are sub-second per query.\n");
  return 0;
}
