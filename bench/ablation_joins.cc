// Ablation: the two parallel join strategies of §4.2.3.
//
// The paper describes a replicated join (replicate and index the
// communities table at each node, split the graph) for when the build side
// fits in memory, and chained map-side joins (co-partition both tables)
// otherwise. This bench measures both against the single-threaded kernel on
// the exact join shape the clustering iteration runs: a large edge table
// joined to a small communities table.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "sqlengine/parallel.h"

namespace {

using namespace esharp;
using namespace esharp::sql;

Table EdgeTable(size_t rows, size_t vertices, uint64_t seed) {
  Rng rng(seed);
  TableBuilder b({{"query1", DataType::kString},
                  {"query2", DataType::kString},
                  {"distance", DataType::kDouble}});
  for (size_t i = 0; i < rows; ++i) {
    b.AddRow({Value::String("v" + std::to_string(rng.Uniform(vertices))),
              Value::String("v" + std::to_string(rng.Uniform(vertices))),
              Value::Double(rng.NextDouble())});
  }
  return b.Build();
}

Table CommunityTable(size_t vertices) {
  TableBuilder b({{"comm_name", DataType::kString},
                  {"query", DataType::kString}});
  for (size_t v = 0; v < vertices; ++v) {
    b.AddRow({Value::String("c" + std::to_string(v / 8)),
              Value::String("v" + std::to_string(v))});
  }
  return b.Build();
}

void BM_SerialJoin(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Table edges = EdgeTable(rows, rows / 8, 3);
  Table communities = CommunityTable(rows / 8);
  for (auto _ : state) {
    auto out = HashJoin(edges, communities, {"query1"}, {"query"});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_SerialJoin)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kMillisecond);

template <JoinStrategy kStrategy>
void BM_ParallelJoin(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Table edges = EdgeTable(rows, rows / 8, 3);
  Table communities = CommunityTable(rows / 8);
  ThreadPool pool(8);
  ExecContext ctx{&pool, 8, nullptr, "bench"};
  for (auto _ : state) {
    auto out = ParallelHashJoin(ctx, edges, communities, {"query1"},
                                {"query"}, JoinType::kInner, kStrategy);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
}
BENCHMARK_TEMPLATE(BM_ParallelJoin, JoinStrategy::kReplicated)
    ->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ParallelJoin, JoinStrategy::kPartitioned)
    ->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);

void BM_ParallelAggregate(benchmark::State& state) {
  size_t rows = 100000;
  Table edges = EdgeTable(rows, rows / 8, 5);
  ThreadPool pool(8);
  ExecContext ctx{&pool, static_cast<size_t>(state.range(0)), nullptr,
                  "bench"};
  std::vector<AggSpec> aggs = {SumOf(Col("distance"), "w"),
                               CountStar("n")};
  for (auto _ : state) {
    auto out = ParallelHashAggregate(ctx, edges, {"query1"}, aggs);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ParallelAggregate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
