// Ablation: community-detection paradigms (the paper's §8 names "exploring
// different community detection paradigms" as future work).
//
// Runs the paper's parallel modularity maximization, Newman's sequential
// greedy and weighted label propagation over the REAL extraction output
// (the similarity graph of the simulated month of logs), and compares the
// community-count profile, size histogram, modularity, ground-truth
// clustering quality and downstream e# recall.

#include <cstdio>

#include "bench/bench_common.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/newman.h"
#include "eval/metrics.h"
#include "graph/builder.h"

namespace {

using namespace esharp;

void Report(const char* name, const graph::Graph& g,
            const community::DetectionResult& result,
            const bench::ExperimentWorld& world) {
  community::CommunityStore store =
      community::CommunityStore::Build(g, result.assignment);
  community::SizeHistogram h = store.ComputeSizeHistogram();
  eval::ClusterQuality q =
      eval::EvaluateClustering(store, world.generated.log);

  // Downstream effect: e# recall with this store.
  core::ESharp system(&store, &world.corpus);
  auto runs = *eval::RunComparison(system, world.query_sets);
  double answered = 0;
  for (const eval::SetRun& run : runs) {
    answered += eval::AnsweredProportion(run, eval::Side::kESharp);
  }
  answered /= static_cast<double>(runs.size());

  std::printf("%-18s %8zu %8zu %8.3f %8.3f %8.3f %10.3f %10zu\n", name,
              store.num_communities(), h.orphans,
              result.modularity_per_iteration.back(), q.purity, q.nmi,
              answered, result.iterations);
}

}  // namespace

int main() {
  using namespace esharp;
  bench::PrintHeader("Ablation: community detection paradigms");

  auto world = bench::BuildWorld();
  const graph::Graph& g = world->artifacts.similarity_graph;

  std::printf("%-18s %8s %8s %8s %8s %8s %10s %10s\n", "Algorithm", "Comms",
              "Orphans", "Mod", "Purity", "NMI", "e# recall", "Iters");

  auto parallel = *community::DetectCommunitiesParallel(g);
  Report("parallel (paper)", g, parallel, *world);

  auto lpa = *community::DetectCommunitiesLabelPropagation(g);
  Report("label-prop", g, lpa, *world);

  auto louvain = *community::DetectCommunitiesLouvain(g);
  Report("louvain", g, louvain, *world);

  auto newman = *community::DetectCommunitiesNewman(g);
  Report("newman-greedy", g, newman, *world);

  std::printf(
      "\nShape to check: all three find domain-shaped communities (high\n"
      "purity/NMI); the parallel variant converges in a handful of bulk\n"
      "iterations, Newman needs one merge per step; downstream e# recall is\n"
      "similar across paradigms, supporting the paper's modular design.\n");
  return 0;
}
