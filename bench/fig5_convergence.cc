// Reproduces Figure 5: convergence of the community detection algorithm.
//
// The paper clusters the similarity graph of one month of query logs and
// plots the number of communities after each iteration: the count starts at
// the number of distinct queries, drops steeply, and flattens out after
// roughly 6 iterations. The shape to check here is the same steep-then-flat
// decay and single-digit convergence.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace esharp;
  bench::PrintHeader("Figure 5: convergence of community detection");

  auto world = bench::BuildWorld();
  const auto& series = world->artifacts.communities_per_iteration;
  const auto& modularity = world->artifacts.modularity_per_iteration;

  std::printf("%-10s %-20s %-16s\n", "Iteration", "Communities Count",
              "Total Modularity");
  for (size_t i = 0; i < series.size(); ++i) {
    std::printf("%-10zu %-20zu %-16.3f\n", i, series[i], modularity[i]);
  }

  size_t converged_at = series.size() - 1;
  std::printf("\nConverged after %zu iterations "
              "(paper: roughly 6 iterations on 60M edges).\n",
              converged_at);
  std::printf("Start: %zu communities -> End: %zu communities.\n",
              series.front(), series.back());
  return 0;
}
