// Load generator for the serving layer: replays Zipf-distributed query
// workloads from the synthetic query log against ServingEngine and prints a
// throughput/latency table.
//
// Two client models:
//   * closed-loop: T client threads, each issuing its next query as soon as
//     the previous one returns — measures saturated throughput;
//   * open-loop: queries submitted at a fixed offered rate regardless of
//     completion — measures behavior under a traffic level you pick,
//     including shedding once the offered rate exceeds capacity.
//
// Each workload runs twice against the same engine: a cold pass (cache
// freshly invalidated) and a warm pass (cache populated by the cold pass).
// On a Zipf workload the warm pass must show a clear speedup: the head of
// the distribution dominates and is served from the cache.
//
// Usage: serving_load [closed_threads] [queries_per_thread] [open_qps]
//                     [--json=PATH] [--reference] [--shards=N]
//
// --reference serves every request through the pre-PR-5 path (no
// term-evidence index, serial per-term collection), for A/B runs against
// the default fast path: diff the two JSON files with bench_diff.
//
// --shards=N routes the closed-loop workload through a ClusterRouter over
// N in-process shard engines instead of one engine — an A/B of the
// single-node vs sharded front door under identical traffic. Sharded mode
// runs the closed loop only (the router has no async submit path) and
// defaults the JSON snapshot to BENCH_serving_sharded.json so a sweep
// never clobbers the committed single-node baseline.
//
// Every run's results are also published as bench.serving.* gauges
// (labelled {run="closed_cold"|...}) into a bench-local MetricsRegistry
// and written as a JSON snapshot (default BENCH_serving.json; schema in
// EXPERIMENTS.md), so runs diff mechanically across commits.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/partition.h"
#include "cluster/router.h"
#include "cluster/shard.h"
#include "common/rng.h"
#include "obs/debugz.h"
#include "obs/obs.h"
#include "serving/engine.h"
#include "serving/introspect.h"

namespace {

using namespace esharp;

/// The query universe of the workload: every distinct query that survived
/// the log's min-count filter, Zipf-ranked by total search count — replaying
/// the real popularity skew the log generator produced.
std::vector<std::string> WorkloadQueries(const querylog::QueryLog& log) {
  std::vector<const querylog::QueryInfo*> infos;
  infos.reserve(log.num_queries());
  for (const querylog::QueryInfo& q : log.queries()) infos.push_back(&q);
  std::sort(infos.begin(), infos.end(),
            [](const querylog::QueryInfo* a, const querylog::QueryInfo* b) {
              if (a->total_count != b->total_count)
                return a->total_count > b->total_count;
              return a->id < b->id;
            });
  std::vector<std::string> queries;
  queries.reserve(infos.size());
  for (const querylog::QueryInfo* q : infos) queries.push_back(q->text);
  return queries;
}

struct RunResult {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  double wall_seconds = 0;
  double qps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double hit_rate = 0;
};

RunResult Summarize(const serving::ServingMetrics& metrics, uint64_t issued,
                    double wall_seconds) {
  serving::MetricsReport m = metrics.Report();
  RunResult r;
  r.issued = issued;
  r.ok = m.completed;
  r.shed = m.shed;
  r.errors = m.errors + m.timeouts;
  r.wall_seconds = wall_seconds;
  r.qps = wall_seconds > 0 ? static_cast<double>(m.completed) / wall_seconds
                           : 0;
  r.p50_ms = m.p50_ms;
  r.p95_ms = m.p95_ms;
  r.p99_ms = m.p99_ms;
  r.hit_rate = m.cache_hit_rate;
  return r;
}

/// Closed loop: `threads` clients, each issuing `per_thread` Zipf-sampled
/// queries back-to-back through the synchronous path.
RunResult RunClosedLoop(serving::ServingEngine& engine,
                        const std::vector<std::string>& queries,
                        const ZipfSampler& zipf, size_t threads,
                        size_t per_thread, uint64_t seed) {
  engine.mutable_metrics()->Reset();
  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(seed + t);
      for (size_t i = 0; i < per_thread; ++i) {
        serving::QueryRequest request;
        request.query = queries[zipf.Sample(&rng)];
        (void)engine.Query(std::move(request));
      }
    });
  }
  for (auto& c : clients) c.join();
  return Summarize(engine.metrics(), threads * per_thread, wall.ElapsedSeconds());
}

/// Open loop: submit asynchronously at `offered_qps`, never waiting for
/// completions; the admission queue sheds what the engine cannot absorb.
RunResult RunOpenLoop(serving::ServingEngine& engine,
                      const std::vector<std::string>& queries,
                      const ZipfSampler& zipf, double offered_qps,
                      size_t total, uint64_t seed) {
  engine.mutable_metrics()->Reset();
  Rng rng(seed);
  std::vector<std::future<Result<serving::QueryResponse>>> futures;
  futures.reserve(total);
  Timer wall;
  double interval_s = 1.0 / offered_qps;
  for (size_t i = 0; i < total; ++i) {
    serving::QueryRequest request;
    request.query = queries[zipf.Sample(&rng)];
    futures.push_back(engine.SubmitQuery(std::move(request)));
    double next_at = static_cast<double>(i + 1) * interval_s;
    double sleep_s = next_at - wall.ElapsedSeconds();
    if (sleep_s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    }
  }
  for (auto& f : futures) (void)f.get();
  return Summarize(engine.metrics(), total, wall.ElapsedSeconds());
}

void PrintRow(const char* label, const RunResult& r) {
  std::printf("%-22s %8llu %8llu %6llu %9.1f %9.3f %9.3f %9.3f %7.1f%%\n",
              label, static_cast<unsigned long long>(r.issued),
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.shed), r.qps, r.p50_ms,
              r.p95_ms, r.p99_ms, 100.0 * r.hit_rate);
}

/// Publishes one run's results into the bench-local registry as
/// bench.serving.<field>{run="<label>"} gauges.
void PublishRun(obs::MetricsRegistry& registry, const char* label,
                const RunResult& r) {
  const obs::Labels run{{"run", label}};
  registry.GetGauge("bench.serving.issued", run)
      ->Set(static_cast<double>(r.issued));
  registry.GetGauge("bench.serving.ok", run)->Set(static_cast<double>(r.ok));
  registry.GetGauge("bench.serving.shed", run)
      ->Set(static_cast<double>(r.shed));
  registry.GetGauge("bench.serving.errors", run)
      ->Set(static_cast<double>(r.errors));
  registry.GetGauge("bench.serving.wall_seconds", run)->Set(r.wall_seconds);
  registry.GetGauge("bench.serving.qps", run)->Set(r.qps);
  registry.GetGauge("bench.serving.p50_ms", run)->Set(r.p50_ms);
  registry.GetGauge("bench.serving.p95_ms", run)->Set(r.p95_ms);
  registry.GetGauge("bench.serving.p99_ms", run)->Set(r.p99_ms);
  registry.GetGauge("bench.serving.hit_rate", run)->Set(r.hit_rate);
}

/// Closed loop through a ClusterRouter (the --shards=N mode): identical
/// client model to the engine overload, so the two sides of the A/B see
/// the same traffic.
RunResult RunClosedLoop(cluster::ClusterRouter& router,
                        const std::vector<std::string>& queries,
                        const ZipfSampler& zipf, size_t threads,
                        size_t per_thread, uint64_t seed) {
  router.mutable_metrics()->Reset();
  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(seed + t);
      for (size_t i = 0; i < per_thread; ++i) {
        serving::QueryRequest request;
        request.query = queries[zipf.Sample(&rng)];
        (void)router.Query(std::move(request));
      }
    });
  }
  for (auto& c : clients) c.join();
  return Summarize(router.metrics(), threads * per_thread,
                   wall.ElapsedSeconds());
}

/// The --shards=N mode: the same closed-loop workload, served through the
/// cluster front door over N in-process shards. Closed loop only — the
/// router serves on the caller's thread and the open-loop/scrape sections
/// are single-engine measurements by design.
int RunShardedMode(bench::ExperimentWorld& world,
                   const std::vector<std::string>& queries,
                   const ZipfSampler& zipf, uint32_t num_shards,
                   size_t closed_threads, size_t per_thread,
                   const std::string& json_path) {
  cluster::PartitionedCorpus partition =
      cluster::PartitionCorpus(world.corpus, num_shards);
  auto store = std::make_shared<const community::CommunityStore>(
      world.artifacts.store);
  std::vector<std::unique_ptr<serving::SnapshotManager>> managers;
  std::vector<std::unique_ptr<serving::ServingEngine>> engines;
  std::vector<std::unique_ptr<cluster::ShardTransport>> transports;
  for (uint32_t s = 0; s < num_shards; ++s) {
    managers.push_back(std::make_unique<serving::SnapshotManager>(
        partition.shards[s].get()));
    managers.back()->Publish(store);
    serving::ServingOptions engine_options;
    engine_options.num_threads = 2;
    engine_options.enable_cache = false;  // the router caches
    engine_options.enable_single_flight = false;
    engines.push_back(std::make_unique<serving::ServingEngine>(
        managers.back().get(), engine_options));
    transports.push_back(std::make_unique<cluster::InProcessShard>(
        "shard-" + std::to_string(s), engines.back().get()));
  }
  expert::ExpertDetector union_detector(&world.corpus);
  cluster::RouterOptions router_options;
  router_options.num_threads = num_shards + 2;
  cluster::ClusterRouter router(std::move(transports), &union_detector,
                                router_options);

  std::printf("path: sharded (%u in-process shards behind the router)\n",
              num_shards);
  std::printf("workload: %zu distinct queries, zipf s=1.05\n\n",
              queries.size());
  std::printf("%-22s %8s %8s %6s %9s %9s %9s %9s %8s\n", "run", "issued",
              "ok", "shed", "qps", "p50ms", "p95ms", "p99ms", "hit");

  router.InvalidateCache();
  RunResult closed_cold =
      RunClosedLoop(router, queries, zipf, closed_threads, per_thread, 71);
  PrintRow("closed-loop cold", closed_cold);
  RunResult closed_warm =
      RunClosedLoop(router, queries, zipf, closed_threads, per_thread, 72);
  PrintRow("closed-loop warm", closed_warm);

  obs::MetricsRegistry registry;
  registry.GetGauge("bench.serving.workload_queries")
      ->Set(static_cast<double>(queries.size()));
  registry.GetGauge("bench.serving.closed_threads")
      ->Set(static_cast<double>(closed_threads));
  registry.GetGauge("bench.serving.shards")
      ->Set(static_cast<double>(num_shards));
  PublishRun(registry, "closed_cold", closed_cold);
  PublishRun(registry, "closed_warm", closed_warm);
  Status written = registry.WriteJsonFile(json_path);
  if (!written.ok()) {
    ESHARP_LOG(WARN) << "could not write " << json_path << ": "
                     << written.ToString();
  } else {
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool reference = false;
  uint32_t shards = 0;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--reference") == 0) {
      reference = true;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<uint32_t>(std::strtoul(argv[i] + 9, nullptr, 10));
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (json_path.empty()) {
    json_path = shards > 0 ? "BENCH_serving_sharded.json"
                           : "BENCH_serving.json";
  }
  size_t closed_threads =
      positional.size() > 0 ? std::strtoul(positional[0], nullptr, 10) : 4;
  size_t per_thread =
      positional.size() > 1 ? std::strtoul(positional[1], nullptr, 10) : 250;
  double open_qps =
      positional.size() > 2 ? std::strtod(positional[2], nullptr) : 200.0;

  bench::PrintHeader("Serving layer: Zipf workload replay");
  bench::WorldOptions world_options;
  world_options.scale = bench::WorldScale::kSmall;
  auto world = bench::BuildWorld(world_options);

  std::vector<std::string> queries = WorkloadQueries(world->generated.log);
  if (queries.empty()) {
    ESHARP_LOG(ERROR) << "empty workload: no query survived the log's "
                         "min-count filter";
    return 1;
  }
  // Web query popularity is famously Zipfian; s=1.05 matches the log
  // generator's own domain skew.
  ZipfSampler zipf(queries.size(), 1.05);

  if (shards > 0) {
    return RunShardedMode(*world, queries, zipf, shards, closed_threads,
                          per_thread, json_path);
  }

  serving::SnapshotManager manager(&world->corpus);
  manager.set_build_evidence_on_publish(!reference);
  manager.Publish(std::make_shared<const community::CommunityStore>(
      world->artifacts.store));

  serving::ServingOptions serving_options;
  serving_options.num_threads = world_options.threads;
  serving_options.max_in_flight = 256;
  serving_options.cache.ttl_seconds = 3600;  // TTL out of the way; this
                                             // bench isolates cache effects
  serving_options.use_evidence_index = !reference;
  serving_options.parallel_detect = !reference;
  serving::ServingEngine engine(&manager, serving_options);
  if (reference) std::printf("path: reference (no evidence index, serial)\n");

  std::printf("workload: %zu distinct queries, zipf s=1.05\n",
              queries.size());
  std::printf("engine: %zu workers, %zu max in flight, cache %zux%zu\n\n",
              serving_options.num_threads, serving_options.max_in_flight,
              engine.options().cache.shards,
              engine.options().cache.capacity_per_shard);
  std::printf("%-22s %8s %8s %6s %9s %9s %9s %9s %8s\n", "run", "issued",
              "ok", "shed", "qps", "p50ms", "p95ms", "p99ms", "hit");

  // Closed loop, cold then warm: same engine, cache invalidated between
  // nothing — the first pass fills the cache, the second replays over it.
  engine.InvalidateCache();
  RunResult closed_cold = RunClosedLoop(engine, queries, zipf,
                                        closed_threads, per_thread, 71);
  PrintRow("closed-loop cold", closed_cold);
  RunResult closed_warm = RunClosedLoop(engine, queries, zipf,
                                        closed_threads, per_thread, 72);
  PrintRow("closed-loop warm", closed_warm);

  // Open loop at the requested offered rate, cold then warm.
  size_t open_total = closed_threads * per_thread;
  engine.InvalidateCache();
  RunResult open_cold =
      RunOpenLoop(engine, queries, zipf, open_qps, open_total, 73);
  PrintRow("open-loop cold", open_cold);
  RunResult open_warm =
      RunOpenLoop(engine, queries, zipf, open_qps, open_total, 74);
  PrintRow("open-loop warm", open_warm);

  // ---- Scrape overhead: observation must stay off the hot path. -----------
  // Re-run the warm closed loop with the debugz server up, alternating
  // bare passes and passes with a client scraping /metrics at 1 Hz. The
  // scrape walks the whole registry on a debugz worker thread; the budget
  // says the serving threads must not notice (<2% qps regression). Two
  // precautions against measuring noise instead of the scrape: each pass
  // is scaled (from the measured warm qps) to last ~1.5 s, well past the
  // scrape period, and the A/B passes interleave so machine drift hits
  // both sides equally.
  // Calibrate the pass length against the engine as it is NOW (fully warm —
  // estimates from the earlier, cooler passes run several times too fast):
  // grow until one pass takes >= 0.75 s, then target ~1.5 s.
  size_t scrape_per_thread = per_thread;
  for (int tries = 0; tries < 6; ++tries) {
    RunResult calib = RunClosedLoop(engine, queries, zipf, closed_threads,
                                    scrape_per_thread, 70);
    if (calib.wall_seconds >= 0.75 || scrape_per_thread >= 2000000) break;
    double grow = 1.5 / std::max(calib.wall_seconds, 1e-3);
    scrape_per_thread = std::min<size_t>(
        2000000,
        static_cast<size_t>(
            static_cast<double>(scrape_per_thread) * std::min(grow, 16.0)) +
            1);
  }
  obs::DebugServer debug_server;  // ephemeral port
  serving::MountServingEndpoints(&debug_server, &engine);
  Status debug_started = debug_server.Start();
  std::atomic<bool> stop_scraper{false};
  std::atomic<bool> scraping{false};  // gates the on/off passes
  uint64_t scrapes = 0;
  std::thread scraper([&] {
    while (!stop_scraper.load(std::memory_order_acquire)) {
      bool active = scraping.load(std::memory_order_acquire);
      if (active) {
        auto scrape =
            obs::HttpGet("127.0.0.1", debug_server.port(), "/metrics", 2.0);
        if (scrape.ok() && scrape->status == 200) ++scrapes;
      }
      for (int i = 0; i < 10 && !stop_scraper.load(std::memory_order_acquire);
           ++i) {
        // Wake early when an on-pass starts so even a short pass is scraped.
        if (!active && scraping.load(std::memory_order_acquire)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  });
  // Best pass per side: on a small (even single-core) machine scheduler
  // jitter between 1.5 s passes is far larger than the effect under test,
  // and it is symmetric — the fastest pass on each side is the run the
  // scheduler left alone, so their ratio isolates the scrape cost.
  constexpr int kScrapePairs = 3;
  RunResult scrape_off, scrape_on;
  double off_best = 0, on_best = 0;
  for (int pair = 0; pair < kScrapePairs; ++pair) {
    scraping.store(false, std::memory_order_release);
    RunResult off = RunClosedLoop(engine, queries, zipf, closed_threads,
                                  scrape_per_thread, 75 + 2 * pair);
    if (off.qps > off_best) {
      off_best = off.qps;
      scrape_off = off;
    }
    scraping.store(true, std::memory_order_release);
    RunResult on = RunClosedLoop(engine, queries, zipf, closed_threads,
                                 scrape_per_thread, 76 + 2 * pair);
    if (on.qps > on_best) {
      on_best = on.qps;
      scrape_on = on;
    }
  }
  stop_scraper.store(true, std::memory_order_release);
  scraper.join();
  debug_server.Stop();
  double scrape_overhead_pct =
      scrape_off.qps > 0
          ? 100.0 * (scrape_off.qps - scrape_on.qps) / scrape_off.qps
          : 0;
  PrintRow("warm, no scraper", scrape_off);
  PrintRow("warm, 1Hz /metrics", scrape_on);
  std::printf("\nscrape overhead: %.1f%% qps (budget < 2%%; %llu scrapes%s)\n",
              scrape_overhead_pct, static_cast<unsigned long long>(scrapes),
              debug_started.ok() ? "" : "; debugz failed to start");

  double speedup = closed_warm.qps > 0 && closed_cold.qps > 0
                       ? closed_warm.qps / closed_cold.qps
                       : 0;
  std::printf("\nwarm/cold closed-loop throughput: %.2fx\n", speedup);
  std::printf("\nengine metrics after the final run:\n%s",
              engine.metrics().ToTable().c_str());

  // Machine-readable snapshot: a bench-local registry (so the engine's own
  // global serving.* instruments do not leak into the file).
  obs::MetricsRegistry registry;
  registry.GetGauge("bench.serving.workload_queries")
      ->Set(static_cast<double>(queries.size()));
  registry.GetGauge("bench.serving.closed_threads")
      ->Set(static_cast<double>(closed_threads));
  registry.GetGauge("bench.serving.offered_qps")->Set(open_qps);
  registry.GetGauge("bench.serving.warm_cold_speedup")->Set(speedup);
  registry.GetGauge("bench.serving.scrape_off_qps")->Set(scrape_off.qps);
  registry.GetGauge("bench.serving.scrape_on_qps")->Set(scrape_on.qps);
  registry.GetGauge("bench.serving.scrape_overhead_pct")
      ->Set(scrape_overhead_pct);
  registry.GetGauge("bench.serving.scrape_count")
      ->Set(static_cast<double>(scrapes));
  PublishRun(registry, "closed_cold", closed_cold);
  PublishRun(registry, "closed_warm", closed_warm);
  PublishRun(registry, "open_cold", open_cold);
  PublishRun(registry, "open_warm", open_warm);
  PublishRun(registry, "scrape_off", scrape_off);
  PublishRun(registry, "scrape_on", scrape_on);
  Status written = registry.WriteJsonFile(json_path);
  if (!written.ok()) {
    ESHARP_LOG(WARN) << "could not write " << json_path << ": "
                     << written.ToString();
  } else {
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
