// Streaming-ingest benchmark: delta publish against full offline rebuild
// (ingest/ingest.h vs ingest/verify.h's RebuildFromScratch) — the two ways
// a serving tier can fold new tweets and query-log triples into its
// answers. At each corpus size the delta batch is ~0.1% of the corpus,
// tweet-heavy (the realistic traffic mix); a second delta shape adds
// query-log triples so the re-cluster path is timed too. The acceptance
// floor is a 10x delta-vs-rebuild speedup at every benched size.
//
// Before any timing, the equivalence gate (VerifyAgainstRebuild /
// VerifySharded) proves the delta-maintained world — corpus, graph,
// store, evidence, ranked answers — bit-identical to a from-scratch
// rebuild, single-engine AND through the sharded router; the gate runs
// again after the timed publishes so no speedup can ship from a
// divergent batch. A final section A/Bs serving throughput with and
// without a continuous ingest-and-publish writer hot-swapping
// generations under the readers.
//
// Usage: ingest_bench [--iters=K] [--smoke] [--json=PATH]
//
// Results are published as bench.ingest.* gauges and written as a JSON
// snapshot (default BENCH_ingest.json; schema in EXPERIMENTS.md).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "ingest/ingest.h"
#include "ingest/sharded.h"
#include "ingest/verify.h"
#include "obs/obs.h"
#include "serving/engine.h"
#include "serving/snapshot.h"

namespace {

using namespace esharp;

volatile uint64_t g_sink = 0;

double BestOf(size_t iters, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < iters; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

void Fail(const std::string& why) {
  std::fprintf(stderr, "ingest_bench: %s\n", why.c_str());
  std::exit(1);
}

ingest::IngestOptions PipelineOptions() {
  ingest::IngestOptions options;
  options.extraction.min_query_count = 3;
  options.extraction.min_similarity = 0.10;
  options.extraction.max_url_fanout = 64;
  return options;
}

serving::ServingOptions EngineOptions() {
  serving::ServingOptions o;
  o.num_threads = 2;
  o.enable_cache = false;
  o.enable_single_flight = false;
  return o;
}

/// Synthetic stream shaped for delta measurement: a wide query-log-backed
/// vocabulary (every topic word survives filtering and lands in a
/// community) over which each tweet carries exactly ONE topic word plus
/// filler, so a 0.1% batch dirties a corpus-independent handful of
/// evidence pools — the regime the dirty-term tracker is built for.
/// Works against IngestPipeline and ShardedIngest (same writer API).
template <typename Target>
struct Feeder {
  Target* target;
  Rng rng;
  size_t topics;
  size_t fillers;
  microblog::UserId num_users = 0;
  size_t tweets_appended = 0;

  Feeder(Target* target, uint64_t seed, size_t topics, size_t fillers)
      : target(target), rng(seed), topics(topics), fillers(fillers) {}

  static std::string TopicWord(size_t i) {
    return "topic" + std::to_string(i);
  }

  void EnsureUsers(size_t want) {
    while (num_users < want) {
      microblog::UserProfile user;
      user.id = num_users;
      user.screen_name = "user" + std::to_string(num_users);
      user.followers = 10 + num_users;
      target->AppendUser(user);
      ++num_users;
    }
  }

  /// Registers every topic word as a surviving query; groups of four
  /// share a click url, so extraction yields one small component (and
  /// community) per group and the vocabulary covers all topic words.
  void SeedQueryLog() {
    for (size_t t = 0; t < topics; ++t) {
      target->AppendSearches(TopicWord(t), 5);
      target->AppendClicks(TopicWord(t), static_cast<uint32_t>(t / 4),
                           2 + t % 3);
    }
  }

  std::string TweetText() {
    std::string text = TopicWord(rng.Uniform(topics));
    for (int i = 0; i < 3; ++i) {
      text += " fill" + std::to_string(rng.Uniform(fillers));
    }
    return text;
  }

  void AppendTweets(size_t count) {
    for (size_t i = 0; i < count; ++i) {
      std::vector<microblog::UserId> mentions;
      if (rng.Bernoulli(0.2)) mentions.push_back(rng.Uniform(num_users));
      target->AppendTweet(rng.Uniform(num_users), TweetText(), mentions,
                          rng.Uniform(4));
    }
    tweets_appended += count;
  }

  /// A few click triples on fresh urls: changes the touched queries'
  /// vectors, so the next publish takes the re-cluster path.
  void TouchGraph() {
    for (int i = 0; i < 3; ++i) {
      target->AppendClicks(TopicWord(rng.Uniform(topics)),
                           static_cast<uint32_t>(topics + rng.Uniform(8)),
                           1 + rng.Uniform(3));
    }
  }
};

std::vector<std::string> Probes(size_t topics) {
  std::vector<std::string> probes;
  for (size_t i = 0; i < std::min<size_t>(topics, 12); ++i) {
    probes.push_back(Feeder<ingest::IngestPipeline>::TopicWord(i));
  }
  probes.push_back("no such topic anywhere");
  return probes;
}

}  // namespace

int main(int argc, char** argv) {
  size_t iters = 5;
  bool smoke = false;
  std::string json_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::strtoul(argv[i] + 8, nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) iters = std::min<size_t>(iters, 2);
  if (iters < 1) iters = 1;

  bench::PrintHeader("Streaming ingest: delta publish vs full rebuild");
  const size_t kTopics = smoke ? 48 : 1200;
  const size_t kFillers = smoke ? 48 : 400;
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{400}
            : std::vector<size_t>{10'000, 50'000, 100'000};
  const std::vector<std::string> probes = Probes(kTopics);

  obs::MetricsRegistry registry;
  // The largest stream stays alive for the serving-QPS A/B below.
  std::unique_ptr<serving::SnapshotManager> ab_manager;
  std::unique_ptr<ingest::IngestPipeline> ab_pipeline;
  std::unique_ptr<Feeder<ingest::IngestPipeline>> ab_feeder;

  for (size_t n : sizes) {
    auto manager = std::make_unique<serving::SnapshotManager>();
    auto pipeline = std::make_unique<ingest::IngestPipeline>(
        manager.get(), PipelineOptions());
    auto feeder = std::make_unique<Feeder<ingest::IngestPipeline>>(
        pipeline.get(), 2016 + n, kTopics, kFillers);
    feeder->EnsureUsers(50 + n / 100);
    feeder->SeedQueryLog();
    feeder->AppendTweets(n);
    Result<ingest::PublishStats> first = pipeline->Publish();
    if (!first.ok()) Fail("initial publish: " + first.status().ToString());
    std::printf("\ncorpus %zu tweets, %zu vocabulary terms, "
                "%zu communities\n",
                n, pipeline->published_vocabulary().size(),
                first->communities);

    // ---- Equivalence gate, before any timing -----------------------------
    Status gate = ingest::VerifyAgainstRebuild(*pipeline, probes);
    if (!gate.ok()) Fail("equivalence gate: " + gate.ToString());
    std::printf("  equivalence gate: delta world bit-identical to "
                "rebuild (%zu probes)\n",
                probes.size());

    // ---- Timing ----------------------------------------------------------
    const double rebuild_s = BestOf(iters, [&] {
      Result<ingest::RebuildArtifacts> r =
          ingest::RebuildFromScratch(*pipeline);
      if (!r.ok()) Fail("rebuild: " + r.status().ToString());
      g_sink += r->store->communities().size();
    });

    // Tweet-only 0.1% batches: the fast path (store and clustering are
    // republished wholesale; only matched evidence pools re-collect).
    const size_t batch = std::max<size_t>(10, n / 1000);
    size_t dirty_terms = 0;
    double delta_s = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < iters; ++i) {
      feeder->AppendTweets(batch);
      Timer t;
      Result<ingest::PublishStats> stats = pipeline->Publish();
      delta_s = std::min(delta_s, t.ElapsedSeconds());
      if (!stats.ok()) Fail("delta publish: " + stats.status().ToString());
      dirty_terms = stats->dirty_terms;
    }

    // Same batch size but with query-log triples: the batch changes the
    // similarity graph, so this publish pays component re-clustering.
    double graph_delta_s = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < iters; ++i) {
      feeder->AppendTweets(batch);
      feeder->TouchGraph();
      Timer t;
      Result<ingest::PublishStats> stats = pipeline->Publish();
      graph_delta_s = std::min(graph_delta_s, t.ElapsedSeconds());
      if (!stats.ok()) {
        Fail("graph-delta publish: " + stats.status().ToString());
      }
      if (!stats->graph_changed) Fail("graph-delta batch took fast path");
    }

    // Re-gate: the timed publishes themselves must have converged.
    gate = ingest::VerifyAgainstRebuild(*pipeline, probes);
    if (!gate.ok()) Fail("post-timing gate: " + gate.ToString());

    const double speedup = delta_s > 0 ? rebuild_s / delta_s : 0;
    const double graph_speedup =
        graph_delta_s > 0 ? rebuild_s / graph_delta_s : 0;
    std::printf("  %-26s %10.4f s\n", "full rebuild", rebuild_s);
    std::printf("  %-26s %10.4f s  (%zu-tweet batch, %zu dirty terms)  "
                "%.1fx\n",
                "delta publish", delta_s, batch, dirty_terms, speedup);
    std::printf("  %-26s %10.4f s  %.1fx\n", "graph-delta publish",
                graph_delta_s, graph_speedup);
    std::printf("  %-26s %10.1f\n", "publishes/sec",
                delta_s > 0 ? 1.0 / delta_s : 0);
    if (!smoke && speedup < 10.0) {
      Fail("delta speedup " + std::to_string(speedup) +
           "x under the 10x acceptance floor at " + std::to_string(n) +
           " tweets");
    }

    const std::string label = std::to_string(n);
    registry.GetGauge("bench.ingest.full_rebuild_seconds",
                      {{"tweets", label}})->Set(rebuild_s);
    registry.GetGauge("bench.ingest.delta_publish_seconds",
                      {{"tweets", label}})->Set(delta_s);
    registry.GetGauge("bench.ingest.delta_speedup", {{"tweets", label}})
        ->Set(speedup);
    registry.GetGauge("bench.ingest.graph_delta_seconds",
                      {{"tweets", label}})->Set(graph_delta_s);
    registry.GetGauge("bench.ingest.graph_delta_speedup",
                      {{"tweets", label}})->Set(graph_speedup);
    registry.GetGauge("bench.ingest.publishes_per_sec", {{"tweets", label}})
        ->Set(delta_s > 0 ? 1.0 / delta_s : 0);
    registry.GetGauge("bench.ingest.dirty_terms_per_batch",
                      {{"tweets", label}})
        ->Set(static_cast<double>(dirty_terms));

    if (n == sizes.back()) {
      ab_manager = std::move(manager);
      ab_pipeline = std::move(pipeline);
      ab_feeder = std::move(feeder);
      ab_feeder->target = ab_pipeline.get();
    }
  }

  // ---- Sharded tier: gate + delta publish through the router --------------
  bench::PrintHeader("Sharded ingest: lockstep delta publish");
  const size_t n_sharded = smoke ? 200 : 3000;
  ingest::ShardedIngest sharded(3, PipelineOptions());
  Feeder<ingest::ShardedIngest> sharded_feeder(&sharded, 77, kTopics,
                                               kFillers);
  sharded_feeder.EnsureUsers(50 + n_sharded / 100);
  sharded_feeder.SeedQueryLog();
  sharded_feeder.AppendTweets(n_sharded);
  Result<ingest::PublishStats> sharded_first = sharded.Publish();
  if (!sharded_first.ok()) {
    Fail("sharded publish: " + sharded_first.status().ToString());
  }
  Status sharded_gate = ingest::VerifySharded(sharded, probes);
  if (!sharded_gate.ok()) Fail("sharded gate: " + sharded_gate.ToString());
  std::printf("equivalence gate: router bit-identical to "
              "partition-and-rebuild (%zu probes, 3 shards)\n",
              probes.size());
  const size_t sharded_batch = std::max<size_t>(10, n_sharded / 1000);
  double sharded_delta_s = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < iters; ++i) {
    sharded_feeder.AppendTweets(sharded_batch);
    Timer t;
    Result<ingest::PublishStats> stats = sharded.Publish();
    sharded_delta_s = std::min(sharded_delta_s, t.ElapsedSeconds());
    if (!stats.ok()) {
      Fail("sharded delta publish: " + stats.status().ToString());
    }
  }
  std::printf("sharded delta publish (union + 3 shards + router rebind): "
              "%.4f s\n",
              sharded_delta_s);
  registry.GetGauge("bench.ingest.sharded_delta_seconds")
      ->Set(sharded_delta_s);

  // ---- Serving QPS under continuous ingest --------------------------------
  bench::PrintHeader("Serving under continuous ingest (A/B)");
  serving::ServingEngine engine(ab_pipeline->manager(), EngineOptions());
  std::vector<std::string> workload;
  for (size_t i = 0; i < std::min<size_t>(kTopics, 16); ++i) {
    workload.push_back(Feeder<ingest::IngestPipeline>::TopicWord(i));
  }
  const double window_s = smoke ? 0.15 : 1.0;
  std::string writer_error;
  auto run_window = [&](bool with_ingest, size_t* publishes_out) -> double {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> served{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
      readers.emplace_back([&, r] {
        size_t i = static_cast<size_t>(r);
        while (!stop.load(std::memory_order_relaxed)) {
          serving::QueryRequest request;
          request.query = workload[i++ % workload.size()];
          Result<serving::QueryResponse> response =
              engine.Query(std::move(request));
          if (response.ok()) g_sink += response->experts.size();
          served.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    size_t publishes = 0;
    std::thread writer;
    if (with_ingest) {
      // The one writer thread: small batches, publish as fast as the
      // pipeline allows — every publish hot-swaps a generation under
      // the readers.
      writer = std::thread([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          ab_feeder->AppendTweets(20);
          Result<ingest::PublishStats> stats = ab_pipeline->Publish();
          if (!stats.ok()) {
            writer_error = stats.status().ToString();
            return;
          }
          ++publishes;
        }
      });
    }
    Timer wall;
    while (wall.ElapsedSeconds() < window_s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true, std::memory_order_relaxed);
    const double secs = wall.ElapsedSeconds();
    for (std::thread& t : readers) t.join();
    if (writer.joinable()) writer.join();
    if (!writer_error.empty()) Fail("ingest writer: " + writer_error);
    *publishes_out = publishes;
    return static_cast<double>(served.load()) / secs;
  };
  size_t publishes_idle = 0, publishes_load = 0;
  const double qps_idle = run_window(false, &publishes_idle);
  const double qps_ingest = run_window(true, &publishes_load);
  const double retention = qps_idle > 0 ? qps_ingest / qps_idle : 0;
  std::printf("%-28s %10.0f qps\n", "A: frozen snapshot", qps_idle);
  std::printf("%-28s %10.0f qps  (%.0f publishes/sec riding along)\n",
              "B: continuous ingest", qps_ingest,
              publishes_load / window_s);
  std::printf("throughput retained under ingest: %.0f%%\n",
              retention * 100.0);
  registry.GetGauge("bench.ingest.qps_idle")->Set(qps_idle);
  registry.GetGauge("bench.ingest.qps_under_ingest")->Set(qps_ingest);
  registry.GetGauge("bench.ingest.qps_retention_ratio")->Set(retention);
  registry.GetGauge("bench.ingest.publishes_per_sec_under_load")
      ->Set(publishes_load / window_s);
  registry.GetGauge("bench.ingest.queries_verified")
      ->Set(static_cast<double>(probes.size()));

  Status written = registry.WriteJsonFile(json_path);
  if (!written.ok()) {
    ESHARP_LOG(WARN) << "could not write " << json_path << ": "
                     << written.ToString();
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
