// Micro-benchmarks of engine primitives: value hashing/comparison, token
// index lookups, community-store lookups — the operations the online stage
// leans on per query (§6.3 budgets: expansion < 100 ms, detection < 1 s).

#include <benchmark/benchmark.h>

#include "community/parallel_cd.h"
#include "community/store.h"
#include "graph/builder.h"
#include "common/rng.h"
#include "microblog/generator.h"
#include "querylog/generator.h"
#include "sqlengine/operators.h"

namespace {

using namespace esharp;

void BM_ValueHashString(benchmark::State& state) {
  std::vector<sql::Value> values;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    values.push_back(
        sql::Value::String("query term " + std::to_string(rng.Uniform(1000))));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(values[i++ % values.size()].Hash());
  }
}
BENCHMARK(BM_ValueHashString);

void BM_ValueCompareNumericFamily(benchmark::State& state) {
  sql::Value a = sql::Value::Int(42);
  sql::Value b = sql::Value::Double(42.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
}
BENCHMARK(BM_ValueCompareNumericFamily);

void BM_RowKeyHash(benchmark::State& state) {
  sql::TableBuilder b({{"a", sql::DataType::kString},
                       {"b", sql::DataType::kInt64}});
  b.AddRow({sql::Value::String("49ers draft"), sql::Value::Int(7)});
  sql::Table t = b.Build();
  std::vector<size_t> keys = {0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::HashRowKeys(t.row(0), keys));
  }
}
BENCHMARK(BM_RowKeyHash);

class OnlineFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (corpus != nullptr) return;
    querylog::UniverseOptions uo;
    uo.seed = 9;
    universe = new querylog::TopicUniverse(
        *querylog::TopicUniverse::Generate(uo));
    microblog::CorpusOptions co;
    co.seed = 10;
    corpus = new microblog::TweetCorpus(*GenerateCorpus(*universe, co));
    querylog::GeneratorOptions go;
    go.seed = 11;
    querylog::GeneratedLog gen = *GenerateQueryLog(*universe, go);
    graph::SimilarityGraphOptions so;
    graph::Graph g = *BuildSimilarityGraph(gen.log, so);
    auto detection = *community::DetectCommunitiesParallel(g);
    store = new community::CommunityStore(
        community::CommunityStore::Build(g, detection.assignment));
  }
  static querylog::TopicUniverse* universe;
  static microblog::TweetCorpus* corpus;
  static community::CommunityStore* store;
};

querylog::TopicUniverse* OnlineFixture::universe = nullptr;
microblog::TweetCorpus* OnlineFixture::corpus = nullptr;
community::CommunityStore* OnlineFixture::store = nullptr;

BENCHMARK_F(OnlineFixture, BM_MatchTweets)(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus->MatchTweets({"49ers"}));
  }
}

BENCHMARK_F(OnlineFixture, BM_MatchTweetsTwoTerms)(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus->MatchTweets({"49ers", "review"}));
  }
}

BENCHMARK_F(OnlineFixture, BM_StoreExactLookup)(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Find("49ers"));
  }
}

BENCHMARK_F(OnlineFixture, BM_StorePhraseLookup)(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->FindPhrase("review"));
  }
}

}  // namespace

BENCHMARK_MAIN();
