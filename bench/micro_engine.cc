// Micro-benchmarks of the online stage: the primitives the per-request hot
// path leans on (token-index matching, store lookups, evidence-index
// lookups) and the detect-stage workload comparison the PR 5 fast path is
// judged by — the reference serial detector (live collection per expansion
// term, no evidence index) against the snapshot-time fast path (precomputed
// per-term pools + parallel live fan-out), on a multi-term in-vocabulary
// workload (§6.3 budgets: expansion < 100 ms, detection < 1 s).
//
// Both engines are verified to return bit-identical ranked experts on every
// workload query, and their detect/rank trace annotations (candidate and
// expert counts) are compared, before any timing is reported — a speedup
// table can never ship from divergent paths.
//
// Usage: micro_engine [--iters=K] [--queries=N] [--json=PATH] [--smoke]
//
// Results are published as bench.online.* gauges into a bench-local
// MetricsRegistry and written as a JSON snapshot (default BENCH_online.json;
// schema in EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "common/timer.h"
#include "expert/evidence_index.h"
#include "obs/obs.h"
#include "serving/engine.h"

namespace {

using namespace esharp;

// Sink defeating dead-code elimination in the primitive loops.
volatile uint64_t g_sink = 0;

double BestOf(size_t iters, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < iters; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

void Fail(const std::string& why) {
  std::fprintf(stderr, "micro_engine: %s\n", why.c_str());
  std::exit(1);
}

/// The detect-stage workload: queries that hit a multi-term community, so
/// expansion fans out to several in-vocabulary terms — the shape the
/// evidence index and the parallel collection are built for.
std::vector<std::string> MultiTermQueries(const community::CommunityStore& store,
                                          size_t limit) {
  std::vector<std::string> queries;
  for (const community::Community& c : store.communities()) {
    if (c.terms.size() < 2) continue;
    queries.push_back(c.terms.front());
    if (queries.size() >= limit) break;
  }
  return queries;
}

struct VerifiedRun {
  std::vector<std::vector<expert::RankedExpert>> experts;  // per query
  /// Per-query (candidates, experts) counts from the detect/rank spans.
  std::vector<std::pair<std::string, std::string>> counts;
  uint64_t terms_precomputed = 0;
  uint64_t terms_live = 0;
};

/// Runs every query once, collecting answers and the trace annotations that
/// prove what each path saw (candidate pool size, expert count).
VerifiedRun RunVerified(serving::ServingEngine& engine, obs::Tracer& tracer,
                        const std::vector<std::string>& queries) {
  tracer.Reset();
  VerifiedRun run;
  for (const std::string& q : queries) {
    serving::QueryRequest request;
    request.query = q;
    Result<serving::QueryResponse> response = engine.Query(std::move(request));
    if (!response.ok()) Fail("query '" + q + "': " + response.status().ToString());
    run.experts.push_back(std::move(response->experts));
  }
  std::string candidates, experts;
  for (const obs::TraceEvent& e : tracer.Events()) {
    for (const auto& [key, value] : e.args) {
      if (e.name == "detect" && key == "candidates") candidates = value;
      if (e.name == "detect" && key == "terms_precomputed") {
        run.terms_precomputed += std::strtoull(value.c_str(), nullptr, 10);
      }
      if (e.name == "detect" && key == "terms_live") {
        run.terms_live += std::strtoull(value.c_str(), nullptr, 10);
      }
      if (e.name == "rank" && key == "experts") {
        experts = value;
        run.counts.emplace_back(candidates, experts);
      }
    }
  }
  return run;
}

bool SameExperts(const std::vector<expert::RankedExpert>& a,
                 const std::vector<expert::RankedExpert>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // Exact double equality on every field: the fast path must be
    // bit-identical, not merely close.
    if (a[i].user != b[i].user || a[i].score != b[i].score ||
        a[i].z_topical_signal != b[i].z_topical_signal ||
        a[i].z_mention_impact != b[i].z_mention_impact ||
        a[i].z_retweet_impact != b[i].z_retweet_impact ||
        a[i].z_conversation != b[i].z_conversation ||
        a[i].z_hashtag != b[i].z_hashtag ||
        a[i].z_followers != b[i].z_followers) {
      return false;
    }
  }
  return true;
}

struct DetectPass {
  double detect_ms = 0;  // sum over the workload, best pass
  double expand_ms = 0;  // companions from that same best pass
  double rank_ms = 0;
};

/// Times the workload `iters` times and keeps the pass with the smallest
/// detect-stage sum (minimum filters scheduler noise; expand/rank come from
/// the same pass so the breakdown stays coherent).
DetectPass TimeDetect(serving::ServingEngine& engine,
                      const std::vector<std::string>& queries, size_t iters) {
  DetectPass best;
  best.detect_ms = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < iters; ++i) {
    DetectPass pass;
    for (const std::string& q : queries) {
      serving::QueryRequest request;
      request.query = q;
      Result<serving::QueryResponse> response =
          engine.Query(std::move(request));
      if (!response.ok()) {
        Fail("query '" + q + "': " + response.status().ToString());
      }
      pass.detect_ms += response->stages.detect_ms;
      pass.expand_ms += response->stages.expand_ms;
      pass.rank_ms += response->stages.rank_ms;
      g_sink += response->experts.size();
    }
    if (pass.detect_ms < best.detect_ms) best = pass;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  size_t iters = 7;
  size_t max_queries = 48;
  bool smoke = false;
  std::string json_path = "BENCH_online.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::strtoul(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      max_queries = std::strtoul(argv[i] + 10, nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) {
    iters = std::min<size_t>(iters, 2);
    max_queries = std::min<size_t>(max_queries, 8);
  }
  if (iters < 1) iters = 1;
  if (max_queries < 1) max_queries = 1;

  bench::PrintHeader("Micro: online detect fast path");
  bench::WorldOptions world_options;
  world_options.scale = bench::WorldScale::kSmall;
  auto world = bench::BuildWorld(world_options);
  const microblog::TweetCorpus& corpus = world->corpus;

  // Two snapshot managers over the same corpus and store: the fast one
  // builds the term-evidence index at publish (the default), the reference
  // one publishes without it — so the reference engine cannot quietly serve
  // from precomputed pools.
  auto store = std::make_shared<const community::CommunityStore>(
      world->artifacts.store);
  serving::SnapshotManager fast_manager(&corpus);
  fast_manager.Publish(store);
  serving::SnapshotManager ref_manager(&corpus);
  ref_manager.set_build_evidence_on_publish(false);
  ref_manager.Publish(store);

  std::vector<std::string> queries = MultiTermQueries(*store, max_queries);
  if (queries.empty()) Fail("no multi-term community in the store");

  // The expansion vocabulary the workload touches, for the primitive loops.
  std::shared_ptr<const serving::ServingSnapshot> fast_snapshot =
      fast_manager.Acquire();
  const expert::TermEvidenceIndex* evidence = fast_snapshot->evidence();
  if (evidence == nullptr) Fail("published snapshot carries no evidence index");
  const core::ESharp& esharp = fast_snapshot->esharp();
  std::vector<std::string> terms;
  for (const std::string& q : queries) {
    core::QueryExpansion expansion = esharp.Expand(q);
    if (!expansion.matched) Fail("workload query '" + q + "' did not match");
    for (std::string& t : expansion.terms) terms.push_back(std::move(t));
  }
  // Pre-tokenized forms (amortized per snapshot in production).
  std::vector<std::vector<std::string>> term_tokens;
  std::vector<std::vector<microblog::TokenId>> term_ids;
  for (const std::string& t : terms) {
    term_tokens.push_back(SplitWhitespace(t));
    term_ids.push_back(corpus.TokenizeNormalized(t));
  }

  std::printf("world: %zu tweets, %zu users, %zu tokens; workload: %zu "
              "queries -> %zu expansion terms; best of %zu\n\n",
              corpus.num_tweets(), corpus.num_users(), corpus.num_tokens(),
              queries.size(), terms.size(), iters);

  // ---- Primitives ---------------------------------------------------------
  double match_string_s = BestOf(iters, [&] {
    for (const auto& tokens : term_tokens) {
      g_sink += corpus.MatchTweets(tokens).size();
    }
  });
  double match_token_s = BestOf(iters, [&] {
    for (const auto& ids : term_ids) {
      g_sink += corpus.MatchTweets(ids).size();
    }
  });
  // ---- Gallop-vs-linear cutover calibration -------------------------------
  // MatchTweets intersects rarest-first; each step picks galloping search
  // when the next list is more than GallopDfRatio times longer than the
  // running result, SIMD linear merge otherwise. Sweep the cutover over
  // the live workload to find (and pin in the JSON, informational) where
  // this machine's crossover sits. One workload pass is ~0.1 ms — below
  // timer-jitter scale — so each timed iteration repeats the pass; the
  // recorded value is per-pass. Regression protection for the *shipped*
  // ratio comes from the gated match_seconds{path="token_ids"} metric,
  // which runs under the configured default; the sweep restores that
  // default afterwards so later sections measure the shipped setting.
  const size_t configured_ratio = microblog::GetGallopDfRatio();
  const size_t sweep_ratios[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const size_t sweep_reps = smoke ? 2 : 25;
  std::vector<std::pair<size_t, double>> sweep;
  for (size_t ratio : sweep_ratios) {
    microblog::SetGallopDfRatio(ratio);
    double s = BestOf(iters, [&] {
      for (size_t rep = 0; rep < sweep_reps; ++rep) {
        for (const auto& ids : term_ids) {
          g_sink += corpus.MatchTweets(ids).size();
        }
      }
    });
    sweep.emplace_back(ratio, s / sweep_reps);
  }
  microblog::SetGallopDfRatio(configured_ratio);
  size_t best_ratio = sweep.front().first;
  double best_ratio_s = sweep.front().second;
  for (const auto& [ratio, s] : sweep) {
    if (s < best_ratio_s) {
      best_ratio = ratio;
      best_ratio_s = s;
    }
  }
  std::printf("\n%-28s %12s\n", "Gallop cutover sweep (ratio)", "Best(ms)");
  for (const auto& [ratio, s] : sweep) {
    std::printf("%-28zu %12.3f%s\n", ratio, s * 1e3,
                ratio == best_ratio ? "  <- best" : "");
  }
  std::printf("configured df-ratio %zu; sweep best %zu\n", configured_ratio,
              best_ratio);

  expert::ExpertDetector detector(&corpus);
  double collect_live_s = BestOf(iters, [&] {
    for (const auto& ids : term_ids) {
      auto pool = detector.CollectCandidates(ids);
      g_sink += pool ? pool->size() : 0;
    }
  });
  double evidence_lookup_s = BestOf(iters, [&] {
    for (const std::string& t : terms) {
      const auto* pool = evidence->Find(t);
      g_sink += pool ? pool->size() : 0;
    }
  });
  double store_lookup_s = BestOf(iters, [&] {
    for (const std::string& q : queries) g_sink += store->Find(q).ok();
  });

  std::printf("%-28s %12s\n", "Primitive (workload sweep)", "Best(ms)");
  std::printf("%-28s %12.3f\n", "match_tweets_string", match_string_s * 1e3);
  std::printf("%-28s %12.3f\n", "match_tweets_token_ids", match_token_s * 1e3);
  std::printf("%-28s %12.3f\n", "collect_candidates_live", collect_live_s * 1e3);
  std::printf("%-28s %12.3f\n", "evidence_index_lookup", evidence_lookup_s * 1e3);
  std::printf("%-28s %12.3f\n", "store_exact_lookup", store_lookup_s * 1e3);

  // ---- Detect-stage workload: reference vs fast path ----------------------
  obs::Tracer ref_tracer, fast_tracer;
  serving::ServingOptions ref_options;
  ref_options.num_threads = world_options.threads;
  ref_options.enable_cache = false;
  ref_options.enable_single_flight = false;
  ref_options.use_evidence_index = false;
  ref_options.parallel_detect = false;
  ref_options.tracer = &ref_tracer;
  serving::ServingEngine ref_engine(&ref_manager, ref_options);

  serving::ServingOptions fast_options = ref_options;
  fast_options.use_evidence_index = true;
  fast_options.parallel_detect = true;
  fast_options.tracer = &fast_tracer;
  serving::ServingEngine fast_engine(&fast_manager, fast_options);

  // Equivalence gate before any timing.
  VerifiedRun ref_run = RunVerified(ref_engine, ref_tracer, queries);
  VerifiedRun fast_run = RunVerified(fast_engine, fast_tracer, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!SameExperts(ref_run.experts[i], fast_run.experts[i])) {
      Fail("experts diverge on query '" + queries[i] + "'");
    }
  }
  if (ref_run.counts != fast_run.counts) {
    Fail("trace candidate/expert counts diverge between paths");
  }
#if ESHARP_OBS_ENABLED
  // Under -DESHARP_OBS_OFF=ON spans record nothing, so the per-query
  // count comparison above is vacuous and the span-annotated
  // precomputed/live term split is unavailable; the ranked-experts
  // equality remains the equivalence gate.
  if (ref_run.counts.size() != queries.size()) {
    Fail("expected one detect/rank span pair per query");
  }
  if (fast_run.terms_precomputed == 0) {
    Fail("fast path never used the evidence index");
  }
#endif
  std::printf("\nequivalence: %zu queries bit-identical; counts match per "
              "query; fast path served %llu/%llu terms precomputed\n",
              queries.size(),
              static_cast<unsigned long long>(fast_run.terms_precomputed),
              static_cast<unsigned long long>(fast_run.terms_precomputed +
                                              fast_run.terms_live));

  ref_tracer.Reset();
  fast_tracer.Reset();
  DetectPass ref_pass = TimeDetect(ref_engine, queries, iters);
  DetectPass fast_pass = TimeDetect(fast_engine, queries, iters);
  double detect_speedup =
      fast_pass.detect_ms > 0 ? ref_pass.detect_ms / fast_pass.detect_ms : 0;

  std::printf("\n%-12s %12s %12s %12s\n", "Path", "Expand(ms)", "Detect(ms)",
              "Rank(ms)");
  std::printf("%-12s %12.3f %12.3f %12.3f\n", "reference", ref_pass.expand_ms,
              ref_pass.detect_ms, ref_pass.rank_ms);
  std::printf("%-12s %12.3f %12.3f %12.3f\n", "fast", fast_pass.expand_ms,
              fast_pass.detect_ms, fast_pass.rank_ms);
  std::printf("\ndetect-stage speedup: %.2fx (acceptance floor 3x on this "
              "multi-term in-vocabulary workload)\n",
              detect_speedup);

  // ---- Machine-readable snapshot ------------------------------------------
  obs::MetricsRegistry registry;
  registry.GetGauge("bench.online.queries")
      ->Set(static_cast<double>(queries.size()));
  registry.GetGauge("bench.online.expansion_terms")
      ->Set(static_cast<double>(terms.size()));
  registry.GetGauge("bench.online.evidence_terms")
      ->Set(static_cast<double>(evidence->num_terms()));
  registry.GetGauge("bench.online.match_seconds", {{"path", "string"}})
      ->Set(match_string_s);
  registry.GetGauge("bench.online.match_seconds", {{"path", "token_ids"}})
      ->Set(match_token_s);
  registry.GetGauge("bench.online.match_speedup")
      ->Set(match_token_s > 0 ? match_string_s / match_token_s : 0);
  for (const auto& [ratio, s] : sweep) {
    // "_pass_us" rather than "*_seconds": per-ratio micro-timings are
    // calibration data, not a regression gate (bench_diff treats the
    // name as informational; the gated token-id match metric covers the
    // shipped ratio).
    registry.GetGauge("bench.online.gallop_sweep_pass_us",
                      {{"ratio", std::to_string(ratio)}})
        ->Set(s * 1e6);
  }
  registry.GetGauge("bench.online.gallop_best_ratio")
      ->Set(static_cast<double>(best_ratio));
  registry.GetGauge("bench.online.gallop_configured_ratio")
      ->Set(static_cast<double>(configured_ratio));
  registry.GetGauge("bench.online.collect_seconds", {{"path", "live"}})
      ->Set(collect_live_s);
  registry.GetGauge("bench.online.collect_seconds", {{"path", "precomputed"}})
      ->Set(evidence_lookup_s);
  registry.GetGauge("bench.online.store_lookup_seconds")->Set(store_lookup_s);
  registry.GetGauge("bench.online.detect_ms", {{"path", "reference"}})
      ->Set(ref_pass.detect_ms);
  registry.GetGauge("bench.online.detect_ms", {{"path", "fast"}})
      ->Set(fast_pass.detect_ms);
  registry.GetGauge("bench.online.expand_ms", {{"path", "reference"}})
      ->Set(ref_pass.expand_ms);
  registry.GetGauge("bench.online.expand_ms", {{"path", "fast"}})
      ->Set(fast_pass.expand_ms);
  registry.GetGauge("bench.online.rank_ms", {{"path", "reference"}})
      ->Set(ref_pass.rank_ms);
  registry.GetGauge("bench.online.rank_ms", {{"path", "fast"}})
      ->Set(fast_pass.rank_ms);
  registry.GetGauge("bench.online.detect_speedup")->Set(detect_speedup);
  registry.GetGauge("bench.online.terms_precomputed")
      ->Set(static_cast<double>(fast_run.terms_precomputed));
  registry.GetGauge("bench.online.terms_live")
      ->Set(static_cast<double>(fast_run.terms_live));
  Status written = registry.WriteJsonFile(json_path);
  if (!written.ok()) {
    ESHARP_LOG(WARN) << "could not write " << json_path << ": "
                     << written.ToString();
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
