// Compares two BENCH_*.json snapshots (the MetricsRegistry::ExportJson
// schema: counters/gauges/histograms arrays of {"name","labels",...}) and
// reports per-metric deltas, failing when a directional metric regresses
// beyond the threshold — the mechanical check that a perf PR's committed
// baseline actually moved the right way, and that later PRs do not quietly
// give the win back.
//
// Direction is inferred from the metric name:
//   higher-better: *qps*, *speedup*, *hit_rate*
//   lower-better:  *_ms, *_seconds, *seconds*, p50/p95/p99
//   anything else: informational (printed, never failing)
//
// *overhead_pct* is informational by design: it is a difference of two
// noisy ratios (a percent of a percent after the division here), so its
// relative delta is meaningless — the absolute budget is enforced by the
// emitting bench itself.
//
// Two metric classes get a widened effective threshold:
//   - p50/p95/p99 values come out of the obs histogram, whose log-spaced
//     buckets are ~16% apart — a one-bucket move is the smallest delta
//     the histogram can represent, so the threshold is floored at just
//     above one bucket step (deltas below that are quantization).
//   - speedup/*_ratio metrics are quotients of two independently noisy
//     measurements (variance roughly doubles), so they get 2x the
//     threshold.
//
// Usage: bench_diff BASE.json NEW.json [MORE.json...] [--threshold_pct=N]
//   (default threshold 10)
//
// When several NEW files are given they are treated as repeated runs of
// the same bench and merged per metric before diffing: lower-better
// metrics keep their minimum across runs, higher-better their maximum,
// informational ones the first run's value. Best-of-N is the standard
// way to gate wall-clock numbers on machines with bursty background
// load — a burst slows one whole run, but each metric only needs one
// unperturbed sample to show its true value.
//
// Exit status: 0 when no directional metric regressed by more than the
// threshold, 1 otherwise (also 1 on parse/read errors).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

enum class Direction { kHigherBetter, kLowerBetter, kInformational };

Direction DirectionOf(const std::string& name) {
  auto has = [&](const char* needle) {
    return name.find(needle) != std::string::npos;
  };
  if (has("qps") || has("speedup") || has("hit_rate")) {
    return Direction::kHigherBetter;
  }
  if (has("overhead_pct")) return Direction::kInformational;
  if (has("_ms") || has("seconds") || has(".p50") || has(".p95") ||
      has(".p99")) {
    return Direction::kLowerBetter;
  }
  return Direction::kInformational;
}

/// Extracts the string value of `"key":"..."` starting at or after `from`
/// within `line`. Returns npos-sentinel empty string when absent. Escapes
/// are passed through verbatim — metric names and label values in this
/// schema are plain identifiers.
bool FindStringField(const std::string& line, const char* key,
                     std::string* out) {
  std::string needle = std::string("\"") + key + "\":\"";
  size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  size_t start = at + needle.size();
  size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

bool FindNumberField(const std::string& line, const char* key, double* out) {
  std::string needle = std::string("\"") + key + "\":";
  size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* p = line.c_str() + at + needle.size();
  char* end = nullptr;
  double v = std::strtod(p, &end);
  if (end == p) return false;
  *out = v;
  return true;
}

/// `"labels":{...}` verbatim (already canonically ordered by the emitter),
/// "{}" when absent.
std::string FindLabels(const std::string& line) {
  size_t at = line.find("\"labels\":");
  if (at == std::string::npos) return "{}";
  size_t open = line.find('{', at);
  size_t close = line.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return "{}";
  return line.substr(open, close - open + 1);
}

/// Flat metric map: "name{labels}" (plus ".p50" etc. for histogram
/// sub-values) -> value.
using MetricMap = std::map<std::string, double>;

bool ParseFile(const std::string& path, MetricMap* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::string line;
  bool saw_any_array = false;
  while (std::getline(in, line)) {
    if (line.find("\"counters\"") != std::string::npos ||
        line.find("\"gauges\"") != std::string::npos ||
        line.find("\"histograms\"") != std::string::npos) {
      saw_any_array = true;
    }
    std::string name;
    if (!FindStringField(line, "name", &name)) continue;
    std::string key = name + FindLabels(line);
    double v = 0;
    if (FindNumberField(line, "value", &v)) {
      (*out)[key] = v;
      continue;
    }
    // Histogram entry: explode the summary fields into sub-metrics.
    static const char* kFields[] = {"count", "mean", "max", "p50", "p95", "p99"};
    for (const char* f : kFields) {
      if (FindNumberField(line, f, &v)) (*out)[key + "." + f] = v;
    }
  }
  if (!saw_any_array) {
    std::fprintf(stderr, "bench_diff: %s is not a metrics JSON snapshot\n",
                 path.c_str());
    return false;
  }
  return true;
}

/// Widens the gate for metric classes whose run-to-run jitter exceeds a
/// typical threshold even on a quiet machine (header comment has the
/// full rationale).
double EffectiveThreshold(const std::string& name, double threshold_pct) {
  auto has = [&](const char* needle) {
    return name.find(needle) != std::string::npos;
  };
  // Quotients of two independently noisy measurements.
  if (has("speedup") || has("_ratio")) return 2.0 * threshold_pct;
  // Histogram percentiles are quantized to ~15.6% bucket steps (128
  // log-spaced buckets over [1us, 100s]); floor just above one step.
  constexpr double kOneBucketStepPct = 17.0;
  if (has("p50") || has("p95") || has("p99")) {
    return threshold_pct < kOneBucketStepPct ? kOneBucketStepPct
                                             : threshold_pct;
  }
  return threshold_pct;
}

const char* DirectionTag(Direction d) {
  switch (d) {
    case Direction::kHigherBetter: return "higher";
    case Direction::kLowerBetter: return "lower";
    case Direction::kInformational: return "info";
  }
  return "info";
}

}  // namespace

int main(int argc, char** argv) {
  double threshold_pct = 10.0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold_pct=", 16) == 0) {
      threshold_pct = std::strtod(argv[i] + 16, nullptr);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() < 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASE.json NEW.json [MORE.json...] "
                 "[--threshold_pct=N]\n");
    return 1;
  }

  MetricMap base, next;
  if (!ParseFile(files[0], &base) || !ParseFile(files[1], &next)) return 1;
  // Fold any further snapshots in as repeated runs: keep the per-metric
  // best in the metric's own direction (first run wins for
  // informational metrics and breaks ties).
  for (size_t i = 2; i < files.size(); ++i) {
    MetricMap run;
    if (!ParseFile(files[i], &run)) return 1;
    for (const auto& [key, v] : run) {
      auto it = next.find(key);
      if (it == next.end()) {
        next[key] = v;
        continue;
      }
      switch (DirectionOf(key)) {
        case Direction::kLowerBetter:
          if (v < it->second) it->second = v;
          break;
        case Direction::kHigherBetter:
          if (v > it->second) it->second = v;
          break;
        case Direction::kInformational:
          break;
      }
    }
  }

  std::printf("bench_diff: %s -> %s%s (threshold %.1f%%)\n", files[0].c_str(),
              files[1].c_str(),
              files.size() > 2 ? " (+best-of reruns)" : "", threshold_pct);
  std::printf("%-58s %12s %12s %9s %7s\n", "metric", "base", "new", "delta%",
              "dir");

  size_t regressions = 0, improvements = 0, missing = 0;
  for (const auto& [key, base_v] : base) {
    auto it = next.find(key);
    if (it == next.end()) {
      std::printf("%-58s %12.6g %12s %9s %7s\n", key.c_str(), base_v,
                  "(gone)", "-", "info");
      ++missing;
      continue;
    }
    double new_v = it->second;
    double delta_pct =
        base_v != 0 ? 100.0 * (new_v - base_v) / std::fabs(base_v)
                    : (new_v == 0 ? 0 : 100.0);
    Direction dir = DirectionOf(key);
    double gate = EffectiveThreshold(key, threshold_pct);
    bool regressed = false;
    if (dir == Direction::kHigherBetter) regressed = delta_pct < -gate;
    if (dir == Direction::kLowerBetter) regressed = delta_pct > gate;
    bool improved = false;
    if (dir == Direction::kHigherBetter) improved = delta_pct > gate;
    if (dir == Direction::kLowerBetter) improved = delta_pct < -gate;
    if (regressed) ++regressions;
    if (improved) ++improvements;
    std::printf("%-58s %12.6g %12.6g %+8.1f%% %7s%s\n", key.c_str(), base_v,
                new_v, delta_pct, DirectionTag(dir),
                regressed ? "  << REGRESSION" : "");
  }
  for (const auto& [key, new_v] : next) {
    if (base.find(key) == base.end()) {
      std::printf("%-58s %12s %12.6g %9s %7s\n", key.c_str(), "(new)", new_v,
                  "-", "info");
    }
  }

  std::printf("\n%zu regression(s), %zu improvement(s) beyond %.1f%%; "
              "%zu metric(s) missing from the new file\n",
              regressions, improvements, threshold_pct, missing);
  return regressions > 0 ? 1 : 0;
}
