// Reproduces Figure 9: impact of the minimum z-score threshold on the
// average number of experts per query, for the Top-N head-query set.
//
// Paper shape: both curves decrease monotonically as the threshold rises
// (a low threshold admits many low-quality experts, a high threshold keeps
// a few excellent ones), and the e# curve sits above the baseline curve.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/metrics.h"

int main() {
  using namespace esharp;
  bench::PrintHeader(
      "Figure 9: min z-score vs avg experts per query (top-N set)");

  auto world = bench::BuildWorld();
  auto runs = bench::RunStandardComparison(*world);
  const eval::SetRun& top = runs.back();  // the top-N set

  std::printf("%-10s %-16s %-16s\n", "Min z", "Baseline avg", "e# avg");
  for (double z = 0.0; z <= 8.75; z += 1.25) {
    double baseline =
        eval::AvgExpertsPerQuery(top, eval::Side::kBaseline, z);
    double esharp_avg = eval::AvgExpertsPerQuery(top, eval::Side::kESharp, z);
    std::printf("%-10.2f %-16.2f %-16.2f\n", z, baseline, esharp_avg);
  }
  std::printf(
      "\nPaper shape: both series decrease in the threshold; e# dominates\n"
      "the baseline across the sweep.\n");
  return 0;
}
