// Ablation: Pal & Counts' optional cluster-analysis filter.
//
// §3 of the paper: "Pal and Counts propose an optional filtering step,
// based on cluster analysis. This step is computationally expensive, and it
// is contrary to our objective of improving recall. Therefore, we discarded
// it in our implementation." This bench quantifies the decision: recall
// metrics (answered queries, experts per query) and judged impurity with
// the filter off (e#'s production setting) and on.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/metrics.h"

namespace {

using namespace esharp;

struct RecallSummary {
  double answered = 0;
  double avg_experts = 0;
  double impurity = 0;
};

RecallSummary Measure(const bench::ExperimentWorld& world,
                      bool enable_filter) {
  core::ESharpOptions options;
  options.detector.enable_cluster_filter = enable_filter;
  core::ESharp system(&world.artifacts.store, &world.corpus, options);
  auto runs = *eval::RunComparison(system, world.query_sets);

  // Note: RunComparison relaxes thresholds but keeps the filter flag.
  RecallSummary s;
  eval::CrowdOptions crowd;
  size_t sets = 0;
  for (const eval::SetRun& run : runs) {
    s.answered += eval::AnsweredProportion(run, eval::Side::kESharp);
    s.avg_experts += eval::AvgExpertsPerQuery(run, eval::Side::kESharp, 0.0);
    auto curve = eval::ImpurityCurve(run, eval::Side::kESharp, world.corpus,
                                     {0.0}, crowd);
    s.impurity += curve[0].impurity;
    ++sets;
  }
  s.answered /= static_cast<double>(sets);
  s.avg_experts /= static_cast<double>(sets);
  s.impurity /= static_cast<double>(sets);
  return s;
}

}  // namespace

int main() {
  using namespace esharp;
  bench::PrintHeader("Ablation: the optional cluster-analysis filter (§3)");

  auto world = bench::BuildWorld();
  RecallSummary off = Measure(*world, false);
  RecallSummary on = Measure(*world, true);

  std::printf("%-28s %-14s %-14s\n", "Metric (e#, all sets avg)",
              "Filter OFF", "Filter ON");
  std::printf("%-28s %-14.3f %-14.3f\n", "Answered queries", off.answered,
              on.answered);
  std::printf("%-28s %-14.2f %-14.2f\n", "Experts per query",
              off.avg_experts, on.avg_experts);
  std::printf("%-28s %-14.3f %-14.3f\n", "Impurity (judged)", off.impurity,
              on.impurity);
  std::printf(
      "\nShape to check: the filter trims the candidate pool (lower recall\n"
      "columns with it ON) — which is exactly why the recall-oriented e#\n"
      "pipeline drops the stage; any impurity benefit is modest.\n");
  return 0;
}
