#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>

namespace esharp::bench {

namespace {

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).MoveValueUnsafe();
}

}  // namespace

std::unique_ptr<ExperimentWorld> BuildWorld(const WorldOptions& options) {
  const bool standard = options.scale == WorldScale::kStandard;

  querylog::UniverseOptions uo;
  uo.num_categories = 6;
  uo.domains_per_category = standard ? 60 : 12;
  uo.seed = options.seed;

  querylog::GeneratorOptions go;
  go.seed = options.seed + 1;
  go.head_impressions = standard ? 50000 : 20000;

  microblog::CorpusOptions co;
  co.seed = options.seed + 2;
  co.casual_users = standard ? 1500 : 200;
  co.spam_users = standard ? 120 : 20;
  co.mean_experts_per_domain = 5.0;
  co.expert_tweets_mean = standard ? 60 : 30;

  eval::QuerySetOptions qso;
  qso.per_category = standard ? 100 : 20;
  qso.top_n = standard ? 250 : 50;

  auto world = std::make_unique<ExperimentWorld>();
  world->universe =
      Unwrap(querylog::TopicUniverse::Generate(uo), "universe generation");
  world->generated =
      Unwrap(GenerateQueryLog(world->universe, go), "query log generation");

  static ThreadPool pool(options.threads);
  core::OfflineOptions offline;
  offline.backend = options.backend;
  offline.pool = &pool;
  offline.num_partitions = options.threads;
  offline.meter = &world->meter;
  offline.extraction.min_similarity = 0.15;
  world->artifacts = Unwrap(RunOfflinePipeline(world->generated.log, offline),
                            "offline pipeline");

  world->corpus =
      Unwrap(GenerateCorpus(world->universe, co), "corpus generation");
  world->query_sets = Unwrap(
      BuildQuerySets(world->universe, world->generated.log, qso),
      "query set construction");
  return world;
}

std::vector<eval::SetRun> RunStandardComparison(const ExperimentWorld& world) {
  core::ESharp system(&world.artifacts.store, &world.corpus);
  return *eval::RunComparison(system, world.query_sets);
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace esharp::bench
