// Reproduces Table 1 (the six query sets) and Table 8: the proportion of
// queries for which at least one candidate expert was found, before and
// after query expansion.
//
// Paper shape: e# >= baseline on every set; the smallest improvement lands
// on the set whose baseline is already strongest, and the largest on the
// head-query set drawn from the same log e# was trained on (Top 250, +35%).

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/metrics.h"

int main() {
  using namespace esharp;
  bench::PrintHeader("Table 1: query sets used for the study");

  auto world = bench::BuildWorld();

  size_t total_queries = 0;
  std::printf("%-14s %-7s %s\n", "Set Name", "Count", "Examples");
  for (const eval::QuerySet& set : world->query_sets) {
    std::string examples;
    for (size_t i = 0; i < set.queries.size() && i < 5; ++i) {
      if (i > 0) examples += ", ";
      examples += set.queries[i].text;
    }
    std::printf("%-14s %-7zu %s\n", set.name.c_str(), set.queries.size(),
                examples.c_str());
    total_queries += set.queries.size();
  }
  std::printf("Total queries: %zu (paper: 750)\n", total_queries);

  bench::PrintHeader(
      "Table 8: proportion of queries with at least one candidate expert");

  auto runs = bench::RunStandardComparison(*world);
  std::printf("%-14s %-10s %-10s %-12s\n", "Data set", "Baseline", "e#",
              "Improvement");
  for (const eval::SetRun& run : runs) {
    double baseline =
        eval::AnsweredProportion(run, eval::Side::kBaseline);
    double esharp_prop =
        eval::AnsweredProportion(run, eval::Side::kESharp);
    double improvement =
        baseline > 0 ? 100.0 * (esharp_prop - baseline) / baseline : 0.0;
    std::printf("%-14s %-10.2f %-10.2f %+10.1f%%\n", run.name.c_str(),
                baseline, esharp_prop, improvement);
  }
  std::printf(
      "\nPaper numbers: Sports .87->.96, Electronics .89->.98, Finance\n"
      ".94->.97, Health .82->.98, Wikipedia .83->.87, Top250 .64->.86.\n"
      "Shape to check: e# >= baseline everywhere, largest relative gain on\n"
      "the head-query (top-N) set.\n");
  return 0;
}
