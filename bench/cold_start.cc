// Cold-start benchmark: the versioned binary snapshot (mmap + validate +
// memcpy-decode; serving/snapshot_file.h) against a full offline pipeline
// rebuild (parse the query log, build the similarity graph, cluster,
// index, collect per-term evidence) — the two ways a serving process can
// reach "answering queries" after a restart. The acceptance floor is a
// 10x load-vs-rebuild speedup on this corpus.
//
// Before any timing, an equivalence gate proves the cold-started engine
// answers the whole workload bit-identically to an engine over the
// pipeline-built artifacts; a speedup can never ship from a divergent
// load path.
//
// A second section times the common/simd.h kernels at full dispatch
// against their forced-scalar twins (same binary, ForceLevelForTest), so
// the committed baseline records what vectorization buys on this machine.
//
// Usage: cold_start [--iters=K] [--smoke] [--json=PATH] [--snapshot=PATH]
//
// Results are published as bench.coldstart.* / bench.simd.* gauges and
// written as a JSON snapshot (default BENCH_coldstart.json; schema in
// EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"
#include "obs/obs.h"
#include "serving/engine.h"
#include "serving/snapshot.h"
#include "serving/snapshot_file.h"

namespace {

using namespace esharp;

volatile uint64_t g_sink = 0;

double BestOf(size_t iters, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < iters; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

void Fail(const std::string& why) {
  std::fprintf(stderr, "cold_start: %s\n", why.c_str());
  std::exit(1);
}

/// The equivalence workload: one representative term per community (the
/// multi-term ones fan expansion out widest) plus an out-of-vocabulary
/// probe.
std::vector<std::string> Workload(const community::CommunityStore& store,
                                  size_t limit) {
  std::vector<std::string> queries;
  for (const community::Community& c : store.communities()) {
    if (c.terms.empty()) continue;
    queries.push_back(c.terms.front());
    if (queries.size() >= limit) break;
  }
  queries.push_back("no such topic anywhere");
  return queries;
}

serving::ServingOptions EngineOptions() {
  serving::ServingOptions o;
  o.num_threads = 2;
  o.enable_cache = false;
  o.enable_single_flight = false;
  return o;
}

bool SameEvidence(const std::vector<expert::CandidateEvidence>& a,
                  const std::vector<expert::CandidateEvidence>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].user != b[i].user || a[i].is_author != b[i].is_author ||
        a[i].is_mentioned != b[i].is_mentioned ||
        a[i].tweets_on_topic != b[i].tweets_on_topic ||
        a[i].mentions_on_topic != b[i].mentions_on_topic ||
        a[i].retweets_on_topic != b[i].retweets_on_topic ||
        a[i].conversational_on_topic != b[i].conversational_on_topic ||
        a[i].hashtag_on_topic != b[i].hashtag_on_topic) {
      return false;
    }
  }
  return true;
}

/// The gate: every workload query must come back identical from the
/// pipeline-built engine and the cold-started one.
void VerifyEquivalence(serving::SnapshotManager* built,
                       serving::SnapshotManager* cold,
                       const std::vector<std::string>& queries) {
  serving::ServingEngine built_engine(built, EngineOptions());
  serving::ServingEngine cold_engine(cold, EngineOptions());
  for (const std::string& q : queries) {
    serving::QueryRequest a, b;
    a.query = q;
    b.query = q;
    Result<serving::EvidenceResponse> ra =
        built_engine.QueryEvidence(std::move(a));
    Result<serving::EvidenceResponse> rb =
        cold_engine.QueryEvidence(std::move(b));
    if (ra.ok() != rb.ok()) {
      Fail("equivalence gate: '" + q + "' ok-status diverges");
    }
    if (!ra.ok()) continue;
    if (ra->terms != rb->terms || !SameEvidence(ra->evidence, rb->evidence)) {
      Fail("equivalence gate: '" + q + "' answers diverge after cold start");
    }
  }
}

/// Dispatch-vs-scalar wall ratio of one kernel loop. Forcing the scalar
/// level and restoring full dispatch around the measured closure keeps the
/// two runs inside one binary, one data set, one cache state.
double KernelSpeedup(size_t iters, const std::function<void()>& fn) {
  simd::ForceLevelForTest(simd::Level::kScalar);
  const double scalar_s = BestOf(iters, fn);
  simd::ForceLevelForTest(simd::DetectedLevel());
  const double dispatch_s = BestOf(iters, fn);
  return dispatch_s > 0 ? scalar_s / dispatch_s : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t iters = 5;
  bool smoke = false;
  std::string json_path = "BENCH_coldstart.json";
  std::string snapshot_path = "/tmp/esharp_bench_coldstart.esnap";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--snapshot=", 11) == 0) {
      snapshot_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::strtoul(argv[i] + 8, nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) iters = std::min<size_t>(iters, 2);
  if (iters < 1) iters = 1;

  bench::PrintHeader("Cold start: mmap snapshot vs pipeline rebuild");
  bench::WorldOptions world_options;
  world_options.scale = bench::WorldScale::kSmall;
  auto world = bench::BuildWorld(world_options);
  const microblog::TweetCorpus& corpus = world->corpus;

  // The rebuild being raced: everything the snapshot file replaces —
  // re-indexing the tweet collection (tokenize, intern, postings, per-user
  // totals; GenerateCorpus is the reproduction's stand-in for re-reading
  // raw tweets) plus the offline pipeline over the same query log,
  // evidence index included. Same artifacts, two roads.
  microblog::CorpusOptions corpus_options;
  corpus_options.seed = 2016 + 2;  // BuildWorld's kSmall configuration
  corpus_options.casual_users = 200;
  corpus_options.spam_users = 20;
  corpus_options.mean_experts_per_domain = 5.0;
  corpus_options.expert_tweets_mean = 30;
  auto rebuild = [&]() -> core::OfflineArtifacts {
    Result<microblog::TweetCorpus> rebuilt_corpus =
        GenerateCorpus(world->universe, corpus_options);
    if (!rebuilt_corpus.ok()) {
      Fail("corpus rebuild: " + rebuilt_corpus.status().ToString());
    }
    core::OfflineOptions offline;
    offline.extraction.min_similarity = 0.15;
    offline.corpus = &*rebuilt_corpus;
    Result<core::OfflineArtifacts> r =
        core::RunOfflinePipeline(world->generated.log, offline);
    if (!r.ok()) Fail("pipeline rebuild: " + r.status().ToString());
    return std::move(r).MoveValueUnsafe();
  };
  core::OfflineArtifacts artifacts = rebuild();

  // Save once; both the gate and the load loop read this file.
  Status saved = serving::SaveSnapshotFile(
      snapshot_path, corpus, artifacts.store, artifacts.evidence_index.get());
  if (!saved.ok()) Fail("save: " + saved.ToString());

  // ---- Equivalence gate ---------------------------------------------------
  serving::SnapshotManager built(&corpus);
  built.Publish(artifacts.store, {}, artifacts.evidence_index);
  Result<serving::SnapshotManager::ColdStartArtifacts> cold =
      serving::SnapshotManager::LoadSnapshot(snapshot_path);
  if (!cold.ok()) Fail("load: " + cold.status().ToString());
  if (!cold->info.has_evidence) Fail("snapshot lost the evidence section");
  std::vector<std::string> queries = Workload(
      built.Acquire()->store(), smoke ? 8 : 64);
  VerifyEquivalence(&built, cold->manager.get(), queries);
  std::printf("equivalence gate: %zu queries bit-identical after cold "
              "start\n",
              queries.size());

  // ---- Timing -------------------------------------------------------------
  const double pipeline_s = BestOf(iters, [&] {
    core::OfflineArtifacts rebuilt = rebuild();
    g_sink += rebuilt.store.communities().size();
  });
  const double load_s = BestOf(iters, [&] {
    Result<serving::SnapshotArtifacts> loaded =
        serving::LoadSnapshotFile(snapshot_path);
    if (!loaded.ok()) Fail("load loop: " + loaded.status().ToString());
    g_sink += loaded->corpus->num_tweets();
  });
  const double speedup = load_s > 0 ? pipeline_s / load_s : 0;
  const double file_bytes = static_cast<double>(cold->info.file_bytes);

  std::printf("\n%-24s %12s\n", "path", "seconds");
  std::printf("%-24s %12.4f\n", "pipeline rebuild", pipeline_s);
  std::printf("%-24s %12.4f\n", "snapshot load", load_s);
  std::printf("\ncold-start speedup: %.1fx (acceptance floor 10x); "
              "file %.1f KiB\n",
              speedup, file_bytes / 1024.0);

  // ---- SIMD kernels: dispatch vs forced scalar ----------------------------
  const size_t kn = smoke ? (1u << 12) : (1u << 16);
  Rng rng(2016);
  // Two filter shapes: a selective predicate (~3% pass — the regime the
  // zero-block skip is built for) and a dense one (25% — where the kernel
  // must at least hold scalar speed).
  std::vector<uint8_t> sparse_flags(kn), dense_flags(kn);
  std::vector<uint64_t> acc(kn), keys(kn);
  std::vector<uint32_t> idx(kn + 7), inter_out(kn);
  for (size_t i = 0; i < kn; ++i) {
    sparse_flags[i] = (rng.Next() & 31) == 0 ? 1 : 0;
    dense_flags[i] = (rng.Next() & 3) == 0 ? 1 : 0;
    acc[i] = rng.Next();
    keys[i] = rng.Next();
  }
  // Two overlapping sorted postings-shaped lists of similar length — the
  // regime the adaptive matcher routes to the SIMD linear merge.
  std::vector<uint32_t> list_a, list_b;
  for (uint32_t v = 0; v < kn; ++v) {
    if (rng.Next() & 1) list_a.push_back(v);
    if (rng.Next() & 1) list_b.push_back(v);
  }
  std::vector<uint8_t> blob(kn * 8);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<uint8_t>(rng.Next());
  }

  const size_t kernel_iters = smoke ? 3 : 25;
  const double compact_sparse_speedup = KernelSpeedup(kernel_iters, [&] {
    g_sink += simd::CompactSelection(sparse_flags.data(), kn, idx.data());
  });
  const double compact_dense_speedup = KernelSpeedup(kernel_iters, [&] {
    g_sink += simd::CompactSelection(dense_flags.data(), kn, idx.data());
  });
  const double hash_speedup = KernelSpeedup(kernel_iters, [&] {
    std::vector<uint64_t> a = acc;
    simd::HashCombineMix64Batch(a.data(), keys.data(), kn);
    g_sink += a[kn / 2];
  });
  const double intersect_speedup = KernelSpeedup(kernel_iters, [&] {
    g_sink += simd::IntersectSortedU32(list_a.data(), list_a.size(),
                                       list_b.data(), list_b.size(),
                                       inter_out.data());
  });
  const double checksum_speedup = KernelSpeedup(kernel_iters, [&] {
    g_sink += simd::Checksum64(blob.data(), blob.size());
  });
  simd::ForceLevelForTest(simd::DetectedLevel());

  std::printf("\nsimd kernels (dispatch %s vs scalar, n=%zu):\n",
              std::string(simd::LevelName(simd::DetectedLevel())).c_str(),
              kn);
  std::printf("  %-22s %6.2fx (3%% selectivity)\n", "compact_selection",
              compact_sparse_speedup);
  std::printf("  %-22s %6.2fx (25%% selectivity)\n", "compact_selection",
              compact_dense_speedup);
  std::printf("  %-22s %6.2fx\n", "hash_combine_mix64", hash_speedup);
  std::printf("  %-22s %6.2fx\n", "intersect_sorted_u32", intersect_speedup);
  std::printf("  %-22s %6.2fx\n", "checksum64", checksum_speedup);

  // ---- Machine-readable snapshot ------------------------------------------
  obs::MetricsRegistry registry;
  registry.GetGauge("bench.coldstart.pipeline_seconds")->Set(pipeline_s);
  registry.GetGauge("bench.coldstart.load_seconds")->Set(load_s);
  registry.GetGauge("bench.coldstart.speedup")->Set(speedup);
  registry.GetGauge("bench.coldstart.file_bytes")->Set(file_bytes);
  registry.GetGauge("bench.coldstart.queries_verified")
      ->Set(static_cast<double>(queries.size()));
  registry.GetGauge("bench.simd.level")
      ->Set(static_cast<double>(static_cast<int>(simd::DetectedLevel())));
  registry.GetGauge("bench.simd.compact_speedup", {{"selectivity", "sparse"}})
      ->Set(compact_sparse_speedup);
  registry.GetGauge("bench.simd.compact_speedup", {{"selectivity", "dense"}})
      ->Set(compact_dense_speedup);
  registry.GetGauge("bench.simd.hash_speedup")->Set(hash_speedup);
  registry.GetGauge("bench.simd.intersect_speedup")->Set(intersect_speedup);
  registry.GetGauge("bench.simd.checksum_speedup")->Set(checksum_speedup);
  Status written = registry.WriteJsonFile(json_path);
  if (!written.ok()) {
    ESHARP_LOG(WARN) << "could not write " << json_path << ": "
                     << written.ToString();
  } else {
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::remove(snapshot_path.c_str());
  return 0;
}
