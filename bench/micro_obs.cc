// Observability overhead: what instrumentation costs when it is on.
//
// Three levels:
//  * tight-loop ns/op of the primitives (counter increment, gauge set,
//    span start+end against a real tracer and against a null tracer);
//  * end-to-end ServingEngine::Execute throughput with no tracer attached —
//    the configuration production runs in, where every ESHARP_SPAN compiles
//    to an inert-span construction;
//  * the same Execute loop A/B'd against the always-on observers: a 1 Hz
//    /metrics scrape, and the time-series sampler + SLO watchdog + armed
//    flight recorder (the PR-9 incident stack). Each A/B interleaves
//    pairs and keeps the best pass per side, so symmetric scheduler
//    jitter cancels out of the comparison.
//
// The acceptance budget is < 2% Execute overhead for the sampler+recorder
// stack (self-enforced via --overhead_budget_pct, gated in
// scripts/check_bench.sh). The compile-out comparison still works too:
//
//   cmake -B build             && cmake --build build -j && ./build/bench/micro_obs
//   cmake -B build-off -DESHARP_OBS_OFF=ON && cmake --build build-off -j
//   ./build-off/bench/micro_obs
//
// Usage: micro_obs [uncached_queries] [tight_loop_iters]
//                  [--json=PATH] [--overhead_budget_pct=P]

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/strings.h"
#include "obs/debugz.h"
#include "obs/flightrecorder.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "serving/engine.h"
#include "serving/introspect.h"

namespace {

using namespace esharp;

double NsPerOp(double seconds, size_t iters) {
  return iters > 0 ? seconds * 1e9 / static_cast<double>(iters) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t queries = 5000;
  size_t iters = 2000000;
  std::string json_path;
  double overhead_budget_pct = 0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--overhead_budget_pct=", 22) == 0) {
      overhead_budget_pct = std::atof(argv[i] + 22);
    } else if (argv[i][0] != '-') {
      if (positional == 0) queries = std::strtoul(argv[i], nullptr, 10);
      if (positional == 1) iters = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    }
  }

  bench::PrintHeader("Observability overhead");
  std::printf("build mode: ESHARP_OBS_ENABLED=%d\n\n", ESHARP_OBS_ENABLED);

  // ---- Primitive costs ----------------------------------------------------
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("micro.counter");
  obs::Gauge* gauge = registry.GetGauge("micro.gauge");
  obs::Histogram* hist = registry.GetHistogram("micro.hist");

  Timer t;
  for (size_t i = 0; i < iters; ++i) counter->Increment();
  double counter_s = t.ElapsedSeconds();

  t.Reset();
  for (size_t i = 0; i < iters; ++i) gauge->Set(static_cast<double>(i));
  double gauge_s = t.ElapsedSeconds();

  size_t hist_iters = iters / 10;
  t.Reset();
  for (size_t i = 0; i < hist_iters; ++i) hist->Observe(1e-4);
  double hist_s = t.ElapsedSeconds();

  // Span against a live tracer (periodically drained so the event vector
  // does not grow unboundedly), then against a null tracer — the inert
  // path every instrumented function pays when tracing is not requested.
  obs::Tracer tracer;
  size_t span_iters = iters / 20;
  t.Reset();
  for (size_t i = 0; i < span_iters; ++i) {
    ESHARP_SPAN(s, &tracer, "micro", nullptr);
    if ((i & 0xFFF) == 0xFFF) tracer.Reset();
  }
  double span_s = t.ElapsedSeconds();

  t.Reset();
  for (size_t i = 0; i < iters; ++i) {
    ESHARP_SPAN(s, static_cast<obs::Tracer*>(nullptr), "micro", nullptr);
  }
  double inert_span_s = t.ElapsedSeconds();

  std::printf("%-34s %8.1f ns/op\n", "counter increment (sharded)",
              NsPerOp(counter_s, iters));
  std::printf("%-34s %8.1f ns/op\n", "gauge set", NsPerOp(gauge_s, iters));
  std::printf("%-34s %8.1f ns/op\n", "histogram observe",
              NsPerOp(hist_s, hist_iters));
  std::printf("%-34s %8.1f ns/op\n", "span start+end (live tracer)",
              NsPerOp(span_s, span_iters));
  std::printf("%-34s %8.1f ns/op\n", "span start+end (null tracer)",
              NsPerOp(inert_span_s, iters));

  // ---- ServingEngine::Execute, uncached, no tracer attached ---------------
  bench::WorldOptions world_options;
  world_options.scale = bench::WorldScale::kSmall;
  auto world = bench::BuildWorld(world_options);

  std::vector<std::string> workload;
  for (const querylog::QueryInfo& q : world->generated.log.queries()) {
    workload.push_back(q.text);
  }
  if (workload.empty()) {
    ESHARP_LOG(ERROR) << "empty workload";
    return 1;
  }

  serving::SnapshotManager manager(&world->corpus);
  manager.Publish(std::make_shared<const community::CommunityStore>(
      world->artifacts.store));
  serving::ServingOptions serving_options;
  serving_options.num_threads = 1;
  serving::ServingEngine engine(&manager, serving_options);

  Rng rng(99);
  t.Reset();
  for (size_t i = 0; i < queries; ++i) {
    serving::QueryRequest request;
    request.query = workload[rng.Uniform(workload.size())];
    request.bypass_cache = true;  // force the full expand/detect/rank path
    (void)engine.Query(std::move(request));
  }
  double exec_s = t.ElapsedSeconds();
  std::printf("\n%-34s %8.1f qps  (%zu uncached queries, %.3f s)\n",
              "uncached Execute throughput", queries / exec_s, queries,
              exec_s);
  std::printf("compare this line across a normal and a -DESHARP_OBS_OFF=ON "
              "build;\nthe instrumented build must stay within 2%%.\n");

  // Every A/B below replays this pass; both sides are scaled to last
  // ~1.5 s — well past the observer cadences under test — and re-timed
  // back to back, so the comparison is not dominated by warm-up or by a
  // pass too short to ever be observed.
  size_t scaled = queries;
  if (exec_s > 0 && exec_s < 1.5) {
    scaled = std::min<size_t>(
        static_cast<size_t>(static_cast<double>(queries) * 1.5 / exec_s),
        2000000);
  }
  auto run_pass = [&] {
    Timer pass;
    for (size_t i = 0; i < scaled; ++i) {
      serving::QueryRequest request;
      request.query = workload[rng.Uniform(workload.size())];
      request.bypass_cache = true;
      (void)engine.Query(std::move(request));
    }
    return scaled / pass.ElapsedSeconds();
  };

  // ---- Scrape under load --------------------------------------------------
  // The same uncached loop with a debugz server up and a client scraping
  // /metrics at 1 Hz: the exposition walk runs on a debugz worker thread,
  // and the serving thread must not notice it (< 2% qps budget).
  double base_qps = 0, scraped_qps = 0, scrape_overhead_pct = 0;
  bool scraped = false;
  {
    obs::DebugServer debug_server;
    serving::MountServingEndpoints(&debug_server, &engine);
    Status started = debug_server.Start();
    if (!started.ok()) {
      std::printf("\ndebugz failed to start (%s); skipping the scrape A/B\n",
                  started.ToString().c_str());
    } else {
      std::atomic<bool> stop_scraper{false};
      std::atomic<bool> scraping{false};
      uint64_t scrapes = 0;
      std::thread scraper([&] {
        while (!stop_scraper.load(std::memory_order_acquire)) {
          bool active = scraping.load(std::memory_order_acquire);
          if (active) {
            auto scrape = obs::HttpGet("127.0.0.1", debug_server.port(),
                                       "/metrics", 2.0);
            if (scrape.ok() && scrape->status == 200) ++scrapes;
          }
          for (int i = 0;
               i < 10 && !stop_scraper.load(std::memory_order_acquire); ++i) {
            if (!active && scraping.load(std::memory_order_acquire)) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
          }
        }
      });
      // Interleaved A/B pairs, best pass per side: scheduler jitter
      // between passes (especially on a small machine) is symmetric and
      // much larger than the effect under test; the fastest pass on each
      // side is the one the scheduler left alone.
      for (int pair = 0; pair < 3; ++pair) {
        scraping.store(false, std::memory_order_release);
        base_qps = std::max(base_qps, run_pass());
        scraping.store(true, std::memory_order_release);
        scraped_qps = std::max(scraped_qps, run_pass());
      }
      stop_scraper.store(true, std::memory_order_release);
      scraper.join();
      debug_server.Stop();
      scrape_overhead_pct =
          base_qps > 0 ? 100.0 * (base_qps - scraped_qps) / base_qps : 0;
      scraped = true;
      std::printf("\n%-34s %8.1f qps  (%zu queries)\n",
                  "uncached, server idle", base_qps, scaled);
      std::printf("%-34s %8.1f qps  (%llu /metrics scrapes mid-run)\n",
                  "uncached + 1Hz /metrics scrape", scraped_qps,
                  static_cast<unsigned long long>(scrapes));
      std::printf("scrape overhead: %.1f%% (budget < 2%%)\n",
                  scrape_overhead_pct);
    }
  }

  // ---- Sampler + flight recorder under load -------------------------------
  // The incident stack a production process runs with: the time-series
  // sampler walking the global registry at 1 Hz, the SLO watchdog ticking
  // at 1 Hz, and an armed flight recorder (idle here — a healthy engine
  // never triggers it, but the wiring cost is what we measure).
  obs::TimeSeriesStore sampler;  // default: global registry, 1 s cadence
  obs::SloWatchdog watchdog;
  for (obs::SloObjective& objective :
       serving::DefaultServingObjectives(&engine)) {
    watchdog.AddObjective(std::move(objective));
  }
  obs::FlightRecorderOptions recorder_options;
  recorder_options.dir =
      StrFormat("/tmp/esharp_micro_obs_incidents.%d", ::getpid());
  recorder_options.metric_allowlist = {"serving."};
  recorder_options.timeseries = &sampler;
  obs::FlightRecorder recorder(recorder_options);
  watchdog.AddAlertCallback(recorder.SloAlertHook());

  // With the budget armed, a whole A/B round can still land on a
  // transient contention phase (this box shifts 2x minute-to-minute);
  // a real regression survives every retry, a phase shift does not.
  double sampler_off_qps = 0, sampler_on_qps = 0, sampler_overhead_pct = 0;
  int attempts = overhead_budget_pct > 0 ? 3 : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    double off_qps = 0, on_qps = 0;
    for (int pair = 0; pair < 3; ++pair) {
      off_qps = std::max(off_qps, run_pass());
      sampler.Start(1.0);
      watchdog.Start(1.0);
      on_qps = std::max(on_qps, run_pass());
      sampler.Stop();
      watchdog.Stop();
    }
    double pct = off_qps > 0 ? 100.0 * (off_qps - on_qps) / off_qps : 0;
    if (attempt == 0 || pct < sampler_overhead_pct) {
      sampler_off_qps = off_qps;
      sampler_on_qps = on_qps;
      sampler_overhead_pct = pct;
    }
    if (sampler_overhead_pct <= overhead_budget_pct) break;
    std::printf("sampler overhead %.1f%% above budget on attempt %d; "
                "retrying A/B (contention?)\n", pct, attempt + 1);
  }
  std::printf("\n%-34s %8.1f qps\n", "uncached, sampler off",
              sampler_off_qps);
  std::printf("%-34s %8.1f qps  (%llu samples, %zu series)\n",
              "uncached + sampler/watchdog/rec", sampler_on_qps,
              static_cast<unsigned long long>(sampler.samples_taken()),
              sampler.num_series());
  std::printf("sampler overhead: %.1f%% (budget < 2%%)\n",
              sampler_overhead_pct);
  ::rmdir(recorder_options.dir.c_str());  // empty unless an SLO breached

  // ---- JSON snapshot + budget gate ----------------------------------------
  if (!json_path.empty()) {
    obs::MetricsRegistry bench_registry;
    auto set = [&bench_registry](const char* name, double v) {
      bench_registry.GetGauge(name)->Set(v);
    };
    set("bench.obs.counter_ns", NsPerOp(counter_s, iters));
    set("bench.obs.gauge_ns", NsPerOp(gauge_s, iters));
    set("bench.obs.histogram_ns", NsPerOp(hist_s, hist_iters));
    set("bench.obs.span_live_ns", NsPerOp(span_s, span_iters));
    set("bench.obs.span_null_ns", NsPerOp(inert_span_s, iters));
    set("bench.obs.uncached_qps", queries / exec_s);
    if (scraped) {
      set("bench.obs.scrape_base_qps", base_qps);
      set("bench.obs.scrape_qps", scraped_qps);
      set("bench.obs.scrape_overhead_pct", scrape_overhead_pct);
    }
    set("bench.obs.sampler_off_qps", sampler_off_qps);
    set("bench.obs.sampler_on_qps", sampler_on_qps);
    set("bench.obs.sampler_overhead_pct", sampler_overhead_pct);
    set("bench.obs.sampler_samples",
        static_cast<double>(sampler.samples_taken()));
    set("bench.obs.sampler_series",
        static_cast<double>(sampler.num_series()));
    Status written = bench_registry.WriteJsonFile(json_path);
    if (!written.ok()) {
      std::printf("could not write %s: %s\n", json_path.c_str(),
                  written.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (overhead_budget_pct > 0 && sampler_overhead_pct > overhead_budget_pct) {
    std::printf("FAIL: sampler overhead %.1f%% exceeds budget %.1f%%\n",
                sampler_overhead_pct, overhead_budget_pct);
    return 1;
  }
  return 0;
}
