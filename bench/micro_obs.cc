// Observability overhead: what instrumentation costs when it is on.
//
// Two levels:
//  * tight-loop ns/op of the primitives (counter increment, gauge set,
//    span start+end against a real tracer and against a null tracer);
//  * end-to-end ServingEngine::Execute throughput with no tracer attached —
//    the configuration production runs in, where every ESHARP_SPAN compiles
//    to an inert-span construction.
//
// The acceptance budget is < 2% Execute overhead versus the stripped
// baseline. To measure it, run this binary from a normal build and from a
// -DESHARP_OBS_OFF=ON build (the header prints which mode the binary is)
// and compare the uncached-execute qps lines:
//
//   cmake -B build             && cmake --build build -j && ./build/bench/micro_obs
//   cmake -B build-off -DESHARP_OBS_OFF=ON && cmake --build build-off -j \
//     && ./build-off/bench/micro_obs
//
// Usage: micro_obs [uncached_queries] [tight_loop_iters]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "obs/obs.h"
#include "serving/engine.h"

namespace {

using namespace esharp;

double NsPerOp(double seconds, size_t iters) {
  return iters > 0 ? seconds * 1e9 / static_cast<double>(iters) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t queries = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;
  size_t iters = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000000;

  bench::PrintHeader("Observability overhead");
  std::printf("build mode: ESHARP_OBS_ENABLED=%d\n\n", ESHARP_OBS_ENABLED);

  // ---- Primitive costs ----------------------------------------------------
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("micro.counter");
  obs::Gauge* gauge = registry.GetGauge("micro.gauge");
  obs::Histogram* hist = registry.GetHistogram("micro.hist");

  Timer t;
  for (size_t i = 0; i < iters; ++i) counter->Increment();
  double counter_s = t.ElapsedSeconds();

  t.Reset();
  for (size_t i = 0; i < iters; ++i) gauge->Set(static_cast<double>(i));
  double gauge_s = t.ElapsedSeconds();

  size_t hist_iters = iters / 10;
  t.Reset();
  for (size_t i = 0; i < hist_iters; ++i) hist->Observe(1e-4);
  double hist_s = t.ElapsedSeconds();

  // Span against a live tracer (periodically drained so the event vector
  // does not grow unboundedly), then against a null tracer — the inert
  // path every instrumented function pays when tracing is not requested.
  obs::Tracer tracer;
  size_t span_iters = iters / 20;
  t.Reset();
  for (size_t i = 0; i < span_iters; ++i) {
    ESHARP_SPAN(s, &tracer, "micro", nullptr);
    if ((i & 0xFFF) == 0xFFF) tracer.Reset();
  }
  double span_s = t.ElapsedSeconds();

  t.Reset();
  for (size_t i = 0; i < iters; ++i) {
    ESHARP_SPAN(s, static_cast<obs::Tracer*>(nullptr), "micro", nullptr);
  }
  double inert_span_s = t.ElapsedSeconds();

  std::printf("%-34s %8.1f ns/op\n", "counter increment (sharded)",
              NsPerOp(counter_s, iters));
  std::printf("%-34s %8.1f ns/op\n", "gauge set", NsPerOp(gauge_s, iters));
  std::printf("%-34s %8.1f ns/op\n", "histogram observe",
              NsPerOp(hist_s, hist_iters));
  std::printf("%-34s %8.1f ns/op\n", "span start+end (live tracer)",
              NsPerOp(span_s, span_iters));
  std::printf("%-34s %8.1f ns/op\n", "span start+end (null tracer)",
              NsPerOp(inert_span_s, iters));

  // ---- ServingEngine::Execute, uncached, no tracer attached ---------------
  bench::WorldOptions world_options;
  world_options.scale = bench::WorldScale::kSmall;
  auto world = bench::BuildWorld(world_options);

  std::vector<std::string> workload;
  for (const querylog::QueryInfo& q : world->generated.log.queries()) {
    workload.push_back(q.text);
  }
  if (workload.empty()) {
    ESHARP_LOG(ERROR) << "empty workload";
    return 1;
  }

  serving::SnapshotManager manager(&world->corpus);
  manager.Publish(std::make_shared<const community::CommunityStore>(
      world->artifacts.store));
  serving::ServingOptions serving_options;
  serving_options.num_threads = 1;
  serving::ServingEngine engine(&manager, serving_options);

  Rng rng(99);
  t.Reset();
  for (size_t i = 0; i < queries; ++i) {
    serving::QueryRequest request;
    request.query = workload[rng.Uniform(workload.size())];
    request.bypass_cache = true;  // force the full expand/detect/rank path
    (void)engine.Query(std::move(request));
  }
  double exec_s = t.ElapsedSeconds();
  std::printf("\n%-34s %8.1f qps  (%zu uncached queries, %.3f s)\n",
              "uncached Execute throughput", queries / exec_s, queries,
              exec_s);
  std::printf("compare this line across a normal and a -DESHARP_OBS_OFF=ON "
              "build;\nthe instrumented build must stay within 2%%.\n");
  return 0;
}
