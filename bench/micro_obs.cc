// Observability overhead: what instrumentation costs when it is on.
//
// Two levels:
//  * tight-loop ns/op of the primitives (counter increment, gauge set,
//    span start+end against a real tracer and against a null tracer);
//  * end-to-end ServingEngine::Execute throughput with no tracer attached —
//    the configuration production runs in, where every ESHARP_SPAN compiles
//    to an inert-span construction.
//
// The acceptance budget is < 2% Execute overhead versus the stripped
// baseline. To measure it, run this binary from a normal build and from a
// -DESHARP_OBS_OFF=ON build (the header prints which mode the binary is)
// and compare the uncached-execute qps lines:
//
//   cmake -B build             && cmake --build build -j && ./build/bench/micro_obs
//   cmake -B build-off -DESHARP_OBS_OFF=ON && cmake --build build-off -j
//   ./build-off/bench/micro_obs
//
// Usage: micro_obs [uncached_queries] [tight_loop_iters]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "obs/debugz.h"
#include "obs/obs.h"
#include "serving/engine.h"
#include "serving/introspect.h"

namespace {

using namespace esharp;

double NsPerOp(double seconds, size_t iters) {
  return iters > 0 ? seconds * 1e9 / static_cast<double>(iters) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t queries = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;
  size_t iters = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000000;

  bench::PrintHeader("Observability overhead");
  std::printf("build mode: ESHARP_OBS_ENABLED=%d\n\n", ESHARP_OBS_ENABLED);

  // ---- Primitive costs ----------------------------------------------------
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("micro.counter");
  obs::Gauge* gauge = registry.GetGauge("micro.gauge");
  obs::Histogram* hist = registry.GetHistogram("micro.hist");

  Timer t;
  for (size_t i = 0; i < iters; ++i) counter->Increment();
  double counter_s = t.ElapsedSeconds();

  t.Reset();
  for (size_t i = 0; i < iters; ++i) gauge->Set(static_cast<double>(i));
  double gauge_s = t.ElapsedSeconds();

  size_t hist_iters = iters / 10;
  t.Reset();
  for (size_t i = 0; i < hist_iters; ++i) hist->Observe(1e-4);
  double hist_s = t.ElapsedSeconds();

  // Span against a live tracer (periodically drained so the event vector
  // does not grow unboundedly), then against a null tracer — the inert
  // path every instrumented function pays when tracing is not requested.
  obs::Tracer tracer;
  size_t span_iters = iters / 20;
  t.Reset();
  for (size_t i = 0; i < span_iters; ++i) {
    ESHARP_SPAN(s, &tracer, "micro", nullptr);
    if ((i & 0xFFF) == 0xFFF) tracer.Reset();
  }
  double span_s = t.ElapsedSeconds();

  t.Reset();
  for (size_t i = 0; i < iters; ++i) {
    ESHARP_SPAN(s, static_cast<obs::Tracer*>(nullptr), "micro", nullptr);
  }
  double inert_span_s = t.ElapsedSeconds();

  std::printf("%-34s %8.1f ns/op\n", "counter increment (sharded)",
              NsPerOp(counter_s, iters));
  std::printf("%-34s %8.1f ns/op\n", "gauge set", NsPerOp(gauge_s, iters));
  std::printf("%-34s %8.1f ns/op\n", "histogram observe",
              NsPerOp(hist_s, hist_iters));
  std::printf("%-34s %8.1f ns/op\n", "span start+end (live tracer)",
              NsPerOp(span_s, span_iters));
  std::printf("%-34s %8.1f ns/op\n", "span start+end (null tracer)",
              NsPerOp(inert_span_s, iters));

  // ---- ServingEngine::Execute, uncached, no tracer attached ---------------
  bench::WorldOptions world_options;
  world_options.scale = bench::WorldScale::kSmall;
  auto world = bench::BuildWorld(world_options);

  std::vector<std::string> workload;
  for (const querylog::QueryInfo& q : world->generated.log.queries()) {
    workload.push_back(q.text);
  }
  if (workload.empty()) {
    ESHARP_LOG(ERROR) << "empty workload";
    return 1;
  }

  serving::SnapshotManager manager(&world->corpus);
  manager.Publish(std::make_shared<const community::CommunityStore>(
      world->artifacts.store));
  serving::ServingOptions serving_options;
  serving_options.num_threads = 1;
  serving::ServingEngine engine(&manager, serving_options);

  Rng rng(99);
  t.Reset();
  for (size_t i = 0; i < queries; ++i) {
    serving::QueryRequest request;
    request.query = workload[rng.Uniform(workload.size())];
    request.bypass_cache = true;  // force the full expand/detect/rank path
    (void)engine.Query(std::move(request));
  }
  double exec_s = t.ElapsedSeconds();
  std::printf("\n%-34s %8.1f qps  (%zu uncached queries, %.3f s)\n",
              "uncached Execute throughput", queries / exec_s, queries,
              exec_s);
  std::printf("compare this line across a normal and a -DESHARP_OBS_OFF=ON "
              "build;\nthe instrumented build must stay within 2%%.\n");

  // ---- Scrape under load --------------------------------------------------
  // The same uncached loop with a debugz server up and a client scraping
  // /metrics at 1 Hz: the exposition walk runs on a debugz worker thread,
  // and the serving thread must not notice it (< 2% qps budget). Both the
  // bare and the scraped loop are scaled to last ~1.5 s — well past the
  // scrape period — and re-timed back to back, so the comparison is not
  // dominated by warm-up or by a pass too short to ever be scraped.
  size_t scaled = queries;
  if (exec_s > 0 && exec_s < 1.5) {
    scaled = std::min<size_t>(
        static_cast<size_t>(static_cast<double>(queries) * 1.5 / exec_s),
        2000000);
  }
  obs::DebugServer debug_server;
  serving::MountServingEndpoints(&debug_server, &engine);
  Status started = debug_server.Start();
  if (!started.ok()) {
    std::printf("\ndebugz failed to start: %s\n", started.ToString().c_str());
    return 0;
  }
  std::atomic<bool> stop_scraper{false};
  std::atomic<bool> scraping{false};
  uint64_t scrapes = 0;
  std::thread scraper([&] {
    while (!stop_scraper.load(std::memory_order_acquire)) {
      bool active = scraping.load(std::memory_order_acquire);
      if (active) {
        auto scrape =
            obs::HttpGet("127.0.0.1", debug_server.port(), "/metrics", 2.0);
        if (scrape.ok() && scrape->status == 200) ++scrapes;
      }
      for (int i = 0; i < 10 && !stop_scraper.load(std::memory_order_acquire);
           ++i) {
        if (!active && scraping.load(std::memory_order_acquire)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  });
  // Interleaved A/B pairs, best pass per side: scheduler jitter between
  // passes (especially on a small machine) is symmetric and much larger
  // than the effect under test; the fastest pass on each side is the one
  // the scheduler left alone.
  auto run_pass = [&] {
    Timer pass;
    for (size_t i = 0; i < scaled; ++i) {
      serving::QueryRequest request;
      request.query = workload[rng.Uniform(workload.size())];
      request.bypass_cache = true;
      (void)engine.Query(std::move(request));
    }
    return scaled / pass.ElapsedSeconds();
  };
  double base_qps = 0, scraped_qps = 0;
  for (int pair = 0; pair < 3; ++pair) {
    scraping.store(false, std::memory_order_release);
    base_qps = std::max(base_qps, run_pass());
    scraping.store(true, std::memory_order_release);
    scraped_qps = std::max(scraped_qps, run_pass());
  }
  stop_scraper.store(true, std::memory_order_release);
  scraper.join();
  debug_server.Stop();
  double overhead_pct =
      base_qps > 0 ? 100.0 * (base_qps - scraped_qps) / base_qps : 0;
  std::printf("\n%-34s %8.1f qps  (%zu queries)\n",
              "uncached, server idle", base_qps, scaled);
  std::printf("%-34s %8.1f qps  (%llu /metrics scrapes mid-run)\n",
              "uncached + 1Hz /metrics scrape", scraped_qps,
              static_cast<unsigned long long>(scrapes));
  std::printf("scrape overhead: %.1f%% (budget < 2%%)\n", overhead_pct);
  return 0;
}
