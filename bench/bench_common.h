#ifndef ESHARP_BENCH_BENCH_COMMON_H_
#define ESHARP_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "esharp/esharp.h"
#include "esharp/pipeline.h"
#include "eval/harness.h"
#include "eval/query_sets.h"
#include "microblog/generator.h"
#include "querylog/generator.h"

namespace esharp::bench {

/// \brief Scale of the standard experiment world.
enum class WorldScale {
  kSmall,     // quick smoke runs
  kStandard,  // the paper-shaped configuration: 6 sets, 750 queries
};

/// \brief Everything the experiment binaries need, built once per process.
struct ExperimentWorld {
  querylog::TopicUniverse universe;
  querylog::GeneratedLog generated;
  core::OfflineArtifacts artifacts;
  microblog::TweetCorpus corpus;
  std::vector<eval::QuerySet> query_sets;
  ResourceMeter meter;
};

/// \brief Options of world construction.
struct WorldOptions {
  WorldScale scale = WorldScale::kStandard;
  uint64_t seed = 2016;  // EDBT 2016
  core::ClusteringBackend backend = core::ClusteringBackend::kParallelNative;
  /// Worker threads for the offline stage ("VMs" of Table 9).
  size_t threads = 8;
};

/// \brief Builds the standard experiment world: universe -> query log ->
/// offline pipeline -> tweet corpus -> the paper's six query sets (750
/// queries at standard scale). Deterministic in the seed. Aborts with a
/// message on generation failure (benches have no error channel).
std::unique_ptr<ExperimentWorld> BuildWorld(const WorldOptions& options = {});

/// \brief Runs the baseline/e# comparison over the world's query sets.
std::vector<eval::SetRun> RunStandardComparison(const ExperimentWorld& world);

/// \brief Prints a section header in the benches' uniform style.
void PrintHeader(const std::string& title);

}  // namespace esharp::bench

#endif  // ESHARP_BENCH_BENCH_COMMON_H_
