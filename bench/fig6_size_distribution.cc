// Reproduces Figure 6: distribution of the community sizes.
//
// Paper shape: the modal bucket is 2-10 queries per community (~60% of
// communities), around 20% are orphans (single query), and very few
// communities have more than 50 members.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace esharp;
  bench::PrintHeader("Figure 6: distribution of community sizes");

  auto world = bench::BuildWorld();
  community::SizeHistogram h = world->artifacts.store.ComputeSizeHistogram();
  double total = static_cast<double>(h.total());

  std::printf("%-22s %-18s %-10s\n", "Queries per community",
              "Communities Count", "Share");
  std::printf("%-22s %-18zu %6.1f%%\n", "1 (orphans)", h.orphans,
              100.0 * static_cast<double>(h.orphans) / total);
  std::printf("%-22s %-18zu %6.1f%%\n", "2 to 10", h.small,
              100.0 * static_cast<double>(h.small) / total);
  std::printf("%-22s %-18zu %6.1f%%\n", "10 to 50", h.medium,
              100.0 * static_cast<double>(h.medium) / total);
  std::printf("%-22s %-18zu %6.1f%%\n", "More than 50", h.large,
              100.0 * static_cast<double>(h.large) / total);
  std::printf("\nPaper shape: ~60%% in 2-10, ~20%% orphans, few above 50.\n");
  return 0;
}
