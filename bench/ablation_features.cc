// Ablation: ranking features.
//
// §3: "In their paper, Pal and Counts evaluate a dozen features. We kept
// those which they present as important: the topical signal (TS), the
// mention impact (MI), and the retweet impact (RI)." This bench compares
// the production 3-feature configuration against configurations that
// re-enable the dropped signals (conversation share, hashtag share,
// follower prior), measuring precision@5 against the simulation's ground
// truth and judged impurity.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/crowd.h"
#include "eval/metrics.h"

namespace {

using namespace esharp;

struct Quality {
  double precision_at_5 = 0;
  double impurity = 0;
};

Quality Measure(const bench::ExperimentWorld& world,
                const expert::DetectorOptions& detector_options) {
  core::ESharpOptions options;
  options.detector = detector_options;
  core::ESharp system(&world.artifacts.store, &world.corpus, options);
  auto runs = *eval::RunComparison(system, world.query_sets);

  Quality q;
  size_t queries_with_results = 0;
  eval::CrowdOptions crowd_options;
  eval::SimulatedCrowd crowd(crowd_options);
  size_t judged_total = 0, judged_flagged = 0;
  for (const eval::SetRun& run : runs) {
    for (const eval::QueryRun& qr : run.runs) {
      auto kept = eval::ApplyThreshold(qr.esharp, 0.0, 5);
      if (kept.empty()) continue;
      ++queries_with_results;
      size_t relevant = 0;
      for (const auto& e : kept) {
        if (eval::IsRelevant(world.corpus, e.user, qr.query.domain)) {
          ++relevant;
        }
      }
      q.precision_at_5 +=
          static_cast<double>(relevant) / static_cast<double>(kept.size());
      auto judged = crowd.Judge(world.corpus, qr.query.domain, kept);
      for (const auto& j : judged) {
        ++judged_total;
        if (!j.judged_relevant) ++judged_flagged;
      }
    }
  }
  if (queries_with_results > 0) {
    q.precision_at_5 /= static_cast<double>(queries_with_results);
  }
  if (judged_total > 0) {
    q.impurity =
        static_cast<double>(judged_flagged) / static_cast<double>(judged_total);
  }
  return q;
}

}  // namespace

int main() {
  using namespace esharp;
  bench::PrintHeader("Ablation: ranking feature configurations (e# side)");

  auto world = bench::BuildWorld();

  struct Config {
    const char* name;
    expert::DetectorOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"TS+MI+RI (paper)", {}});
  {
    expert::DetectorOptions o;
    o.weight_topical_signal = 1.0;
    o.weight_mention_impact = 0.0;
    o.weight_retweet_impact = 0.0;
    configs.push_back({"TS only", o});
  }
  {
    expert::DetectorOptions o;
    o.weight_conversation = 0.1;
    o.weight_hashtag = 0.1;
    configs.push_back({"+CS +HS", o});
  }
  {
    expert::DetectorOptions o;
    o.weight_followers = 0.3;
    configs.push_back({"+followers prior", o});
  }
  {
    expert::DetectorOptions o;
    o.weight_topical_signal = 0.0;
    o.weight_mention_impact = 0.0;
    o.weight_retweet_impact = 0.0;
    o.weight_followers = 1.0;
    configs.push_back({"followers only", o});
  }

  std::printf("%-20s %-14s %-12s\n", "Configuration", "Precision@5",
              "Impurity");
  for (const Config& config : configs) {
    Quality q = Measure(*world, config.options);
    std::printf("%-20s %-14.3f %-12.3f\n", config.name, q.precision_at_5,
                q.impurity);
  }
  std::printf(
      "\nShape to check: the paper's TS+MI+RI blend is at or near the best\n"
      "precision; a pure popularity prior (followers only) is clearly\n"
      "worse, which is why topical concentration carries the weights.\n");
  return 0;
}
