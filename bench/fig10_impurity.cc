// Reproduces Figure 10: the size vs quality trade-off. For each query set,
// sweep the z-score threshold; at each point, report the average number of
// experts per query against the impurity — the proportion of results the
// (simulated) crowd marked as non-relevant.
//
// Paper shape: at matched result sizes, e#'s impurity is very close to the
// baseline's — the recall gain costs little precision ("the accuracy
// penalty incurred by e# is minimal, if not negligible").

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/metrics.h"

int main() {
  using namespace esharp;
  bench::PrintHeader("Figure 10: size vs quality trade-off (impurity)");

  auto world = bench::BuildWorld();
  auto runs = bench::RunStandardComparison(*world);

  std::vector<double> thresholds;
  for (double z = 4.0; z >= -1.0; z -= 0.5) thresholds.push_back(z);

  eval::CrowdOptions crowd;  // 3 workers, 85% accuracy, majority vote

  for (const eval::SetRun& run : runs) {
    std::printf("\n--- set: %s ---\n", run.name.c_str());
    auto baseline_curve = eval::ImpurityCurve(
        run, eval::Side::kBaseline, world->corpus, thresholds, crowd);
    auto esharp_curve = eval::ImpurityCurve(
        run, eval::Side::kESharp, world->corpus, thresholds, crowd);
    std::printf("%-8s %-22s %-22s\n", "Min z", "Baseline (avg, impur)",
                "e# (avg, impur)");
    for (size_t i = 0; i < thresholds.size(); ++i) {
      std::printf("%-8.2f (%6.2f, %5.3f)        (%6.2f, %5.3f)\n",
                  thresholds[i], baseline_curve[i].avg_experts,
                  baseline_curve[i].impurity, esharp_curve[i].avg_experts,
                  esharp_curve[i].impurity);
    }
  }
  std::printf(
      "\nPaper shape: the impurity difference between the two algorithms is\n"
      "subtle at every result size; e# trades little precision for recall.\n");
  return 0;
}
