#include <gtest/gtest.h>

#include "sqlengine/schema.h"
#include "sqlengine/table.h"
#include "sqlengine/value.h"

namespace esharp::sql {
namespace {

// ----------------------------------------------------------------- Value --

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), DataType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(-3).int_value(), -3);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(5).Compare(Value::Int(5)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
}

TEST(ValueTest, NumericFamilyComparesAcrossIntAndDouble) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, CrossTypeRankOrder) {
  // NULL < BOOL < numeric < STRING.
  EXPECT_LT(Value::Null().Compare(Value::Bool(false)), 0);
  EXPECT_LT(Value::Bool(true).Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::String("")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::String("abc").Hash(), Value::String("abd").Hash());
}

TEST(ValueTest, AsDoubleCoercion) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Bool(true).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(*Value::Double(0.5).AsDouble(), 0.5);
  EXPECT_FALSE(Value::String("4").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("q").ToString(), "q");
}

TEST(ValueTest, SizeBytes) {
  EXPECT_EQ(Value::Int(1).SizeBytes(), 8u);
  EXPECT_EQ(Value::String("abcd").SizeBytes(), 12u);
}

// ---------------------------------------------------------------- Schema --

TEST(SchemaTest, IndexOfAndContains) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(*s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("c").ok());
  EXPECT_TRUE(s.Contains("a"));
  EXPECT_FALSE(s.Contains("c"));
}

TEST(SchemaTest, ConcatPrefixesClashes) {
  Schema left({{"id", DataType::kInt64}, {"x", DataType::kDouble}});
  Schema right({{"id", DataType::kInt64}, {"y", DataType::kString}});
  Schema joined = Schema::Concat(left, right, "r_");
  EXPECT_EQ(joined.num_columns(), 4u);
  EXPECT_EQ(joined.column(2).name, "r_id");
  EXPECT_EQ(joined.column(3).name, "y");
}

TEST(SchemaTest, ToStringAndEquality) {
  Schema s({{"a", DataType::kInt64}});
  EXPECT_EQ(s.ToString(), "a:INT64");
  EXPECT_TRUE(s == Schema({{"a", DataType::kInt64}}));
  EXPECT_FALSE(s == Schema({{"a", DataType::kDouble}}));
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, AppendRowChecksArity) {
  Table t(Schema({{"a", DataType::kInt64}, {"b", DataType::kString}}));
  EXPECT_TRUE(t.AppendRow({Value::Int(1), Value::String("x")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int(1)}).IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, GetValueByName) {
  TableBuilder b({{"q", DataType::kString}, {"n", DataType::kInt64}});
  b.AddRow({Value::String("nfl"), Value::Int(9)});
  Table t = b.Build();
  EXPECT_EQ(t.GetValue(0, "n")->int_value(), 9);
  EXPECT_FALSE(t.GetValue(0, "zz").ok());
  EXPECT_FALSE(t.GetValue(5, "n").ok());
}

TEST(TableTest, SortLexicographicCanonicalizes) {
  TableBuilder b({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  b.AddRow({Value::Int(2), Value::Int(1)});
  b.AddRow({Value::Int(1), Value::Int(9)});
  b.AddRow({Value::Int(1), Value::Int(2)});
  Table t = b.Build();
  t.SortLexicographic();
  EXPECT_EQ(t.row(0)[0].int_value(), 1);
  EXPECT_EQ(t.row(0)[1].int_value(), 2);
  EXPECT_EQ(t.row(2)[0].int_value(), 2);
}

TEST(TableTest, SizeBytesSumsValues) {
  TableBuilder b({{"a", DataType::kInt64}});
  b.AddRow({Value::Int(1)});
  b.AddRow({Value::Int(2)});
  EXPECT_EQ(b.Build().SizeBytes(), 16u);
}

TEST(TableTest, ToStringTruncates) {
  TableBuilder b({{"a", DataType::kInt64}});
  for (int i = 0; i < 30; ++i) b.AddRow({Value::Int(i)});
  std::string rendered = b.Build().ToString(5);
  EXPECT_NE(rendered.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace esharp::sql
