#include <gtest/gtest.h>

#include <set>

#include "esharp/esharp.h"
#include "esharp/pipeline.h"
#include "microblog/generator.h"
#include "querylog/generator.h"

namespace esharp::core {
namespace {

// Shared small world for the end-to-end tests.
class ESharpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    querylog::UniverseOptions uo;
    uo.num_categories = 3;
    uo.domains_per_category = 12;
    uo.seed = 301;
    universe_ = new querylog::TopicUniverse(
        *querylog::TopicUniverse::Generate(uo));

    querylog::GeneratorOptions go;
    go.seed = 302;
    go.head_impressions = 30000;
    log_ = new querylog::GeneratedLog(*GenerateQueryLog(*universe_, go));

    OfflineOptions offline;
    offline.extraction.min_similarity = 0.15;
    artifacts_ = new OfflineArtifacts(*RunOfflinePipeline(log_->log, offline));

    microblog::CorpusOptions co;
    co.seed = 303;
    co.casual_users = 300;
    co.spam_users = 30;
    corpus_ = new microblog::TweetCorpus(*GenerateCorpus(*universe_, co));
  }

  static void TearDownTestSuite() {
    delete universe_;
    delete log_;
    delete artifacts_;
    delete corpus_;
  }

  static querylog::TopicUniverse* universe_;
  static querylog::GeneratedLog* log_;
  static OfflineArtifacts* artifacts_;
  static microblog::TweetCorpus* corpus_;
};

querylog::TopicUniverse* ESharpTest::universe_ = nullptr;
querylog::GeneratedLog* ESharpTest::log_ = nullptr;
OfflineArtifacts* ESharpTest::artifacts_ = nullptr;
microblog::TweetCorpus* ESharpTest::corpus_ = nullptr;

// ---------------------------------------------------------------- Offline --

TEST_F(ESharpTest, OfflinePipelineProducesCommunities) {
  EXPECT_GT(artifacts_->store.num_communities(), 0u);
  EXPECT_LT(artifacts_->store.num_communities(),
            artifacts_->similarity_graph.num_vertices());
  // Convergence trace starts at singleton count and decreases.
  ASSERT_GE(artifacts_->communities_per_iteration.size(), 2u);
  EXPECT_EQ(artifacts_->communities_per_iteration[0],
            artifacts_->similarity_graph.num_vertices());
  EXPECT_LT(artifacts_->communities_per_iteration.back(),
            artifacts_->communities_per_iteration.front());
}

TEST_F(ESharpTest, CommunitiesGroupDomainSiblings) {
  // The head term's community should contain at least one sibling term or
  // variant of the same domain, for most head terms.
  size_t grouped = 0, considered = 0;
  for (const querylog::TopicDomain& dom : universe_->domains()) {
    auto found = artifacts_->store.Find(dom.terms[0]);
    if (!found.ok()) continue;
    ++considered;
    if ((*found)->terms.size() > 1) ++grouped;
  }
  ASSERT_GT(considered, 20u);
  EXPECT_GT(static_cast<double>(grouped) / static_cast<double>(considered),
            0.6);
}

TEST_F(ESharpTest, SqlBackendMatchesNativeBackend) {
  OfflineOptions native_options;
  native_options.extraction.min_similarity = 0.15;
  native_options.backend = ClusteringBackend::kParallelNative;
  OfflineArtifacts native = *RunOfflinePipeline(log_->log, native_options);

  OfflineOptions sql_options = native_options;
  sql_options.backend = ClusteringBackend::kSqlEngine;
  OfflineArtifacts sql = *RunOfflinePipeline(log_->log, sql_options);

  EXPECT_EQ(native.store.num_communities(), sql.store.num_communities());
  EXPECT_EQ(native.communities_per_iteration, sql.communities_per_iteration);
}

TEST(OfflinePipelineTest, EmptyLogFailsPrecondition) {
  querylog::QueryLog empty;
  OfflineOptions options;
  EXPECT_TRUE(RunOfflinePipeline(empty, options).status()
                  .IsFailedPrecondition());
}

// ----------------------------------------------------------------- Online --

TEST_F(ESharpTest, ExpansionMatchesCommunityTerms) {
  ESharp system(&artifacts_->store, corpus_);
  // A canonical head term must match its community.
  const querylog::TopicDomain& dom = universe_->domain(0);
  QueryExpansion expansion = system.Expand(dom.terms[0]);
  EXPECT_TRUE(expansion.matched);
  EXPECT_GE(expansion.terms.size(), 1u);
  EXPECT_EQ(expansion.terms[0], dom.terms[0]);
  // Unknown queries degrade gracefully.
  QueryExpansion none = system.Expand("zzz unknown query zzz");
  EXPECT_FALSE(none.matched);
  EXPECT_EQ(none.terms.size(), 1u);
}

TEST_F(ESharpTest, ExpansionIsCaseInsensitive) {
  ESharp system(&artifacts_->store, corpus_);
  const querylog::TopicDomain& dom = universe_->domain(0);
  std::string upper = dom.terms[0];
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  EXPECT_TRUE(system.Expand(upper).matched);
}

TEST_F(ESharpTest, MaxExpansionTermsRespected) {
  ESharpOptions options;
  options.max_expansion_terms = 2;
  ESharp system(&artifacts_->store, corpus_, options);
  for (const querylog::TopicDomain& dom : universe_->domains()) {
    QueryExpansion e = system.Expand(dom.terms[0]);
    EXPECT_LE(e.terms.size(), 2u);
  }
}

TEST_F(ESharpTest, ESharpNeverReturnsFewerCandidatesThanBaseline) {
  // By construction (union of per-term pools), e#'s candidate pool is a
  // superset of the baseline's — the paper's recall claim in its sharpest
  // form. Compare unthresholded pool sizes.
  ESharpOptions options;
  options.detector.min_z_score = -1e9;
  options.detector.max_experts = 100000;
  ESharp system(&artifacts_->store, corpus_, options);
  size_t esharp_wins = 0, queries = 0;
  for (const querylog::TopicDomain& dom : universe_->domains()) {
    for (const std::string& term : dom.terms) {
      ++queries;
      auto baseline = *system.detector().FindExperts(term);
      auto expanded = *system.FindExperts(term);
      EXPECT_GE(expanded.size(), baseline.size()) << "query " << term;
      if (expanded.size() > baseline.size()) ++esharp_wins;
    }
  }
  // Expansion must actually help on a meaningful share of queries.
  EXPECT_GT(static_cast<double>(esharp_wins) / static_cast<double>(queries),
            0.2);
}

TEST_F(ESharpTest, PhraseFallbackExpandsThroughFindExperts) {
  // End-to-end kPhraseFallback coverage: build a store where the queried
  // term exists only embedded inside a longer phrase ("<head> fan guide"),
  // next to a real sibling term. Exact match must miss; the phrase
  // fallback must land in the community and surface the sibling's experts
  // through FindExperts.
  // Pick an ordered pair of same-domain terms (queried, partner) where the
  // partner contributes at least one candidate the queried term alone does
  // not reach, so the expansion gain is certain.
  expert::ExpertDetector probe(corpus_);
  std::string head, sibling;
  for (const querylog::TopicDomain& d : universe_->domains()) {
    for (size_t a = 0; a < d.terms.size() && head.empty(); ++a) {
      std::set<microblog::UserId> a_users;
      for (const auto& c : probe.CollectCandidates(d.terms[a])) {
        a_users.insert(c.user);
      }
      for (size_t b = 0; b < d.terms.size(); ++b) {
        if (b == a) continue;
        for (const auto& c : probe.CollectCandidates(d.terms[b])) {
          if (a_users.count(c.user) == 0) {
            head = d.terms[a];
            sibling = d.terms[b];
            break;
          }
        }
        if (!head.empty()) break;
      }
    }
    if (!head.empty()) break;
  }
  ASSERT_FALSE(head.empty()) << "no term pair with an expansion gain";
  std::string tsv = "t\t0\t" + head + " fan guide\nt\t0\t" + sibling + "\n";
  auto store = community::CommunityStore::ParseTsv(tsv);
  ASSERT_TRUE(store.ok());

  ESharpOptions fallback_options;
  fallback_options.match_mode = MatchMode::kPhraseFallback;
  fallback_options.detector.min_z_score = -1e9;
  fallback_options.detector.max_experts = 100000;
  ESharp with_fallback(&*store, corpus_, fallback_options);

  ESharpOptions exact_options = fallback_options;
  exact_options.match_mode = MatchMode::kExactOnly;
  ESharp exact_only(&*store, corpus_, exact_options);

  // Exact-only misses the store entirely and degrades to the baseline...
  QueryExpansion exact = exact_only.Expand(head);
  EXPECT_FALSE(exact.matched);
  EXPECT_EQ(exact.terms.size(), 1u);
  // ...while the phrase fallback matches the community and pulls in both
  // the phrase term and the sibling.
  QueryExpansion phrase = with_fallback.Expand(head);
  EXPECT_TRUE(phrase.matched);
  EXPECT_GE(phrase.terms.size(), 3u);

  auto baseline = *exact_only.FindExperts(head);
  auto expanded = *with_fallback.FindExperts(head);
  // The union over the expanded pool can only grow the candidate set, and
  // the sibling is a canonical term of a domain with tweet traffic, so the
  // fallback must actually surface additional experts.
  EXPECT_GT(expanded.size(), baseline.size());
}

TEST_F(ESharpTest, ExpandedSearchFindsSiblingTermExperts) {
  // Find a domain with >= 2 canonical terms and at least one expert; a
  // query on a sibling term should surface experts reachable only through
  // expansion for at least one such domain.
  ESharpOptions options;
  options.detector.min_z_score = -1e9;
  options.detector.max_experts = 100000;
  ESharp system(&artifacts_->store, corpus_, options);
  bool found_gain = false;
  for (const querylog::TopicDomain& dom : universe_->domains()) {
    if (dom.terms.size() < 2) continue;
    for (size_t t = 1; t < dom.terms.size(); ++t) {
      auto baseline = *system.detector().FindExperts(dom.terms[t]);
      auto expanded = *system.FindExperts(dom.terms[t]);
      if (expanded.size() > baseline.size()) {
        found_gain = true;
        break;
      }
    }
    if (found_gain) break;
  }
  EXPECT_TRUE(found_gain);
}

}  // namespace
}  // namespace esharp::core
