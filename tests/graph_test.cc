#include <gtest/gtest.h>

#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/sparse_vector.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "querylog/generator.h"

namespace esharp::graph {
namespace {

// ----------------------------------------------------------------- Graph --

TEST(GraphTest, VerticesDedupeByLabel) {
  Graph g;
  VertexId a = g.AddVertex("nfl");
  VertexId b = g.AddVertex("nfl");
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(*g.FindVertex("nfl"), a);
  EXPECT_FALSE(g.FindVertex("nba").ok());
}

TEST(GraphTest, EdgesAccumulateWeight) {
  Graph g;
  VertexId a = g.AddVertex("a"), b = g.AddVertex("b");
  ASSERT_TRUE(g.AddEdge(a, b, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(b, a, 0.25).ok());  // same undirected edge
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 0.75);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 0.75);
}

TEST(GraphTest, RejectsBadEdges) {
  Graph g;
  VertexId a = g.AddVertex("a");
  VertexId b = g.AddVertex("b");
  EXPECT_TRUE(g.AddEdge(a, a, 1.0).IsInvalidArgument());  // self-loop
  EXPECT_TRUE(g.AddEdge(a, 99, 1.0).IsOutOfRange());
  EXPECT_TRUE(g.AddEdge(a, b, 0.0).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(a, b, -1.0).IsInvalidArgument());
}

TEST(GraphTest, AdjacencyAndDegrees) {
  Graph g;
  VertexId a = g.AddVertex("a"), b = g.AddVertex("b"), c = g.AddVertex("c");
  ASSERT_TRUE(g.AddEdge(a, b, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(a, c, 2.0).ok());
  g.Finalize();
  EXPECT_EQ(g.neighbors(a).size(), 2u);
  EXPECT_EQ(g.neighbors(b).size(), 1u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(a), 3.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(c), 2.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 3.0);
}

TEST(GraphTest, EdgeTableIsSymmetric) {
  Graph g;
  VertexId a = g.AddVertex("x"), b = g.AddVertex("y");
  ASSERT_TRUE(g.AddEdge(a, b, 0.4).ok());
  sql::Table t = g.ToEdgeTable();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.row(0)[0].string_value(), "x");
  EXPECT_EQ(t.row(1)[0].string_value(), "y");
}

TEST(GraphTest, FinalizeIsIdempotentAndReentrant) {
  Graph g;
  VertexId a = g.AddVertex("a"), b = g.AddVertex("b");
  ASSERT_TRUE(g.AddEdge(a, b, 1.0).ok());
  g.Finalize();
  g.Finalize();
  EXPECT_EQ(g.neighbors(a).size(), 1u);
  // Adding an edge after finalize and re-finalizing refreshes adjacency.
  VertexId c = g.AddVertex("c");
  ASSERT_TRUE(g.AddEdge(a, c, 1.0).ok());
  g.Finalize();
  EXPECT_EQ(g.neighbors(a).size(), 2u);
}

// --------------------------------------------------------------- Builder --

class BuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    querylog::UniverseOptions uo;
    uo.num_categories = 3;
    uo.domains_per_category = 8;
    uo.seed = 21;
    universe_ = std::make_unique<querylog::TopicUniverse>(
        *querylog::TopicUniverse::Generate(uo));
    querylog::GeneratorOptions go;
    go.seed = 22;
    go.head_impressions = 20000;
    log_ = std::make_unique<querylog::GeneratedLog>(
        *GenerateQueryLog(*universe_, go));
  }

  std::unique_ptr<querylog::TopicUniverse> universe_;
  std::unique_ptr<querylog::GeneratedLog> log_;
};

TEST_F(BuilderTest, EdgesConnectSameDomainQueries) {
  SimilarityGraphOptions options;
  options.min_similarity = 0.2;
  Graph g = *BuildSimilarityGraph(log_->log, options);
  ASSERT_GT(g.num_edges(), 0u);
  g.Finalize();
  // Most edges should connect queries of the same latent domain.
  size_t same = 0, total = 0;
  querylog::QueryLog filtered = log_->log.FilterByMinCount(50);
  for (const Edge& e : g.edges()) {
    auto qa = filtered.FindQuery(g.label(e.u));
    auto qb = filtered.FindQuery(g.label(e.v));
    ASSERT_TRUE(qa.ok());
    ASSERT_TRUE(qb.ok());
    ++total;
    if (filtered.query(*qa).true_domain == filtered.query(*qb).true_domain) {
      ++same;
    }
  }
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(total), 0.6);
}

TEST_F(BuilderTest, MinSimilarityIsRespected) {
  SimilarityGraphOptions options;
  options.min_similarity = 0.3;
  Graph g = *BuildSimilarityGraph(log_->log, options);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 0.3);
    EXPECT_LE(e.weight, 1.0 + 1e-9);
  }
}

TEST_F(BuilderTest, MinCountFilterDropsTail) {
  SimilarityGraphOptions options;
  options.min_query_count = 50;
  Graph g = *BuildSimilarityGraph(log_->log, options);
  querylog::QueryLog filtered = log_->log.FilterByMinCount(50);
  EXPECT_EQ(g.num_vertices(), filtered.num_queries());
}

TEST_F(BuilderTest, ParallelBuildMatchesSerial) {
  SimilarityGraphOptions serial_options;
  serial_options.min_similarity = 0.15;
  Graph serial = *BuildSimilarityGraph(log_->log, serial_options);

  ThreadPool pool(4);
  SimilarityGraphOptions parallel_options = serial_options;
  parallel_options.pool = &pool;
  parallel_options.num_partitions = 7;
  Graph parallel = *BuildSimilarityGraph(log_->log, parallel_options);

  ASSERT_EQ(serial.num_vertices(), parallel.num_vertices());
  ASSERT_EQ(serial.num_edges(), parallel.num_edges());
  // Edge sets are identical (worker ranges partition the same pair space).
  auto canonical = [](const Graph& g) {
    std::vector<std::tuple<VertexId, VertexId, double>> out;
    for (const Edge& e : g.edges()) out.emplace_back(e.u, e.v, e.weight);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(canonical(serial), canonical(parallel));
}

TEST_F(BuilderTest, MeterRecordsExtractionStage) {
  ResourceMeter meter;
  SimilarityGraphOptions options;
  options.meter = &meter;
  ASSERT_TRUE(BuildSimilarityGraph(log_->log, options).ok());
  EXPECT_GT(meter.Get("Extraction").bytes_read, 0u);
  EXPECT_GT(meter.Get("Extraction").rows_written, 0u);
}

TEST_F(BuilderTest, FusedScoringMatchesUnfusedReference) {
  // The builder fuses candidate generation with dot-product accumulation
  // during the inverted-index scan. This reference re-implements the
  // unfused two-pass shape (candidates first, then Cosine per pair, which
  // rewalks both vectors) and must produce the identical edge set with
  // bitwise-identical weights.
  SimilarityGraphOptions options;
  options.min_similarity = 0.15;
  options.max_url_fanout = 32;  // small cap so hub URLs exercise the fix-up
  Graph g = *BuildSimilarityGraph(log_->log, options);

  querylog::QueryLog filtered =
      log_->log.FilterByMinCount(options.min_query_count);
  std::vector<SparseVector> vectors = filtered.BuildClickVectors();
  const size_t n = filtered.num_queries();
  std::unordered_map<uint32_t, std::vector<uint32_t>> url_to_queries;
  for (const querylog::ClickRecord& r : filtered.records()) {
    url_to_queries[r.url_id].push_back(r.query_id);
  }
  std::vector<std::tuple<VertexId, VertexId, double>> expected;
  for (size_t q = 0; q < n; ++q) {
    std::unordered_set<uint32_t> candidates;
    for (const auto& [url, clicks] : vectors[q].entries()) {
      (void)clicks;
      auto it = url_to_queries.find(url);
      if (it == url_to_queries.end()) continue;
      if (it->second.size() > options.max_url_fanout) continue;
      for (uint32_t other : it->second) {
        if (other > q) candidates.insert(other);
      }
    }
    for (uint32_t other : candidates) {
      double sim = vectors[q].Cosine(vectors[other]);
      if (sim >= options.min_similarity) {
        expected.emplace_back(static_cast<VertexId>(q),
                              static_cast<VertexId>(other), sim);
      }
    }
  }
  std::sort(expected.begin(), expected.end());

  std::vector<std::tuple<VertexId, VertexId, double>> actual;
  for (const Edge& e : g.edges()) actual.emplace_back(e.u, e.v, e.weight);
  std::sort(actual.begin(), actual.end());
  ASSERT_FALSE(actual.empty());
  EXPECT_EQ(expected, actual);
}

TEST(BuilderOptionsTest, InvalidSimilarityRejected) {
  querylog::QueryLog log;
  SimilarityGraphOptions options;
  options.min_similarity = 1.5;
  EXPECT_FALSE(BuildSimilarityGraph(log, options).ok());
}

TEST(BuilderTest2, HubUrlsAreSkippedForCandidates) {
  // Two queries share only one URL, clicked by many queries: with a tiny
  // max_url_fanout the pair is never considered.
  querylog::QueryLog log;
  for (int q = 0; q < 10; ++q) {
    uint32_t id = log.AddQuery("q" + std::to_string(q), 0, false);
    log.AddSearches(id, 100);
    log.AddClicks(id, 999, 10);  // hub URL shared by all
  }
  SimilarityGraphOptions options;
  options.max_url_fanout = 5;
  options.min_similarity = 0.01;
  Graph g = *BuildSimilarityGraph(log, options);
  EXPECT_EQ(g.num_edges(), 0u);
  // With a generous fanout the clique appears.
  options.max_url_fanout = 100;
  Graph g2 = *BuildSimilarityGraph(log, options);
  EXPECT_GT(g2.num_edges(), 0u);
}

}  // namespace
}  // namespace esharp::graph
