#include <gtest/gtest.h>

#include <cmath>

#include "expert/detector.h"

namespace esharp::expert {
namespace {

using microblog::AccountKind;
using microblog::TweetCorpus;
using microblog::UserProfile;

UserProfile MakeUser(microblog::UserId id) {
  UserProfile u;
  u.id = id;
  u.screen_name = "u" + std::to_string(id);
  return u;
}

// A small corpus with a clear topical authority (user 0), a generalist
// (user 1), and a bystander who is only mentioned (user 2).
TweetCorpus SmallCorpus() {
  TweetCorpus corpus;
  for (microblog::UserId id = 0; id < 3; ++id) corpus.AddUser(MakeUser(id));
  // User 0: 4/4 tweets on topic, retweeted, mentioned on topic.
  corpus.AddTweet(0, "nfl preview week one", {}, 10);
  corpus.AddTweet(0, "nfl injury report", {}, 5);
  corpus.AddTweet(0, "nfl draft rumors", {}, 3);
  corpus.AddTweet(0, "nfl power rankings", {}, 8);
  // User 1: 1/4 on topic, rarely engaged.
  corpus.AddTweet(1, "nfl is back", {0}, 0);
  corpus.AddTweet(1, "pasta recipe", {}, 0);
  corpus.AddTweet(1, "my cat photos", {2}, 1);
  corpus.AddTweet(1, "rainy day", {}, 0);
  return corpus;
}

// ---------------------------------------------------- Candidate selection --

TEST(CandidateSelectionTest, AuthorsAndMentionedAreCandidates) {
  TweetCorpus corpus = SmallCorpus();
  ExpertDetector detector(&corpus);
  auto candidates = detector.CollectCandidates("nfl");
  // User 0 (author + mentioned), user 1 (author). User 2 only appears in an
  // off-topic tweet: not a candidate.
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].user, 0u);
  EXPECT_TRUE(candidates[0].is_author);
  EXPECT_TRUE(candidates[0].is_mentioned);
  EXPECT_EQ(candidates[0].tweets_on_topic, 4u);
  EXPECT_EQ(candidates[0].mentions_on_topic, 1u);
  EXPECT_EQ(candidates[0].retweets_on_topic, 26u);
  EXPECT_EQ(candidates[1].user, 1u);
  EXPECT_TRUE(candidates[1].is_author);
  EXPECT_FALSE(candidates[1].is_mentioned);
}

TEST(CandidateSelectionTest, MultiTermQueryNeedsAllTerms) {
  TweetCorpus corpus = SmallCorpus();
  ExpertDetector detector(&corpus);
  auto candidates = detector.CollectCandidates("nfl draft");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].user, 0u);
  EXPECT_EQ(candidates[0].tweets_on_topic, 1u);
}

TEST(CandidateSelectionTest, NoMatchesNoCandidates) {
  TweetCorpus corpus = SmallCorpus();
  ExpertDetector detector(&corpus);
  EXPECT_TRUE(detector.CollectCandidates("cricket").empty());
}

// ---------------------------------------------------------------- Ranking --

TEST(RankingTest, TopicalAuthorityOutranksGeneralist) {
  TweetCorpus corpus = SmallCorpus();
  DetectorOptions options;
  options.min_z_score = -100;  // keep everyone
  ExpertDetector detector(&corpus, options);
  auto experts = *detector.FindExperts("nfl");
  ASSERT_EQ(experts.size(), 2u);
  EXPECT_EQ(experts[0].user, 0u);
  EXPECT_GT(experts[0].score, experts[1].score);
  EXPECT_GT(experts[0].z_topical_signal, experts[1].z_topical_signal);
}

TEST(RankingTest, ZScoresAreCentered) {
  TweetCorpus corpus = SmallCorpus();
  DetectorOptions options;
  options.min_z_score = -100;
  ExpertDetector detector(&corpus, options);
  auto experts = *detector.FindExperts("nfl");
  double sum = 0;
  for (const RankedExpert& e : experts) sum += e.z_topical_signal;
  EXPECT_NEAR(sum, 0.0, 1e-9);  // z-scores over the pool sum to ~0
}

TEST(RankingTest, MinZScoreFiltersAndCapApplies) {
  TweetCorpus corpus = SmallCorpus();
  DetectorOptions options;
  options.min_z_score = 0.0;
  ExpertDetector detector(&corpus, options);
  auto experts = *detector.FindExperts("nfl");
  // With two candidates, z-scores are symmetric: only the better one is
  // non-negative.
  ASSERT_EQ(experts.size(), 1u);
  EXPECT_EQ(experts[0].user, 0u);

  options.min_z_score = -100;
  options.max_experts = 1;
  ExpertDetector capped(&corpus, options);
  EXPECT_EQ((*capped.FindExperts("nfl")).size(), 1u);
}

TEST(RankingTest, WeightsChangeTheScore) {
  TweetCorpus corpus = SmallCorpus();
  DetectorOptions ts_only;
  ts_only.weight_topical_signal = 1.0;
  ts_only.weight_mention_impact = 0.0;
  ts_only.weight_retweet_impact = 0.0;
  ts_only.min_z_score = -100;
  ExpertDetector detector(&corpus, ts_only);
  auto experts = *detector.FindExperts("nfl");
  ASSERT_EQ(experts.size(), 2u);
  EXPECT_NEAR(experts[0].score, experts[0].z_topical_signal, 1e-12);
}

TEST(RankingTest, EmptyPoolRanksEmpty) {
  TweetCorpus corpus = SmallCorpus();
  ExpertDetector detector(&corpus);
  EXPECT_TRUE((*detector.RankCandidates({})).empty());
}

TEST(RankingTest, InvalidSmoothingRejected) {
  TweetCorpus corpus = SmallCorpus();
  DetectorOptions options;
  options.smoothing = 0.0;
  ExpertDetector detector(&corpus, options);
  CandidateEvidence c;
  c.user = 0;
  EXPECT_FALSE(detector.RankCandidates({c}).ok());
}

TEST(RankingTest, DeterministicTieBreakByUserId) {
  // Two users with identical evidence: order must be stable by id.
  TweetCorpus corpus;
  corpus.AddUser(MakeUser(0));
  corpus.AddUser(MakeUser(1));
  corpus.AddTweet(0, "golf swing tips", {}, 2);
  corpus.AddTweet(1, "golf swing tips", {}, 2);
  DetectorOptions options;
  options.min_z_score = -100;
  ExpertDetector detector(&corpus, options);
  auto experts = *detector.FindExperts("golf");
  ASSERT_EQ(experts.size(), 2u);
  EXPECT_EQ(experts[0].user, 0u);
  EXPECT_EQ(experts[1].user, 1u);
}

// ---------------------------------------------------------- MergeEvidence --

TEST(MergeEvidenceTest, SumsCountsAndOrsFlags) {
  CandidateEvidence a;
  a.user = 7;
  a.is_author = true;
  a.tweets_on_topic = 2;
  a.retweets_on_topic = 5;
  CandidateEvidence b;
  b.user = 7;
  b.is_mentioned = true;
  b.tweets_on_topic = 1;
  b.mentions_on_topic = 3;
  CandidateEvidence other;
  other.user = 9;
  other.is_author = true;
  other.tweets_on_topic = 1;

  auto merged = MergeEvidence({{a}, {b, other}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].user, 7u);
  EXPECT_TRUE(merged[0].is_author);
  EXPECT_TRUE(merged[0].is_mentioned);
  EXPECT_EQ(merged[0].tweets_on_topic, 3u);
  EXPECT_EQ(merged[0].mentions_on_topic, 3u);
  EXPECT_EQ(merged[0].retweets_on_topic, 5u);
  EXPECT_EQ(merged[1].user, 9u);
}

TEST(MergeEvidenceTest, EmptyInputs) {
  EXPECT_TRUE(MergeEvidence({}).empty());
  EXPECT_TRUE(MergeEvidence({{}, {}}).empty());
}

TEST(FeatureMathTest, TopicalSignalMatchesHandComputation) {
  TweetCorpus corpus = SmallCorpus();
  DetectorOptions options;
  options.min_z_score = -100;
  options.weight_topical_signal = 1.0;
  options.weight_mention_impact = 0.0;
  options.weight_retweet_impact = 0.0;
  ExpertDetector detector(&corpus, options);
  auto experts = *detector.FindExperts("nfl");
  ASSERT_EQ(experts.size(), 2u);
  // TS(user0) = (4 + eps) / (4 + eps) = 1; TS(user1) = (1 + eps)/(4 + eps).
  const double eps = options.smoothing;
  double log_ts0 = std::log((4 + eps) / (4 + eps));
  double log_ts1 = std::log((1 + eps) / (4 + eps));
  double mean = (log_ts0 + log_ts1) / 2;
  double sd = std::sqrt(((log_ts0 - mean) * (log_ts0 - mean) +
                         (log_ts1 - mean) * (log_ts1 - mean)) /
                        2);
  EXPECT_NEAR(experts[0].z_topical_signal, (log_ts0 - mean) / sd, 1e-9);
  EXPECT_NEAR(experts[1].z_topical_signal, (log_ts1 - mean) / sd, 1e-9);
}

}  // namespace
}  // namespace esharp::expert
