#include <gtest/gtest.h>

#include "sqlengine/parser.h"

namespace esharp::sql {
namespace {

Catalog MakeCatalog() {
  Catalog cat;
  {
    TableBuilder b({{"name", DataType::kString},
                    {"age", DataType::kInt64},
                    {"score", DataType::kDouble}});
    b.AddRow({Value::String("ann"), Value::Int(30), Value::Double(1.5)});
    b.AddRow({Value::String("bob"), Value::Int(25), Value::Double(2.5)});
    b.AddRow({Value::String("cat"), Value::Int(30), Value::Double(0.5)});
    b.AddRow({Value::String("dan"), Value::Int(40), Value::Double(4.0)});
    cat.Register("people", b.Build());
  }
  {
    TableBuilder b({{"who", DataType::kString},
                    {"item", DataType::kString},
                    {"price", DataType::kDouble}});
    b.AddRow({Value::String("ann"), Value::String("book"), Value::Double(12)});
    b.AddRow({Value::String("ann"), Value::String("pen"), Value::Double(2)});
    b.AddRow({Value::String("dan"), Value::String("mug"), Value::Double(8)});
    cat.Register("orders", b.Build());
  }
  return cat;
}

Table RunSql(const std::string& sql, const Catalog& cat,
          const FunctionRegistry& registry = {}) {
  auto result = ExecuteSql(sql, cat, registry);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  if (!result.ok()) return Table();
  return std::move(result).MoveValueUnsafe();
}

// ----------------------------------------------------------- Basic SELECT --

TEST(ParserTest, SelectStar) {
  Catalog cat = MakeCatalog();
  Table out = RunSql("SELECT * FROM people", cat);
  EXPECT_EQ(out.num_rows(), 4u);
  EXPECT_EQ(out.num_columns(), 3u);
}

TEST(ParserTest, SelectColumnsWithAliases) {
  Catalog cat = MakeCatalog();
  Table out = RunSql("select name as who, age * 2 AS dbl from people", cat);
  EXPECT_EQ(out.schema().ToString(), "who:STRING, dbl:INT64");
  EXPECT_EQ(out.row(0)[1].int_value(), 60);
}

TEST(ParserTest, BareAliasWithoutAs) {
  Catalog cat = MakeCatalog();
  Table out = RunSql("select name who from people", cat);
  EXPECT_EQ(out.schema().column(0).name, "who");
}

TEST(ParserTest, WhereWithArithmeticAndLogic) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT name FROM people WHERE age + 5 >= 35 AND NOT (name = 'dan')",
      cat);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.row(0)[0].string_value(), "ann");
  EXPECT_EQ(out.row(1)[0].string_value(), "cat");
}

TEST(ParserTest, StringLiteralsWithEscapes) {
  Catalog cat = MakeCatalog();
  Table out = RunSql("SELECT 'it''s' AS s FROM people LIMIT 1", cat);
  EXPECT_EQ(out.row(0)[0].string_value(), "it's");
}

TEST(ParserTest, NumericLiteralsAndComparisons) {
  Catalog cat = MakeCatalog();
  Table out = RunSql("SELECT name FROM people WHERE score > 1.25", cat);
  EXPECT_EQ(out.num_rows(), 3u);
  Table out2 = RunSql("SELECT name FROM people WHERE age <> 30", cat);
  EXPECT_EQ(out2.num_rows(), 2u);
}

TEST(ParserTest, OrderByAndLimit) {
  Catalog cat = MakeCatalog();
  Table out =
      RunSql("SELECT name, age FROM people ORDER BY age DESC, name ASC LIMIT 2",
          cat);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.row(0)[0].string_value(), "dan");
  EXPECT_EQ(out.row(1)[0].string_value(), "ann");
}

TEST(ParserTest, DistinctDeduplicates) {
  Catalog cat = MakeCatalog();
  Table out = RunSql("SELECT DISTINCT age FROM people ORDER BY age", cat);
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.row(0)[0].int_value(), 25);
}

// ----------------------------------------------------------------- Joins --

TEST(ParserTest, InnerJoinWithAliases) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT p.name, o.item FROM people p "
      "INNER JOIN orders o ON p.name = o.who",
      cat);
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.schema().column(0).name, "p.name");
}

TEST(ParserTest, LeftJoinKeepsUnmatched) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT p.name, o.item FROM people p "
      "LEFT OUTER JOIN orders o ON p.name = o.who",
      cat);
  EXPECT_EQ(out.num_rows(), 5u);
}

TEST(ParserTest, SelfJoinWithTwoAliases) {
  // The exact shape Fig. 4 uses: the same table joined twice under two
  // aliases, disambiguated by qualified references.
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT a.name AS n1, b.name AS n2 FROM people a "
      "JOIN people b ON a.age = b.age WHERE a.name < b.name",
      cat);
  ASSERT_EQ(out.num_rows(), 1u);  // ann/cat share age 30
  EXPECT_EQ(out.row(0)[0].string_value(), "ann");
  EXPECT_EQ(out.row(0)[1].string_value(), "cat");
}

TEST(ParserTest, BareColumnResolvesThroughUniqueAlias) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT item FROM people p JOIN orders o ON p.name = o.who", cat);
  EXPECT_EQ(out.num_rows(), 3u);
}

TEST(ParserTest, AmbiguousBareColumnIsAnError) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteSql(
      "SELECT name FROM people a JOIN people b ON a.age = b.age", cat);
  EXPECT_FALSE(result.ok());
}

// ------------------------------------------------------------ Aggregates --

TEST(ParserTest, GroupByWithCountSumAvg) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT age, count(*) AS n, sum(score) AS total, avg(score) AS mean "
      "FROM people GROUP BY age ORDER BY age",
      cat);
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.row(1)[0].int_value(), 30);
  EXPECT_EQ(out.row(1)[1].int_value(), 2);
  EXPECT_DOUBLE_EQ(out.row(1)[2].double_value(), 2.0);
  EXPECT_DOUBLE_EQ(out.row(1)[3].double_value(), 1.0);
}

TEST(ParserTest, ArgMaxAggregate) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT age, argmax(score, name) AS best FROM people "
      "GROUP BY age ORDER BY age",
      cat);
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.row(1)[1].string_value(), "ann");
}

TEST(ParserTest, GlobalAggregateWithoutGroupBy) {
  Catalog cat = MakeCatalog();
  Table out = RunSql("SELECT count(*) AS n, max(age) AS oldest FROM people", cat);
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.row(0)[0].int_value(), 4);
  EXPECT_EQ(out.row(0)[1].int_value(), 40);
}

TEST(ParserTest, AggregateOverJoinWithQualifiedKeys) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT p.name, sum(o.price) AS spent FROM people p "
      "JOIN orders o ON p.name = o.who GROUP BY p.name ORDER BY p.name",
      cat);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.row(0)[0].string_value(), "ann");
  EXPECT_DOUBLE_EQ(out.row(0)[1].double_value(), 14.0);
}

TEST(ParserTest, NonAggregateSelectItemMustBeGrouped) {
  Catalog cat = MakeCatalog();
  auto result =
      ExecuteSql("SELECT name, count(*) AS n FROM people GROUP BY age", cat);
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, HavingFiltersGroups) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT age, count(*) AS n FROM people GROUP BY age "
      "HAVING n > 1 ORDER BY age",
      cat);
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.row(0)[0].int_value(), 30);
  EXPECT_EQ(out.row(0)[1].int_value(), 2);
}

TEST(ParserTest, UnionAllConcatenates) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT name FROM people WHERE age = 25 "
      "UNION ALL SELECT name FROM people WHERE age = 40",
      cat);
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(ParserTest, UnionRequiresAll) {
  Catalog cat = MakeCatalog();
  EXPECT_FALSE(
      ExecuteSql("SELECT name FROM people UNION SELECT name FROM people", cat)
          .ok());
}

// ------------------------------------------------------------ Subqueries --

TEST(ParserTest, SubqueryInFrom) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT t.name FROM (SELECT name, age FROM people WHERE age = 30) t "
      "ORDER BY t.name",
      cat);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.row(0)[0].string_value(), "ann");
}

TEST(ParserTest, JoinAgainstSubquery) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT p.name, s.n FROM people p JOIN "
      "(SELECT who, count(*) AS n FROM orders GROUP BY who) s "
      "ON p.name = s.who ORDER BY p.name",
      cat);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.row(0)[1].int_value(), 2);  // ann has two orders
}

// ------------------------------------------------------------------ UDFs --

TEST(ParserTest, ScalarUdfInWhereClause) {
  Catalog cat = MakeCatalog();
  FunctionRegistry registry;
  registry.RegisterScalar("half", [](const std::vector<Value>& args)
                                      -> Result<Value> {
    ESHARP_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
    return Value::Double(v / 2);
  });
  Table out = RunSql("SELECT name FROM people WHERE half(age) > 14", cat,
                  registry);
  ASSERT_EQ(out.num_rows(), 3u);
}

TEST(ParserTest, UnknownFunctionIsAnError) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteSql("SELECT mystery(age) FROM people", cat);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("mystery"), std::string::npos);
}

// ----------------------------------------------------------------- Errors --

TEST(ParserTest, SyntaxErrorsAreReported) {
  Catalog cat = MakeCatalog();
  EXPECT_FALSE(ExecuteSql("SELECT FROM people", cat).ok());
  EXPECT_FALSE(ExecuteSql("SELECT * people", cat).ok());
  EXPECT_FALSE(ExecuteSql("SELECT * FROM people WHERE", cat).ok());
  EXPECT_FALSE(ExecuteSql("SELECT * FROM people LIMIT banana", cat).ok());
  EXPECT_FALSE(ExecuteSql("SELECT * FROM people extra junk here", cat).ok());
  EXPECT_FALSE(ExecuteSql("SELECT 'unterminated FROM people", cat).ok());
}

TEST(ParserTest, MissingTableSurfacesAtExecution) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteSql("SELECT * FROM ghosts", cat);
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ParserTest, AggregateOutsideSelectListRejected) {
  Catalog cat = MakeCatalog();
  EXPECT_FALSE(
      ExecuteSql("SELECT name FROM people WHERE count(*) > 1", cat).ok());
}

TEST(ParserTest, CommentsAreSkipped) {
  Catalog cat = MakeCatalog();
  Table out = RunSql(
      "SELECT name -- this is the select list\n"
      "FROM people -- and the source\n"
      "WHERE age = 40",
      cat);
  ASSERT_EQ(out.num_rows(), 1u);
}

// ------------------------------------------------ The Fig. 4 statements ---

TEST(ParserTest, Figure4NeighborsStatementParsesAndRuns) {
  // A miniature graph/communities pair in the paper's exact schema.
  Catalog cat;
  {
    TableBuilder b({{"query1", DataType::kString},
                    {"query2", DataType::kString},
                    {"distance", DataType::kDouble}});
    b.AddRow({Value::String("a"), Value::String("b"), Value::Double(1.0)});
    b.AddRow({Value::String("b"), Value::String("a"), Value::Double(1.0)});
    cat.Register("graph", b.Build());
  }
  {
    TableBuilder b({{"comm_name", DataType::kString},
                    {"query", DataType::kString}});
    b.AddRow({Value::String("a"), Value::String("a")});
    b.AddRow({Value::String("b"), Value::String("b")});
    cat.Register("communities", b.Build());
  }
  FunctionRegistry registry;
  registry.RegisterScalar(
      "modulgain", [](const std::vector<Value>& args) -> Result<Value> {
        ESHARP_ASSIGN_OR_RETURN(double d1, args[0].AsDouble());
        ESHARP_ASSIGN_OR_RETURN(double d2, args[1].AsDouble());
        ESHARP_ASSIGN_OR_RETURN(double w, args[2].AsDouble());
        return Value::Double(w - d1 * d2 / 2.0);  // m_G = 1
      });

  Table out = RunSql(
      "SELECT c1.comm_name AS comm1, c2.comm_name AS comm2, "
      "       sum(graph.distance) AS w12 "
      "FROM graph "
      "INNER JOIN communities c1 ON graph.query1 = c1.query "
      "INNER JOIN communities c2 ON graph.query2 = c2.query "
      "WHERE c1.comm_name <> c2.comm_name "
      "GROUP BY c1.comm_name, c2.comm_name "
      "ORDER BY comm1",
      cat, registry);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.row(0)[0].string_value(), "a");
  EXPECT_DOUBLE_EQ(out.row(0)[2].double_value(), 1.0);
}

}  // namespace
}  // namespace esharp::sql
