#include <gtest/gtest.h>

#include <unordered_set>

#include "microblog/corpus.h"
#include "microblog/generator.h"

namespace esharp::microblog {
namespace {

UserProfile MakeUser(UserId id, AccountKind kind) {
  UserProfile u;
  u.id = id;
  u.kind = kind;
  u.screen_name = "u" + std::to_string(id);
  return u;
}

// Materialized views over the chunked corpus storage, for the range-for
// loops below (the corpus no longer exposes its internal vectors).
std::vector<UserProfile> AllUsers(const TweetCorpus& c) {
  std::vector<UserProfile> users;
  users.reserve(c.num_users());
  for (size_t i = 0; i < c.num_users(); ++i) {
    users.push_back(c.user(static_cast<UserId>(i)));
  }
  return users;
}

std::vector<Tweet> AllTweets(const TweetCorpus& c) {
  std::vector<Tweet> tweets;
  tweets.reserve(c.num_tweets());
  for (size_t i = 0; i < c.num_tweets(); ++i) {
    tweets.push_back(c.tweet(static_cast<uint32_t>(i)));
  }
  return tweets;
}

// ---------------------------------------------------------------- Corpus --

TEST(CorpusTest, TweetIndexesUpdate) {
  TweetCorpus corpus;
  corpus.AddUser(MakeUser(0, AccountKind::kExpert));
  corpus.AddUser(MakeUser(1, AccountKind::kCasual));
  corpus.AddTweet(0, "49ers Draft looking STRONG", {1}, 7);
  corpus.AddTweet(0, "coffee time", {}, 0);
  corpus.AddTweet(1, "who are the 49ers", {0}, 1);

  EXPECT_EQ(corpus.num_tweets(), 3u);
  EXPECT_EQ(corpus.TweetsByUser(0), 2u);
  EXPECT_EQ(corpus.TweetsByUser(1), 1u);
  EXPECT_EQ(corpus.MentionsOfUser(0), 1u);
  EXPECT_EQ(corpus.MentionsOfUser(1), 1u);
  EXPECT_EQ(corpus.RetweetsOfUser(0), 7u);
  EXPECT_EQ(corpus.RetweetsOfUser(1), 1u);
}

TEST(CorpusTest, MatchIsAllTermsLowerCased) {
  TweetCorpus corpus;
  corpus.AddUser(MakeUser(0, AccountKind::kExpert));
  uint32_t t0 = corpus.AddTweet(0, "49ers DRAFT news", {}, 0);
  corpus.AddTweet(0, "49ers game today", {}, 0);
  corpus.AddTweet(0, "nba draft", {}, 0);

  using Terms = std::vector<std::string>;
  auto hits = corpus.MatchTweets(Terms{"49ers", "draft"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], t0);
  EXPECT_EQ(corpus.MatchTweets(Terms{"49ERS"}).size(), 2u);
  EXPECT_EQ(corpus.MatchTweets(Terms{"draft"}).size(), 2u);
  EXPECT_TRUE(corpus.MatchTweets(Terms{"hockey"}).empty());
  EXPECT_TRUE(corpus.MatchTweets(Terms{}).empty());
}

TEST(CorpusTest, MatchRequiresWholeTokens) {
  TweetCorpus corpus;
  corpus.AddUser(MakeUser(0, AccountKind::kCasual));
  corpus.AddTweet(0, "drafting prospects", {}, 0);
  EXPECT_TRUE(corpus.MatchTweets(std::vector<std::string>{"draft"}).empty());
}

TEST(CorpusTest, MatchResultsAreSortedTweetIds) {
  TweetCorpus corpus;
  corpus.AddUser(MakeUser(0, AccountKind::kCasual));
  for (int i = 0; i < 20; ++i) corpus.AddTweet(0, "nfl talk", {}, 0);
  auto hits = corpus.MatchTweets(std::vector<std::string>{"nfl"});
  ASSERT_EQ(hits.size(), 20u);
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
}

// -------------------------------------------------------------- Generator --

class CorpusGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    querylog::UniverseOptions uo;
    uo.num_categories = 3;
    uo.domains_per_category = 10;
    uo.seed = 77;
    universe_ = std::make_unique<querylog::TopicUniverse>(
        *querylog::TopicUniverse::Generate(uo));
    CorpusOptions co;
    co.seed = 78;
    co.casual_users = 200;
    co.spam_users = 20;
    co.mean_experts_per_domain = 4;
    co.expert_tweets_mean = 30;
    corpus_ = std::make_unique<TweetCorpus>(*GenerateCorpus(*universe_, co));
  }

  std::unique_ptr<querylog::TopicUniverse> universe_;
  std::unique_ptr<TweetCorpus> corpus_;
};

TEST_F(CorpusGeneratorTest, PopulationHasAllKinds) {
  size_t experts = 0, casual = 0, spam = 0;
  for (const UserProfile& u : AllUsers(*corpus_)) {
    switch (u.kind) {
      case AccountKind::kExpert: ++experts; break;
      case AccountKind::kCasual: ++casual; break;
      case AccountKind::kSpam: ++spam; break;
    }
  }
  EXPECT_GT(experts, 50u);
  EXPECT_EQ(casual, 200u);
  EXPECT_EQ(spam, 20u);
}

TEST_F(CorpusGeneratorTest, ExpertsHaveDomainsOthersDoNot) {
  for (const UserProfile& u : AllUsers(*corpus_)) {
    if (u.kind == AccountKind::kExpert) {
      EXPECT_NE(u.domain, querylog::kNoDomain);
      EXPECT_LT(u.domain, universe_->num_domains());
    } else {
      EXPECT_EQ(u.domain, querylog::kNoDomain);
    }
  }
}

TEST_F(CorpusGeneratorTest, ExpertsAreTopical) {
  // For experts with enough tweets, at least half should contain one of
  // their domain's terms (ignoring hashtag variants, this undercounts).
  size_t checked = 0;
  std::vector<std::vector<uint32_t>> tweets_by_user(corpus_->num_users());
  for (const Tweet& t : AllTweets(*corpus_)) {
    tweets_by_user[t.author].push_back(t.id);
  }
  for (const UserProfile& u : AllUsers(*corpus_)) {
    if (u.kind != AccountKind::kExpert) continue;
    if (tweets_by_user[u.id].size() < 20) continue;
    const auto& dom = universe_->domain(u.domain);
    size_t topical = 0;
    for (uint32_t tid : tweets_by_user[u.id]) {
      const std::string& text = corpus_->tweet(tid).text;
      for (const std::string& term : dom.terms) {
        if (text.find(term) != std::string::npos) {
          ++topical;
          break;
        }
      }
    }
    double rate = static_cast<double>(topical) /
                  static_cast<double>(tweets_by_user[u.id].size());
    EXPECT_GT(rate, 0.3) << "expert " << u.screen_name;
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST_F(CorpusGeneratorTest, MentionsFlowToExperts) {
  uint64_t expert_mentions = 0, other_mentions = 0;
  for (const UserProfile& u : AllUsers(*corpus_)) {
    if (u.kind == AccountKind::kExpert) {
      expert_mentions += corpus_->MentionsOfUser(u.id);
    } else {
      other_mentions += corpus_->MentionsOfUser(u.id);
    }
  }
  EXPECT_GT(expert_mentions, other_mentions);
}

TEST_F(CorpusGeneratorTest, TweetsRespectLengthLimit) {
  for (const Tweet& t : AllTweets(*corpus_)) {
    EXPECT_LE(t.text.size(), 140u);
    EXPECT_FALSE(t.text.empty());
  }
}

TEST_F(CorpusGeneratorTest, ScreenNamesAreUniqueEnough) {
  std::unordered_set<std::string> names;
  size_t collisions = 0;
  for (const UserProfile& u : AllUsers(*corpus_)) {
    if (!names.insert(u.screen_name).second) ++collisions;
  }
  // A handful of collisions is acceptable (real platforms disambiguate),
  // wholesale duplication is a generator bug.
  EXPECT_LT(collisions, corpus_->num_users() / 10);
}

TEST_F(CorpusGeneratorTest, DeterministicForSeed) {
  CorpusOptions co;
  co.seed = 78;
  co.casual_users = 200;
  co.spam_users = 20;
  co.mean_experts_per_domain = 4;
  co.expert_tweets_mean = 30;
  TweetCorpus again = *GenerateCorpus(*universe_, co);
  ASSERT_EQ(again.num_tweets(), corpus_->num_tweets());
  EXPECT_EQ(again.tweet(0).text, corpus_->tweet(0).text);
  EXPECT_EQ(again.tweet(again.num_tweets() - 1).text,
            corpus_->tweet(corpus_->num_tweets() - 1).text);
}

TEST(CorpusGeneratorOptionsTest, InvalidMeanRejected) {
  querylog::UniverseOptions uo;
  uo.num_categories = 1;
  uo.domains_per_category = 2;
  querylog::TopicUniverse u = *querylog::TopicUniverse::Generate(uo);
  CorpusOptions co;
  co.mean_experts_per_domain = 0;
  EXPECT_FALSE(GenerateCorpus(u, co).ok());
}

}  // namespace
}  // namespace esharp::microblog
