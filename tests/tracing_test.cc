// Distributed-tracing suite (ctest -L tracing): the TraceContext codec is
// pinned by golden values (the deterministic child derivation must never
// drift across platforms or refactors), fuzzed against malformed headers
// (a bad header yields a fresh root, never a crash or a poisoned id), and
// exercised end to end: one trace id must span the router and every shard
// over the real HTTP transport for N in {1,2,4}, /queryz?trace=<id> must
// serve the stitched Chrome trace with per-shard lanes, and profiles must
// stay complete under faults (dead shard, timed-out shard, hedge winner).
// The stress test at the bottom joins the serving label's TSan runs.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/health.h"
#include "cluster/partition.h"
#include "cluster/router.h"
#include "cluster/shard.h"
#include "cluster/transport_http.h"
#include "community/store.h"
#include "esharp/pipeline.h"
#include "expert/detector.h"
#include "microblog/corpus.h"
#include "microblog/generator.h"
#include "obs/debugz.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "querylog/generator.h"
#include "serving/engine.h"

namespace esharp {
namespace {

// ------------------------------------------------------------- helpers ----

/// One randomized world (universe -> query log -> offline pipeline ->
/// corpus), the same shape cluster_test.cc builds.
struct World {
  querylog::TopicUniverse universe;
  core::OfflineArtifacts artifacts;
  microblog::TweetCorpus corpus;
};

World MakeWorld(uint64_t seed) {
  querylog::UniverseOptions uo;
  uo.num_categories = 2;
  uo.domains_per_category = 6;
  uo.seed = seed;
  querylog::TopicUniverse universe = *querylog::TopicUniverse::Generate(uo);

  querylog::GeneratorOptions go;
  go.seed = seed + 1;
  go.head_impressions = 12000;
  querylog::GeneratedLog generated = *GenerateQueryLog(universe, go);

  microblog::CorpusOptions co;
  co.seed = seed + 2;
  co.casual_users = 180;
  co.spam_users = 15;
  microblog::TweetCorpus corpus = *GenerateCorpus(universe, co);

  core::OfflineOptions offline;
  offline.extraction.min_similarity = 0.15;
  offline.corpus = &corpus;
  core::OfflineArtifacts artifacts =
      *RunOfflinePipeline(generated.log, offline);

  return World{std::move(universe), std::move(artifacts), std::move(corpus)};
}

std::string FirstTopicQuery(const World& world) {
  for (const querylog::TopicDomain& dom : world.universe.domains()) {
    if (!dom.terms.empty()) return dom.terms[0];
  }
  return "tennis";
}

serving::ServingOptions ShardEngineOptions() {
  serving::ServingOptions o;
  o.num_threads = 2;
  o.enable_cache = false;
  o.enable_single_flight = false;
  return o;
}

/// Fault-injection transport, as in cluster_test.cc: all knobs are live
/// atomics so tests flip them mid-traffic.
class FaultShard final : public cluster::ShardTransport {
 public:
  FaultShard(std::string name,
             std::unique_ptr<cluster::ShardTransport> delegate)
      : name_(std::move(name)), delegate_(std::move(delegate)) {}

  const std::string& name() const override { return name_; }

  Result<cluster::ShardEvidence> Collect(
      const cluster::ShardRequest& request) override {
    double sleep_ms = sleep_first_ms_.exchange(0.0);
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    if (fail_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("injected fault on ", name_);
    }
    return delegate_->Collect(request);
  }

  uint64_t VersionHint() const override { return delegate_->VersionHint(); }

  void set_fail(bool fail) { fail_.store(fail, std::memory_order_relaxed); }
  void set_sleep_first_ms(double ms) { sleep_first_ms_.store(ms); }

 private:
  std::string name_;
  std::unique_ptr<cluster::ShardTransport> delegate_;
  std::atomic<bool> fail_{false};
  std::atomic<double> sleep_first_ms_{0.0};
};

/// In-process cluster whose transports are FaultShards.
struct FaultyCluster {
  cluster::PartitionedCorpus partition;
  std::shared_ptr<const community::CommunityStore> store;
  std::vector<std::unique_ptr<serving::SnapshotManager>> managers;
  std::vector<std::unique_ptr<serving::ServingEngine>> engines;
  std::unique_ptr<expert::ExpertDetector> union_detector;
  std::unique_ptr<cluster::ClusterRouter> router;
  std::vector<FaultShard*> faults;
};

FaultyCluster MakeFaultyCluster(const World& world, uint32_t num_shards,
                                cluster::RouterOptions router_options = {}) {
  FaultyCluster fc;
  fc.partition = cluster::PartitionCorpus(world.corpus, num_shards);
  fc.store = std::make_shared<const community::CommunityStore>(
      world.artifacts.store);
  std::vector<std::unique_ptr<cluster::ShardTransport>> transports;
  for (uint32_t s = 0; s < num_shards; ++s) {
    fc.managers.push_back(std::make_unique<serving::SnapshotManager>(
        fc.partition.shards[s].get()));
    fc.managers.back()->Publish(fc.store);
    fc.engines.push_back(std::make_unique<serving::ServingEngine>(
        fc.managers.back().get(), ShardEngineOptions()));
    std::string name = "shard-" + std::to_string(s);
    auto fault = std::make_unique<FaultShard>(
        name, std::make_unique<cluster::InProcessShard>(
                  name, fc.engines.back().get()));
    fc.faults.push_back(fault.get());
    transports.push_back(std::move(fault));
  }
  fc.union_detector = std::make_unique<expert::ExpertDetector>(&world.corpus);
  fc.router = std::make_unique<cluster::ClusterRouter>(
      std::move(transports), fc.union_detector.get(), router_options);
  return fc;
}

/// Real-wire cluster: every shard is a ServingEngine behind its own
/// DebugServer + MountShardEndpoint, reached over HttpShardTransport, and
/// every process (router + shards) runs its own Tracer so the test can
/// prove one trace id crossed the HTTP boundary into every shard's spans.
struct HttpCluster {
  cluster::PartitionedCorpus partition;
  std::shared_ptr<const community::CommunityStore> store;
  std::vector<std::unique_ptr<obs::Tracer>> shard_tracers;
  std::vector<std::unique_ptr<serving::SnapshotManager>> managers;
  std::vector<std::unique_ptr<serving::ServingEngine>> engines;
  std::vector<std::unique_ptr<obs::DebugServer>> shard_servers;
  std::unique_ptr<obs::Tracer> router_tracer =
      std::make_unique<obs::Tracer>();
  std::unique_ptr<expert::ExpertDetector> union_detector;
  std::unique_ptr<cluster::ClusterRouter> router;
};

HttpCluster MakeHttpCluster(const World& world, uint32_t num_shards,
                            cluster::RouterOptions router_options = {}) {
  HttpCluster hc;
  hc.partition = cluster::PartitionCorpus(world.corpus, num_shards);
  hc.store = std::make_shared<const community::CommunityStore>(
      world.artifacts.store);
  std::vector<std::unique_ptr<cluster::ShardTransport>> transports;
  for (uint32_t s = 0; s < num_shards; ++s) {
    hc.shard_tracers.push_back(std::make_unique<obs::Tracer>());
    hc.managers.push_back(std::make_unique<serving::SnapshotManager>(
        hc.partition.shards[s].get()));
    hc.managers.back()->Publish(hc.store);
    serving::ServingOptions so = ShardEngineOptions();
    so.tracer = hc.shard_tracers.back().get();
    hc.engines.push_back(std::make_unique<serving::ServingEngine>(
        hc.managers.back().get(), so));
    hc.shard_servers.push_back(std::make_unique<obs::DebugServer>());
    cluster::MountShardEndpoint(hc.shard_servers.back().get(),
                                hc.engines.back().get());
    EXPECT_TRUE(hc.shard_servers.back()->Start().ok());
    transports.push_back(std::make_unique<cluster::HttpShardTransport>(
        "shard-" + std::to_string(s), "127.0.0.1",
        hc.shard_servers.back()->port()));
  }
  hc.union_detector = std::make_unique<expert::ExpertDetector>(&world.corpus);
  router_options.tracer = hc.router_tracer.get();
  hc.router = std::make_unique<cluster::ClusterRouter>(
      std::move(transports), hc.union_detector.get(), router_options);
  return hc;
}

[[maybe_unused]] bool TracerSawTrace(const obs::Tracer& tracer,
                                     const obs::TraceContext& t) {
  for (const obs::TraceEvent& e : tracer.Events()) {
    if (e.trace_hi == t.trace_hi && e.trace_lo == t.trace_lo) return true;
  }
  return false;
}

std::shared_ptr<const obs::QueryProfile> MakeProfile(double total_ms) {
  auto p = std::make_shared<obs::QueryProfile>();
  p->trace = obs::TraceContext::NewRoot();
  p->query = "q";
  p->outcome = "ok";
  p->total_ms = total_ms;
  p->shards_total = 1;
  p->shards_answered = 1;
  return p;
}

// ------------------------------------------------- codec golden values ----

// The child-id derivation and the header codec are part of the wire
// contract (a router and a shard on different hosts must agree), so they
// are pinned to literal values exactly like the shard partitioner.
TEST(TraceContextTest, GoldenChildDerivationIsPinned) {
  obs::TraceContext parent;
  parent.trace_hi = 0x0123456789abcdefULL;
  parent.trace_lo = 0xfedcba9876543210ULL;
  parent.span_id = 0x1122334455667788ULL;
  parent.sampled = true;

  EXPECT_EQ(parent.ToHeader(),
            "00-0123456789abcdeffedcba9876543210-1122334455667788-01");
  EXPECT_EQ(parent.TraceIdHex(), "0123456789abcdeffedcba9876543210");

  EXPECT_EQ(parent.Child(0).span_id, 0x6c52c59cbb911fccULL);
  EXPECT_EQ(parent.Child(1).span_id, 0x01ed84dccc942d69ULL);
  EXPECT_EQ(parent.Child(2).span_id, 0x2ec12d2ba8eb2649ULL);
  EXPECT_EQ(parent.Child(3).span_id, 0xba90ddc1044332c9ULL);
  EXPECT_EQ(parent.Child(2).Child(7).span_id, 0x3dd271f7b542d0c7ULL);
  EXPECT_EQ(parent.Child(0).ToHeader(),
            "00-0123456789abcdeffedcba9876543210-6c52c59cbb911fcc-01");

  // Children keep the trace id and the sampling bit; derivation is a pure
  // function of (parent, index).
  for (uint64_t i = 0; i < 64; ++i) {
    obs::TraceContext child = parent.Child(i);
    EXPECT_TRUE(child.SameTrace(parent));
    EXPECT_NE(child.span_id, 0u);
    EXPECT_EQ(child.span_id, parent.Child(i).span_id);
    for (uint64_t j = 0; j < i; ++j) {
      EXPECT_NE(child.span_id, parent.Child(j).span_id)
          << "collision between children " << i << " and " << j;
    }
  }
}

TEST(TraceContextTest, HeaderRoundTripsExactly) {
  for (int i = 0; i < 32; ++i) {
    obs::TraceContext root = obs::TraceContext::NewRoot(i % 2 == 0);
    ASSERT_TRUE(root.valid());
    std::string header = root.ToHeader();
    ASSERT_EQ(header.size(), 55u);
    EXPECT_EQ(header.substr(0, 3), "00-");
    auto parsed = obs::TraceContext::FromHeader(header);
    ASSERT_TRUE(parsed.ok()) << header;
    EXPECT_EQ(*parsed, root);
    // The lenient path adopts well-formed headers verbatim.
    EXPECT_EQ(obs::TraceContext::FromHeaderOrRoot(header), root);
  }
  // The flags byte carries the sampling bit.
  obs::TraceContext unsampled = obs::TraceContext::NewRoot(false);
  EXPECT_EQ(unsampled.ToHeader().substr(53), "00");
  EXPECT_EQ(obs::TraceContext::NewRoot(true).ToHeader().substr(53), "01");
  EXPECT_FALSE(obs::TraceContext::FromHeader(unsampled.ToHeader())->sampled);
}

TEST(TraceContextTest, NewRootsAreValidAndDistinct) {
  obs::TraceContext a = obs::TraceContext::NewRoot();
  obs::TraceContext b = obs::TraceContext::NewRoot();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.SameTrace(b));
  EXPECT_NE(a.span_id, b.span_id);
}

// ---------------------------------------------------- codec robustness ----

// Satellite: malformed, truncated, duplicated or missing headers must
// yield a fresh root context — never a crash, never a poisoned (zero or
// partially-parsed) id.
TEST(TraceContextTest, MalformedHeadersRejectedStrictlyAndHealedLeniently) {
  const std::string good =
      "00-0123456789abcdeffedcba9876543210-1122334455667788-01";
  ASSERT_TRUE(obs::TraceContext::FromHeader(good).ok());

  std::vector<std::string> bad;
  bad.push_back("");                       // missing
  bad.push_back(good + "0");               // too long
  bad.push_back("01" + good.substr(2));    // future version
  bad.push_back("ff" + good.substr(2));    // reserved version
  bad.push_back("0-" + good.substr(2));    // mangled version field
  // Zero ids are the W3C "absent" sentinel, not a real context.
  bad.push_back("00-00000000000000000000000000000000-1122334455667788-01");
  bad.push_back("00-0123456789abcdeffedcba9876543210-0000000000000000-01");
  // Every truncation length.
  for (size_t n = 1; n < good.size(); ++n) bad.push_back(good.substr(0, n));
  // A non-hex byte in every field.
  for (size_t pos : {size_t(0), size_t(4), size_t(20), size_t(40),
                     size_t(53)}) {
    std::string s = good;
    s[pos] = 'g';
    bad.push_back(s);
  }
  // Misplaced separators.
  for (size_t pos : {size_t(2), size_t(35), size_t(52)}) {
    std::string s = good;
    s[pos] = '0';
    bad.push_back(s);
  }
  // Deterministic fuzz: random printable garbage of random lengths.
  uint64_t lcg = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 256; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    std::string s;
    size_t len = (lcg >> 33) % 80;
    for (size_t j = 0; j < len; ++j) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      s.push_back(static_cast<char>(' ' + ((lcg >> 40) % 95)));
    }
    if (s == good) continue;  // astronomically unlikely, but be exact
    // The strict parse may only succeed on an exactly well-formed header;
    // random garbage of the right length still has dashes/hex wrong.
    auto parsed = obs::TraceContext::FromHeader(s);
    if (parsed.ok()) {
      EXPECT_EQ(parsed->ToHeader(), s);  // then it must round-trip
    }
    EXPECT_TRUE(obs::TraceContext::FromHeaderOrRoot(s).valid());
  }

  for (const std::string& s : bad) {
    SCOPED_TRACE("header: \"" + s + "\"");
    auto parsed = obs::TraceContext::FromHeader(s);
    EXPECT_FALSE(parsed.ok());
    EXPECT_TRUE(parsed.status().IsInvalidArgument());
    // Lenient path: a fresh, valid root that shares nothing with the
    // garbage input's embedded ids.
    obs::TraceContext healed = obs::TraceContext::FromHeaderOrRoot(s);
    EXPECT_TRUE(healed.valid());
    EXPECT_NE(healed.TraceIdHex(), "0123456789abcdeffedcba9876543210");
  }
}

// ------------------------------------------------------ wire piggyback ----

TEST(TracingWireTest, ProfileLineRoundTripsThroughShardEncoding) {
  cluster::ShardEvidence evidence;
  evidence.snapshot_version = 7;
  evidence.terms = 3;
  evidence.shard_ms = 12.5;
  evidence.trace = obs::TraceContext::NewRoot();
  evidence.queue_ms = 0.25;
  evidence.expand_ms = 1.5;
  evidence.detect_ms = 9.75;
  expert::CandidateEvidence c;
  c.user = 42;
  evidence.evidence.push_back(c);

  std::string body = cluster::EncodeShardEvidence(evidence);
  EXPECT_NE(body.find("profile trace=" + evidence.trace.ToHeader()),
            std::string::npos);

  auto decoded = cluster::DecodeShardEvidence(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace, evidence.trace);
  EXPECT_DOUBLE_EQ(decoded->queue_ms, 0.25);
  EXPECT_DOUBLE_EQ(decoded->expand_ms, 1.5);
  EXPECT_DOUBLE_EQ(decoded->detect_ms, 9.75);
  ASSERT_EQ(decoded->evidence.size(), 1u);
  EXPECT_EQ(decoded->evidence[0].user, 42u);
}

TEST(TracingWireTest, DecodeToleratesMissingAndMalformedProfileLines) {
  cluster::ShardEvidence evidence;
  evidence.snapshot_version = 7;
  // No trace -> no profile line (the pre-tracing wire format).
  std::string body = cluster::EncodeShardEvidence(evidence);
  EXPECT_EQ(body.find("profile "), std::string::npos);
  auto decoded = cluster::DecodeShardEvidence(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->trace.valid());

  // A shard speaking a newer dialect: the router skips what it cannot
  // parse instead of failing the payload.
  evidence.trace = obs::TraceContext::NewRoot();
  std::string with_profile = cluster::EncodeShardEvidence(evidence);
  size_t line_start = with_profile.find("profile ");
  ASSERT_NE(line_start, std::string::npos);
  std::string mangled = with_profile;
  mangled.replace(line_start, 8, "profile_");
  auto skipped = cluster::DecodeShardEvidence(mangled);
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();
  EXPECT_FALSE(skipped->trace.valid());
  EXPECT_EQ(skipped->snapshot_version, 7u);
}

// ------------------------------------------------------- slow-query log ----

TEST(SlowQueryLogTest, BoundedRetentionKeepsTopKAndRecent) {
  obs::SlowQueryLogOptions options;
  options.top_k = 4;
  options.recent = 3;
  obs::SlowQueryLog log(options);
  std::vector<std::shared_ptr<const obs::QueryProfile>> all;
  for (int i = 0; i < 20; ++i) {
    all.push_back(MakeProfile(static_cast<double>(i)));
    log.Record(all.back());
  }
  EXPECT_EQ(log.recorded(), 20u);

  auto top = log.TopK();
  ASSERT_EQ(top.size(), 4u);
  EXPECT_DOUBLE_EQ(top[0]->total_ms, 19.0);
  EXPECT_DOUBLE_EQ(top[1]->total_ms, 18.0);
  EXPECT_DOUBLE_EQ(top[2]->total_ms, 17.0);
  EXPECT_DOUBLE_EQ(top[3]->total_ms, 16.0);

  auto recent = log.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_DOUBLE_EQ(recent[0]->total_ms, 19.0);  // newest first
  EXPECT_DOUBLE_EQ(recent[1]->total_ms, 18.0);
  EXPECT_DOUBLE_EQ(recent[2]->total_ms, 17.0);

  // Find accepts the bare 32-hex id and the full header; misses are null.
  EXPECT_EQ(log.Find(all[16]->trace.TraceIdHex()), all[16]);
  EXPECT_EQ(log.Find(all[19]->trace.ToHeader()), all[19]);
  EXPECT_EQ(log.Find(all[0]->trace.TraceIdHex()), nullptr);  // evicted
  EXPECT_EQ(log.Find("not a trace id"), nullptr);
}

TEST(SlowQueryLogTest, ChromeExportCarriesLanesHedgesAndDeadlines) {
  obs::QueryProfile p;
  p.trace = obs::TraceContext::NewRoot();
  p.query = "tennis";
  p.outcome = "degraded";
  p.total_ms = 50;
  p.merge_ms = 4;
  p.deadline_ms = 120;
  p.shards_total = 2;
  p.shards_answered = 1;
  p.hedges_fired = 1;
  p.degraded = true;
  p.stages.push_back({"gather", 1, 40});
  obs::ProfileLane ok_lane;
  ok_lane.name = "shard-0";
  obs::LaneAttempt primary;
  primary.outcome = "ok";
  primary.won = true;
  primary.deadline_ms = 100;
  primary.has_breakdown = true;
  primary.queue_ms = 0.5;
  primary.expand_ms = 2;
  primary.detect_ms = 7;
  primary.candidates = 31;
  ok_lane.attempts.push_back(primary);
  obs::LaneAttempt hedge;
  hedge.hedge = true;
  hedge.outcome = "outstanding";
  hedge.start_ms = 20;
  hedge.deadline_ms = 80;
  ok_lane.attempts.push_back(hedge);
  p.lanes.push_back(ok_lane);
  obs::ProfileLane dead_lane;
  dead_lane.name = "shard-1";
  dead_lane.annotation = "failed: Unavailable: injected";
  obs::LaneAttempt failed;
  failed.outcome = "error";
  failed.detail = "Unavailable: injected";
  dead_lane.attempts.push_back(failed);
  p.lanes.push_back(dead_lane);

  std::string json = p.ExportChromeJson();
  // Lane metadata: one named thread per shard plus the router.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("router"), std::string::npos);
  EXPECT_NE(json.find("shard-0"), std::string::npos);
  EXPECT_NE(json.find("shard-1 [failed: Unavailable: injected]"),
            std::string::npos);
  // The root event attributes the whole query.
  EXPECT_NE(json.find(p.trace.TraceIdHex()), std::string::npos);
  EXPECT_NE(json.find("\"shards_answered\":\"1/2\""), std::string::npos);
  EXPECT_NE(json.find("\"hedges_fired\":\"1\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_ms\":\"120.000\""), std::string::npos);
  // Attempt events: the hedge by name, per-attempt deadlines, the failed
  // attempt's error detail, and the nested shard-side breakdown.
  EXPECT_NE(json.find("\"name\":\"hedge\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_ms\":\"100.000\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"Unavailable: injected\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"candidates\":\"31\""), std::string::npos);

  // The summary JSON (RenderJson) carries the same attribution.
  obs::SlowQueryLog log;
  log.Record(std::make_shared<const obs::QueryProfile>(p));
  std::string summary = log.RenderJson();
  EXPECT_NE(summary.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(summary.find("\"outcome\":\"degraded\""), std::string::npos);
  EXPECT_NE(summary.find("\"hedge\":true"), std::string::npos);
  EXPECT_NE(summary.find(p.trace.TraceIdHex()), std::string::npos);
}

// ------------------------------------------- end to end over real HTTP ----

// The PR's acceptance criterion: one trace id spans the router and every
// shard over the HTTP transport, and /queryz?trace=<id> serves the
// stitched Chrome trace with per-shard lanes — for N in {1, 2, 4}.
TEST(TracingHttpTest, OneTraceIdSpansRouterAndAllShardsOverHttp) {
  World world = MakeWorld(3101);
  for (uint32_t num_shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards " + std::to_string(num_shards));
    cluster::RouterOptions ro;
    ro.enable_cache = false;
    ro.enable_hedging = false;
    HttpCluster hc = MakeHttpCluster(world, num_shards, ro);

    serving::QueryRequest request;
    request.query = FirstTopicQuery(world);
    request.deadline_ms = 5000;  // generous: only deadline *attribution*
    auto routed = hc.router->Query(request);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    ASSERT_TRUE(routed->trace.valid());
    EXPECT_EQ(routed->shards_answered, num_shards);

#if ESHARP_OBS_ENABLED
    // The router's own spans and every shard's spans carry the one id —
    // the shards learned it from the &trace= header on the wire.
    EXPECT_TRUE(TracerSawTrace(*hc.router_tracer, routed->trace));
    for (uint32_t s = 0; s < num_shards; ++s) {
      EXPECT_TRUE(TracerSawTrace(*hc.shard_tracers[s], routed->trace))
          << "shard " << s << " never served under the router's trace id";
    }
#endif

    // The stitched profile: one lane per shard, every attempt answered
    // with the piggybacked breakdown (proof the profile line crossed the
    // wire and matched this attempt's child context).
    auto profile = hc.router->slow_queries().Find(routed->trace.TraceIdHex());
    ASSERT_NE(profile, nullptr);
    EXPECT_EQ(profile->outcome, "ok");
    EXPECT_DOUBLE_EQ(profile->deadline_ms, 5000.0);
    ASSERT_EQ(profile->lanes.size(), num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      SCOPED_TRACE("lane " + std::to_string(s));
      const obs::ProfileLane& lane = profile->lanes[s];
      EXPECT_EQ(lane.name, "shard-" + std::to_string(s));
      EXPECT_TRUE(lane.annotation.empty()) << lane.annotation;
      ASSERT_EQ(lane.attempts.size(), 1u);
      EXPECT_EQ(lane.attempts[0].outcome, "ok");
      EXPECT_TRUE(lane.attempts[0].won);
      EXPECT_GT(lane.attempts[0].deadline_ms, 0.0);
      EXPECT_TRUE(lane.attempts[0].has_breakdown);
    }

    // /queryz on the router's own debug server: the HTML table lists the
    // query, ?trace= downloads the Chrome trace with the shard lanes and
    // the deadline attribution, ?format=json summarizes, unknown ids 404.
    obs::DebugServer server;
    obs::MountQueryz(&server, &hc.router->slow_queries());
    ASSERT_TRUE(server.Start().ok());
    std::string id = routed->trace.TraceIdHex();

    auto chrome =
        obs::HttpGet("127.0.0.1", server.port(), "/queryz?trace=" + id);
    ASSERT_TRUE(chrome.ok()) << chrome.status().ToString();
    ASSERT_EQ(chrome->status, 200);
    EXPECT_NE(chrome->body.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(chrome->body.find(id), std::string::npos);
    EXPECT_NE(chrome->body.find("\"deadline_ms\""), std::string::npos);
    for (uint32_t s = 0; s < num_shards; ++s) {
      EXPECT_NE(chrome->body.find("shard-" + std::to_string(s)),
                std::string::npos);
    }

    auto html = obs::HttpGet("127.0.0.1", server.port(), "/queryz");
    ASSERT_TRUE(html.ok());
    ASSERT_EQ(html->status, 200);
    EXPECT_NE(html->body.find(id), std::string::npos);

    auto json =
        obs::HttpGet("127.0.0.1", server.port(), "/queryz?format=json");
    ASSERT_TRUE(json.ok());
    EXPECT_NE(json->body.find("\"recorded\""), std::string::npos);
    EXPECT_NE(json->body.find(id), std::string::npos);

    auto miss = obs::HttpGet("127.0.0.1", server.port(),
                             "/queryz?trace=ffffffffffffffffffffffffffffffff");
    ASSERT_TRUE(miss.ok());
    EXPECT_EQ(miss->status, 404);
  }
}

// A shard must answer normally when the trace header on the wire is
// garbage or duplicated — a bad peer cannot poison or crash the shard.
TEST(TracingHttpTest, ShardEndpointHealsMalformedAndDuplicateTraceParams) {
  World world = MakeWorld(3201);
  HttpCluster hc = MakeHttpCluster(world, 1);
  int port = hc.shard_servers[0]->port();
  std::string base =
      "/shard/evidence?q=" + cluster::UrlEncode(FirstTopicQuery(world));

  // Malformed header: served under a fresh root, never an error.
  auto garbage = obs::HttpGet("127.0.0.1", port, base + "&trace=not-a-trace");
  ASSERT_TRUE(garbage.ok()) << garbage.status().ToString();
  ASSERT_EQ(garbage->status, 200);
  auto healed = cluster::DecodeShardEvidence(garbage->body);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed->trace.valid());

  // Duplicate trace params: the first one wins (and is echoed back).
  obs::TraceContext first = obs::TraceContext::NewRoot();
  obs::TraceContext second = obs::TraceContext::NewRoot();
  auto dup = obs::HttpGet("127.0.0.1", port,
                          base + "&trace=" + first.ToHeader() +
                              "&trace=" + second.ToHeader());
  ASSERT_TRUE(dup.ok());
  ASSERT_EQ(dup->status, 200);
  auto echoed = cluster::DecodeShardEvidence(dup->body);
  ASSERT_TRUE(echoed.ok());
  EXPECT_TRUE(echoed->trace.SameTrace(first));
  EXPECT_FALSE(echoed->trace.SameTrace(second));
}

// ------------------------------------------- profile stitching on faults --

TEST(TracingFaultTest, DeadShardKeepsItsLaneWithErrorDetail) {
  World world = MakeWorld(3301);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = false;
  FaultyCluster fc = MakeFaultyCluster(world, 4, ro);
  fc.faults[2]->set_fail(true);

  auto routed = fc.router->Query({FirstTopicQuery(world)});
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_TRUE(routed->degraded);

  auto profile = fc.router->slow_queries().Find(routed->trace.TraceIdHex());
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->outcome, "degraded");
  EXPECT_EQ(profile->shards_answered, 3u);
  ASSERT_EQ(profile->lanes.size(), 4u);  // the dead shard does not vanish
  const obs::ProfileLane& dead = profile->lanes[2];
  EXPECT_EQ(dead.name, "shard-2");
  EXPECT_NE(dead.annotation.find("failed:"), std::string::npos);
  EXPECT_NE(dead.annotation.find("injected fault"), std::string::npos);
  ASSERT_EQ(dead.attempts.size(), 1u);
  EXPECT_EQ(dead.attempts[0].outcome, "error");
  EXPECT_NE(dead.attempts[0].detail.find("injected fault on shard-2"),
            std::string::npos);
  EXPECT_FALSE(dead.attempts[0].won);
  EXPECT_FALSE(dead.attempts[0].has_breakdown);
  for (size_t i : {0u, 1u, 3u}) {
    EXPECT_EQ(profile->lanes[i].attempts[0].outcome, "ok");
    EXPECT_TRUE(profile->lanes[i].attempts[0].has_breakdown);
  }

  // Satellite: the health tracker now remembers *why* the shard failed,
  // and /statusz's table shows it.
  EXPECT_NE(fc.router->health().StatusOf(2).last_error.find("injected fault"),
            std::string::npos);
  EXPECT_NE(fc.router->health().RenderTable().find("injected fault"),
            std::string::npos);
}

TEST(TracingFaultTest, TimedOutShardLaneIsOutstandingNotAbsent) {
  World world = MakeWorld(3401);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = false;
  FaultyCluster fc = MakeFaultyCluster(world, 2, ro);
  ASSERT_TRUE(fc.router->Query({FirstTopicQuery(world)}).ok());  // warm

  fc.faults[0]->set_sleep_first_ms(400);
  serving::QueryRequest request;
  request.query = FirstTopicQuery(world);
  request.deadline_ms = 120;
  auto routed = fc.router->Query(request);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_TRUE(routed->degraded);

  auto profile = fc.router->slow_queries().Find(routed->trace.TraceIdHex());
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->outcome, "degraded");
  EXPECT_DOUBLE_EQ(profile->deadline_ms, 120.0);
  ASSERT_EQ(profile->lanes.size(), 2u);
  const obs::ProfileLane& late = profile->lanes[0];
  EXPECT_EQ(late.annotation, "no answer before deadline");
  ASSERT_GE(late.attempts.size(), 1u);
  EXPECT_EQ(late.attempts[0].outcome, "outstanding");
  EXPECT_FALSE(late.attempts[0].won);
  EXPECT_EQ(profile->lanes[1].attempts[0].outcome, "ok");
  // The Chrome export renders the outstanding attempt to the end of the
  // query, so the lost time stays visible.
  EXPECT_NE(profile->ExportChromeJson().find("\"outcome\":\"outstanding\""),
            std::string::npos);
}

TEST(TracingFaultTest, HedgeWinnerIsAttributedInTheLane) {
  World world = MakeWorld(3501);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = true;
  ro.hedge_warmup = 8;
  ro.hedge_min_ms = 5.0;
  ro.hedge_percentile = 95;
  FaultyCluster fc = MakeFaultyCluster(world, 2, ro);
  const std::string query = FirstTopicQuery(world);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fc.router->Query({query}).ok());
  }

  fc.faults[0]->set_sleep_first_ms(500);
  auto routed = fc.router->Query({query});
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ASSERT_GE(routed->hedges_fired, 1u);

  auto profile = fc.router->slow_queries().Find(routed->trace.TraceIdHex());
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->hedges_fired, routed->hedges_fired);
  const obs::ProfileLane& hedged = profile->lanes[0];
  ASSERT_EQ(hedged.attempts.size(), 2u);
  EXPECT_FALSE(hedged.attempts[0].hedge);
  EXPECT_TRUE(hedged.attempts[1].hedge);
  EXPECT_GT(hedged.attempts[1].start_ms, 0.0);
  // The hedge finished first and its evidence won the lane; the sleeping
  // primary either resolved later (not won) or was still outstanding.
  EXPECT_TRUE(hedged.attempts[1].won);
  EXPECT_EQ(hedged.attempts[1].outcome, "ok");
  EXPECT_FALSE(hedged.attempts[0].won);
  // Both attempts of the lane appear in the Chrome export, one per name.
  std::string json = profile->ExportChromeJson();
  EXPECT_NE(json.find("\"name\":\"hedge\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"attempt\""), std::string::npos);
}

// The p99 exemplar: the latency histogram links its buckets to the trace
// ids of actual queries, so /varz points straight at /queryz.
TEST(TracingFaultTest, LatencyHistogramCarriesTraceExemplars) {
  World world = MakeWorld(3601);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = false;
  FaultyCluster fc = MakeFaultyCluster(world, 2, ro);
  auto routed = fc.router->Query({FirstTopicQuery(world)});
  ASSERT_TRUE(routed.ok());
  std::string json = obs::MetricsRegistry::Global().ExportJson();
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":\"" + routed->trace.TraceIdHex() + "\""),
            std::string::npos);
}

// --------------------------------------------------- concurrency stress ----

// TSan coverage (ctest -L serving under -DESHARP_SANITIZE=thread): traced
// queries, fault flips, and /queryz-style readers all at once. Profile
// recording, the slow-query log, the health tracker's error strings and
// the tracer ring must stay coherent.
TEST(TracingStressTest, ConcurrentTracedQueriesAndReadersStayCoherent) {
  World world = MakeWorld(3701);
  obs::Tracer tracer;
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = true;
  ro.hedge_warmup = 8;
  ro.hedge_min_ms = 1.0;
  ro.tracer = &tracer;
  ro.slow_query_log.top_k = 8;
  ro.slow_query_log.recent = 8;
  FaultyCluster fc = MakeFaultyCluster(world, 4, ro);
  const std::string query = FirstTopicQuery(world);

  std::atomic<bool> stop{false};
  std::atomic<size_t> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t]() {
      for (int i = 0; i < 40; ++i) {
        serving::QueryRequest request;
        request.query = query;
        request.deadline_ms = (i % 4 == 0) ? 50 : -1;
        if (i % 3 == t % 3) request.trace = obs::TraceContext::NewRoot();
        auto routed = fc.router->Query(request);
        if (routed.ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
          if (request.trace.valid()) {
            EXPECT_TRUE(routed->trace.SameTrace(request.trace));
          }
        }
      }
    });
  }
  std::thread flipper([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      fc.faults[3]->set_fail(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      fc.faults[3]->set_fail(false);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& p : fc.router->slow_queries().TopK()) {
        EXPECT_TRUE(p->trace.valid());
        (void)p->ExportChromeJson();
      }
      (void)fc.router->slow_queries().RenderJson();
      (void)fc.router->health().RenderTable();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& t : clients) t.join();
  stop.store(true);
  flipper.join();
  reader.join();

  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(fc.router->slow_queries().recorded(), 0u);
  // Retention stayed bounded under the churn.
  EXPECT_LE(fc.router->slow_queries().TopK().size(), 8u);
  EXPECT_LE(fc.router->slow_queries().Recent().size(), 8u);
}

}  // namespace
}  // namespace esharp
