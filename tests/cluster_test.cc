// The sharded-serving suite (ctest -L cluster): the router's scatter-
// gather + k-way merge + single rank step must be *bit-identical* to an
// unsharded engine over the union corpus, across partition counts — the
// PR's acceptance criterion — and the failure modes must degrade instead
// of failing: a dead shard yields annotated partial results, a slow shard
// triggers a hedge, lost quorum flips /readyz. The stress test at the
// bottom joins the serving label's TSan runs.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/health.h"
#include "cluster/introspect.h"
#include "cluster/merge.h"
#include "cluster/partition.h"
#include "cluster/router.h"
#include "cluster/shard.h"
#include "cluster/transport_http.h"
#include "community/store.h"
#include "esharp/pipeline.h"
#include "expert/detector.h"
#include "microblog/corpus.h"
#include "microblog/generator.h"
#include "obs/debugz.h"
#include "querylog/generator.h"
#include "serving/engine.h"

namespace esharp {
namespace {

using expert::CandidateEvidence;
using expert::RankedExpert;

// ------------------------------------------------------------- helpers ----

void ExpectSameExperts(const std::vector<RankedExpert>& a,
                       const std::vector<RankedExpert>& b,
                       const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(context + " expert #" + std::to_string(i));
    EXPECT_EQ(a[i].user, b[i].user);
    // Exact equality on purpose: sharding must not perturb a single bit
    // of the ranking arithmetic.
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].z_topical_signal, b[i].z_topical_signal);
    EXPECT_EQ(a[i].z_mention_impact, b[i].z_mention_impact);
    EXPECT_EQ(a[i].z_retweet_impact, b[i].z_retweet_impact);
    EXPECT_EQ(a[i].z_conversation, b[i].z_conversation);
    EXPECT_EQ(a[i].z_hashtag, b[i].z_hashtag);
    EXPECT_EQ(a[i].z_followers, b[i].z_followers);
  }
}

/// One randomized world: universe -> query log -> offline pipeline ->
/// corpus, small enough that a test builds several.
struct World {
  querylog::TopicUniverse universe;
  core::OfflineArtifacts artifacts;
  microblog::TweetCorpus corpus;
};

World MakeWorld(uint64_t seed) {
  querylog::UniverseOptions uo;
  uo.num_categories = 2;
  uo.domains_per_category = 6;
  uo.seed = seed;
  querylog::TopicUniverse universe = *querylog::TopicUniverse::Generate(uo);

  querylog::GeneratorOptions go;
  go.seed = seed + 1;
  go.head_impressions = 12000;
  querylog::GeneratedLog generated = *GenerateQueryLog(universe, go);

  microblog::CorpusOptions co;
  co.seed = seed + 2;
  co.casual_users = 180;
  co.spam_users = 15;
  microblog::TweetCorpus corpus = *GenerateCorpus(universe, co);

  core::OfflineOptions offline;
  offline.extraction.min_similarity = 0.15;
  offline.corpus = &corpus;
  core::OfflineArtifacts artifacts =
      *RunOfflinePipeline(generated.log, offline);

  return World{std::move(universe), std::move(artifacts), std::move(corpus)};
}

std::vector<std::string> QueryMix(const World& world) {
  std::vector<std::string> queries;
  for (const querylog::TopicDomain& dom : world.universe.domains()) {
    if (!dom.terms.empty()) queries.push_back(dom.terms[0]);
    if (dom.terms.size() > 2) queries.push_back(dom.terms[2]);
  }
  queries.push_back("no such topic anywhere");
  if (!queries.empty() && !queries[0].empty()) {
    std::string upper = queries[0];
    for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
    queries.push_back(upper);
    queries.push_back(queries[0] + " " + queries[0]);
  }
  return queries;
}

serving::ServingOptions ShardEngineOptions() {
  serving::ServingOptions o;
  o.num_threads = 2;
  o.enable_cache = false;  // the evidence path never consults it anyway
  o.enable_single_flight = false;
  return o;
}

/// One in-process cluster: partitioned corpus, per-shard snapshot managers
/// + engines (each building its own TermEvidenceIndex over its partition),
/// and a router ranking on the union corpus. The shared store shared_ptr
/// guarantees identical expansion on every shard.
struct TestCluster {
  cluster::PartitionedCorpus partition;
  std::shared_ptr<const community::CommunityStore> store;
  std::vector<std::unique_ptr<serving::SnapshotManager>> managers;
  std::vector<std::unique_ptr<serving::ServingEngine>> engines;
  std::unique_ptr<expert::ExpertDetector> union_detector;
  std::unique_ptr<cluster::ClusterRouter> router;
};

TestCluster MakeCluster(const World& world, uint32_t num_shards,
                        cluster::RouterOptions router_options = {}) {
  TestCluster tc;
  tc.partition = cluster::PartitionCorpus(world.corpus, num_shards);
  tc.store = std::make_shared<const community::CommunityStore>(
      world.artifacts.store);
  std::vector<std::unique_ptr<cluster::ShardTransport>> transports;
  for (uint32_t s = 0; s < num_shards; ++s) {
    tc.managers.push_back(std::make_unique<serving::SnapshotManager>(
        tc.partition.shards[s].get()));
    tc.managers.back()->Publish(tc.store);
    tc.engines.push_back(std::make_unique<serving::ServingEngine>(
        tc.managers.back().get(), ShardEngineOptions()));
    transports.push_back(std::make_unique<cluster::InProcessShard>(
        "shard-" + std::to_string(s), tc.engines.back().get()));
  }
  tc.union_detector =
      std::make_unique<expert::ExpertDetector>(&world.corpus);
  tc.router = std::make_unique<cluster::ClusterRouter>(
      std::move(transports), tc.union_detector.get(), router_options);
  return tc;
}

/// Fault-injection transport: wraps a delegate and, per the knobs, fails,
/// sleeps, or passes through. All knobs are live (atomics) so tests flip
/// them mid-traffic.
class FaultShard final : public cluster::ShardTransport {
 public:
  FaultShard(std::string name,
             std::unique_ptr<cluster::ShardTransport> delegate)
      : name_(std::move(name)), delegate_(std::move(delegate)) {}

  const std::string& name() const override { return name_; }

  Result<cluster::ShardEvidence> Collect(
      const cluster::ShardRequest& request) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    double sleep_ms = sleep_first_ms_.exchange(0.0);
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    if (fail_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("injected fault on ", name_);
    }
    if (timeout_.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("injected timeout on ", name_);
    }
    return delegate_->Collect(request);
  }

  uint64_t VersionHint() const override { return delegate_->VersionHint(); }

  void set_fail(bool fail) { fail_.store(fail, std::memory_order_relaxed); }
  void set_timeout(bool t) { timeout_.store(t, std::memory_order_relaxed); }
  /// The *next* Collect (only) sleeps this long before proceeding.
  void set_sleep_first_ms(double ms) { sleep_first_ms_.store(ms); }
  size_t calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  std::string name_;
  std::unique_ptr<cluster::ShardTransport> delegate_;
  std::atomic<bool> fail_{false};
  std::atomic<bool> timeout_{false};
  std::atomic<double> sleep_first_ms_{0.0};
  std::atomic<size_t> calls_{0};
};

/// MakeCluster variant whose transports are FaultShards; returns the raw
/// pointers so tests can inject faults after handing ownership over.
struct FaultyCluster {
  TestCluster base;
  std::vector<FaultShard*> faults;
};

FaultyCluster MakeFaultyCluster(const World& world, uint32_t num_shards,
                                cluster::RouterOptions router_options = {}) {
  FaultyCluster fc;
  TestCluster& tc = fc.base;
  tc.partition = cluster::PartitionCorpus(world.corpus, num_shards);
  tc.store = std::make_shared<const community::CommunityStore>(
      world.artifacts.store);
  std::vector<std::unique_ptr<cluster::ShardTransport>> transports;
  for (uint32_t s = 0; s < num_shards; ++s) {
    tc.managers.push_back(std::make_unique<serving::SnapshotManager>(
        tc.partition.shards[s].get()));
    tc.managers.back()->Publish(tc.store);
    tc.engines.push_back(std::make_unique<serving::ServingEngine>(
        tc.managers.back().get(), ShardEngineOptions()));
    std::string name = "shard-" + std::to_string(s);
    auto fault = std::make_unique<FaultShard>(
        name, std::make_unique<cluster::InProcessShard>(
                  name, tc.engines.back().get()));
    fc.faults.push_back(fault.get());
    transports.push_back(std::move(fault));
  }
  tc.union_detector =
      std::make_unique<expert::ExpertDetector>(&world.corpus);
  tc.router = std::make_unique<cluster::ClusterRouter>(
      std::move(transports), tc.union_detector.get(), router_options);
  return fc;
}

std::string FirstTopicQuery(const World& world) {
  for (const querylog::TopicDomain& dom : world.universe.domains()) {
    if (!dom.terms.empty()) return dom.terms[0];
  }
  return "tennis";
}

// ------------------------------------------------------ partition layer ----

TEST(PartitionTest, CoversDisjointlyAndSumsPerUserTotals) {
  World world = MakeWorld(1201);
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards " + std::to_string(n));
    cluster::PartitionedCorpus partition =
        cluster::PartitionCorpus(world.corpus, n);
    ASSERT_EQ(partition.num_shards(), n);
    size_t total_tweets = 0;
    for (const auto& shard : partition.shards) {
      ASSERT_EQ(shard->num_users(), world.corpus.num_users());
      total_tweets += shard->num_tweets();
    }
    // Tweets partition (disjoint + covering): counts sum exactly.
    EXPECT_EQ(total_tweets, world.corpus.num_tweets());
    // Per-user denominators sum exactly — the integer backbone of the
    // rank-equivalence argument.
    for (microblog::UserId u = 0; u < world.corpus.num_users(); ++u) {
      uint64_t tweets = 0, mentions = 0, retweets = 0;
      for (const auto& shard : partition.shards) {
        tweets += shard->TweetsByUser(u);
        mentions += shard->MentionsOfUser(u);
        retweets += shard->RetweetsOfUser(u);
      }
      ASSERT_EQ(tweets, world.corpus.TweetsByUser(u)) << "user " << u;
      ASSERT_EQ(mentions, world.corpus.MentionsOfUser(u)) << "user " << u;
      ASSERT_EQ(retweets, world.corpus.RetweetsOfUser(u)) << "user " << u;
    }
  }
}

TEST(PartitionTest, IsDeterministic) {
  World world = MakeWorld(1301);
  cluster::PartitionedCorpus a = cluster::PartitionCorpus(world.corpus, 4);
  cluster::PartitionedCorpus b = cluster::PartitionCorpus(world.corpus, 4);
  for (size_t s = 0; s < 4; ++s) {
    ASSERT_EQ(a.shards[s]->num_tweets(), b.shards[s]->num_tweets());
    for (uint32_t t = 0; t < a.shards[s]->num_tweets(); ++t) {
      ASSERT_EQ(a.shards[s]->tweet(t).text, b.shards[s]->tweet(t).text);
    }
  }
}

// ------------------------------------------- randomized rank equivalence --

TEST(ClusterTest, ShardedRankingBitIdenticalToUnshardedReference) {
  const uint64_t seeds[] = {1401, 1507};
  for (uint64_t seed : seeds) {
    World world = MakeWorld(seed);
    // Unsharded reference: one engine over the union corpus.
    auto store = std::make_shared<const community::CommunityStore>(
        world.artifacts.store);
    serving::SnapshotManager ref_manager(&world.corpus);
    ref_manager.Publish(store);
    serving::ServingEngine ref_engine(&ref_manager, ShardEngineOptions());

    std::vector<std::string> queries = QueryMix(world);
    for (uint32_t n : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " shards " +
                   std::to_string(n));
      cluster::RouterOptions ro;
      ro.enable_cache = false;
      ro.enable_hedging = false;
      TestCluster tc = MakeCluster(world, n, ro);
      for (const std::string& q : queries) {
        auto ref = ref_engine.Query({q});
        auto routed = tc.router->Query({q});
        ASSERT_TRUE(ref.ok()) << q << ": " << ref.status().ToString();
        ASSERT_TRUE(routed.ok()) << q << ": " << routed.status().ToString();
        EXPECT_EQ(routed->shards_answered, n);
        EXPECT_FALSE(routed->degraded);
        ExpectSameExperts(routed->experts, ref->experts,
                          "query '" + q + "'");
      }
    }
  }
}

// ------------------------------------------------------- fault injection --

TEST(ClusterTest, DeadShardDegradesToAnnotatedPartialResults) {
  World world = MakeWorld(1601);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = false;
  FaultyCluster fc = MakeFaultyCluster(world, 4, ro);
  const std::string query = FirstTopicQuery(world);

  fc.faults[2]->set_fail(true);
  for (int i = 0; i < 3; ++i) {
    auto routed = fc.base.router->Query({query});
    // The acceptance criterion: partial results, annotated, no failure.
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    EXPECT_TRUE(routed->degraded);
    EXPECT_EQ(routed->shards_answered, 3u);
    EXPECT_EQ(routed->shards_total, 4u);
  }
  // Three consecutive failures (the default threshold) = kDown.
  EXPECT_EQ(fc.base.router->health().StateOf(2), cluster::ShardState::kDown);
  EXPECT_EQ(fc.base.router->health().healthy_shards(), 3u);

  // Recovery: the next success flips the shard straight back to healthy
  // and answers become complete again.
  fc.faults[2]->set_fail(false);
  auto routed = fc.base.router->Query({query});
  ASSERT_TRUE(routed.ok());
  EXPECT_FALSE(routed->degraded);
  EXPECT_EQ(routed->shards_answered, 4u);
  EXPECT_EQ(fc.base.router->health().StateOf(2),
            cluster::ShardState::kHealthy);
}

TEST(ClusterTest, ShardTimeoutAlsoDegrades) {
  World world = MakeWorld(1701);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = false;
  FaultyCluster fc = MakeFaultyCluster(world, 2, ro);
  fc.faults[1]->set_timeout(true);
  auto routed = fc.base.router->Query({FirstTopicQuery(world)});
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_TRUE(routed->degraded);
  EXPECT_EQ(routed->shards_answered, 1u);
}

TEST(ClusterTest, AllShardsDownFailsTheQuery) {
  World world = MakeWorld(1801);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = false;
  FaultyCluster fc = MakeFaultyCluster(world, 2, ro);
  fc.faults[0]->set_fail(true);
  fc.faults[1]->set_fail(true);
  auto routed = fc.base.router->Query({FirstTopicQuery(world)});
  EXPECT_FALSE(routed.ok());
  EXPECT_TRUE(routed.status().IsUnavailable())
      << routed.status().ToString();
  EXPECT_GE(fc.base.router->metrics().Report().errors, 1u);
}

TEST(ClusterTest, MinShardsAnsweredEnforcesQuorumPerQuery) {
  World world = MakeWorld(1802);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = false;
  ro.min_shards_answered = 4;  // all-or-nothing
  FaultyCluster fc = MakeFaultyCluster(world, 4, ro);
  fc.faults[1]->set_fail(true);
  auto routed = fc.base.router->Query({FirstTopicQuery(world)});
  EXPECT_FALSE(routed.ok());
}

TEST(ClusterTest, SlowShardWithDeadlineYieldsPartialAnswer) {
  World world = MakeWorld(1901);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = false;
  FaultyCluster fc = MakeFaultyCluster(world, 2, ro);
  // Warm the engines once so the slow path below is the injected sleep,
  // not first-touch costs.
  ASSERT_TRUE(fc.base.router->Query({FirstTopicQuery(world)}).ok());

  fc.faults[0]->set_sleep_first_ms(400);
  serving::QueryRequest request;
  request.query = FirstTopicQuery(world);
  request.deadline_ms = 120;
  auto routed = fc.base.router->Query(request);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_TRUE(routed->degraded);
  EXPECT_EQ(routed->shards_answered, 1u);
  EXPECT_LT(routed->total_ms, 390.0);  // did not wait out the sleeper
}

TEST(ClusterTest, HedgeFiresForSlowShardAndFirstFinisherWins) {
  World world = MakeWorld(2001);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = true;
  ro.hedge_warmup = 8;
  ro.hedge_min_ms = 5.0;
  ro.hedge_percentile = 95;
  FaultyCluster fc = MakeFaultyCluster(world, 2, ro);
  const std::string query = FirstTopicQuery(world);

  // Warm the latency tracker past the hedge_warmup gate with fast
  // requests; the trigger then sits near their p95 (clamped to 5 ms).
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fc.base.router->Query({query}).ok());
  }
  ASSERT_GE(fc.base.router->health().total_samples(), 8u);

  // One slow primary: the sleep flag clears after the first Collect, so
  // the hedge (second attempt on the same transport) runs full speed.
  size_t calls_before = fc.faults[0]->calls();
  fc.faults[0]->set_sleep_first_ms(500);
  auto routed = fc.base.router->Query({query});
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_GE(routed->hedges_fired, 1u);
  EXPECT_EQ(routed->shards_answered, 2u);
  EXPECT_FALSE(routed->degraded);
  EXPECT_LT(routed->total_ms, 450.0);  // the hedge answered, not the sleeper
  EXPECT_GE(fc.faults[0]->calls(), calls_before + 2);  // primary + hedge
  EXPECT_GE(fc.base.router->health().StatusOf(0).hedges, 1u);
}

// ------------------------------------------------------- caching + swaps --

TEST(ClusterTest, CacheHitsAndInvalidatesWhenAnyShardPublishes) {
  World world = MakeWorld(2101);
  cluster::RouterOptions ro;
  ro.enable_hedging = false;
  TestCluster tc = MakeCluster(world, 2, ro);
  const std::string query = FirstTopicQuery(world);

  auto first = tc.router->Query({query});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  auto second = tc.router->Query({query});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  ExpectSameExperts(second->experts, first->experts, "cached");

  // A publish on one shard changes its version hint, hence the combined
  // cluster version, hence the cached entry fails validation.
  uint64_t before = tc.router->ClusterVersion();
  tc.managers[1]->Publish(tc.store);
  EXPECT_NE(tc.router->ClusterVersion(), before);
  auto third = tc.router->Query({query});
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->from_cache);
}

TEST(ClusterTest, DegradedAnswersAreNeverCached) {
  World world = MakeWorld(2201);
  cluster::RouterOptions ro;
  ro.enable_hedging = false;
  FaultyCluster fc = MakeFaultyCluster(world, 2, ro);
  const std::string query = FirstTopicQuery(world);

  fc.faults[0]->set_fail(true);
  auto degraded = fc.base.router->Query({query});
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);

  // Once the shard recovers, the next answer must be computed fresh (and
  // complete), not replayed from a partial cache entry.
  fc.faults[0]->set_fail(false);
  auto recovered = fc.base.router->Query({query});
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->from_cache);
  EXPECT_FALSE(recovered->degraded);
  auto cached = fc.base.router->Query({query});
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);
}

// --------------------------------------------------------- introspection --

TEST(ClusterTest, QuorumReadinessTracksShardHealth) {
  World world = MakeWorld(2301);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = false;
  FaultyCluster fc = MakeFaultyCluster(world, 4, ro);
  obs::Probe probe = cluster::ClusterQuorumReadiness(fc.base.router.get());
  EXPECT_TRUE(probe().ok);

  const std::string query = FirstTopicQuery(world);
  // One shard down (3 failures): majority quorum (3 of 4) still holds,
  // /readyz stays green while answers are degraded.
  fc.faults[0]->set_fail(true);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(fc.base.router->Query({query}).ok());
  obs::ProbeResult one_down = probe();
  EXPECT_TRUE(one_down.ok);
  EXPECT_NE(one_down.detail.find("degraded"), std::string::npos);

  // Second shard down: quorum lost, /readyz flips.
  fc.faults[1]->set_fail(true);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(fc.base.router->Query({query}).ok());
  obs::ProbeResult two_down = probe();
  EXPECT_FALSE(two_down.ok);
  EXPECT_NE(two_down.detail.find("quorum lost"), std::string::npos);
}

TEST(ClusterTest, StatuszShardTableAndReadyzOverHttp) {
  World world = MakeWorld(2401);
  cluster::RouterOptions ro;
  ro.enable_cache = false;
  ro.enable_hedging = false;
  FaultyCluster fc = MakeFaultyCluster(world, 2, ro);
  ASSERT_TRUE(fc.base.router->Query({FirstTopicQuery(world)}).ok());

  obs::DebugServer server;
  cluster::ClusterIntrospectionOptions io;
  io.build_info = "cluster_test";
  cluster::MountClusterEndpoints(&server, fc.base.router.get(), io);
  ASSERT_TRUE(server.Start().ok());

  auto statusz = obs::HttpGet("127.0.0.1", server.port(), "/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(statusz->status, 200);
  EXPECT_NE(statusz->body.find("shard-0"), std::string::npos);
  EXPECT_NE(statusz->body.find("shard-1"), std::string::npos);
  EXPECT_NE(statusz->body.find("healthy"), std::string::npos);

  auto ready = obs::HttpGet("127.0.0.1", server.port(), "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status, 200);

  // Lose quorum (1 of 2 < majority 2): /readyz must flip to 503.
  fc.faults[1]->set_fail(true);
  const std::string query = FirstTopicQuery(world);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(fc.base.router->Query({query}).ok());
  auto not_ready = obs::HttpGet("127.0.0.1", server.port(), "/readyz");
  ASSERT_TRUE(not_ready.ok());
  EXPECT_EQ(not_ready->status, 503);
  server.Stop();
}

// ---------------------------------------------------------- HTTP transport --

TEST(ClusterTest, HttpTransportMatchesInProcessBitForBit) {
  World world = MakeWorld(2501);
  auto store = std::make_shared<const community::CommunityStore>(
      world.artifacts.store);
  serving::SnapshotManager manager(&world.corpus);
  manager.Publish(store);
  serving::ServingEngine engine(&manager, ShardEngineOptions());

  obs::DebugServer server;
  cluster::MountShardEndpoint(&server, &engine);
  ASSERT_TRUE(server.Start().ok());

  cluster::InProcessShard local("local", &engine);
  cluster::HttpShardTransport remote("remote", "127.0.0.1", server.port());
  EXPECT_EQ(remote.VersionHint(), 0u);  // no contact yet

  std::vector<std::string> queries = QueryMix(world);
  queries.push_back(FirstTopicQuery(world) + " extra words");
  for (const std::string& q : queries) {
    SCOPED_TRACE("query '" + q + "'");
    cluster::ShardRequest request;
    request.query = q;
    auto a = local.Collect(request);
    auto b = remote.Collect(request);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a->evidence.size(), b->evidence.size());
    EXPECT_EQ(a->snapshot_version, b->snapshot_version);
    EXPECT_EQ(a->terms, b->terms);
    for (size_t i = 0; i < a->evidence.size(); ++i) {
      EXPECT_EQ(a->evidence[i].user, b->evidence[i].user);
      EXPECT_EQ(a->evidence[i].is_author, b->evidence[i].is_author);
      EXPECT_EQ(a->evidence[i].is_mentioned, b->evidence[i].is_mentioned);
      EXPECT_EQ(a->evidence[i].tweets_on_topic,
                b->evidence[i].tweets_on_topic);
      EXPECT_EQ(a->evidence[i].mentions_on_topic,
                b->evidence[i].mentions_on_topic);
      EXPECT_EQ(a->evidence[i].retweets_on_topic,
                b->evidence[i].retweets_on_topic);
      EXPECT_EQ(a->evidence[i].conversational_on_topic,
                b->evidence[i].conversational_on_topic);
      EXPECT_EQ(a->evidence[i].hashtag_on_topic,
                b->evidence[i].hashtag_on_topic);
    }
  }
  EXPECT_EQ(remote.VersionHint(), engine.snapshot_version());

  // Error mapping: empty query -> 400 -> InvalidArgument.
  cluster::ShardRequest empty;
  auto rejected = remote.Collect(empty);
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument())
      << rejected.status().ToString();
  server.Stop();

  // Dead endpoint: connection refused resolves as Unavailable, not a hang.
  auto dead = remote.Collect({FirstTopicQuery(world), 0});
  EXPECT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsUnavailable()) << dead.status().ToString();
}

TEST(ClusterTest, WireFormatRoundTripsExactly) {
  cluster::ShardEvidence evidence;
  evidence.snapshot_version = 0xFFFFFFFFFFFFFFFFULL;
  evidence.terms = 17;
  evidence.shard_ms = 12.345678;
  CandidateEvidence a;
  a.user = 0;
  a.is_author = true;
  a.tweets_on_topic = 0xFFFFFFFFFFFFFFFFULL;  // extreme counts survive
  CandidateEvidence b;
  b.user = 4294967295u;
  b.is_mentioned = true;
  b.mentions_on_topic = 1;
  b.retweets_on_topic = 2;
  b.conversational_on_topic = 3;
  b.hashtag_on_topic = 4;
  evidence.evidence = {a, b};

  auto decoded =
      cluster::DecodeShardEvidence(cluster::EncodeShardEvidence(evidence));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->snapshot_version, evidence.snapshot_version);
  EXPECT_EQ(decoded->terms, evidence.terms);
  ASSERT_EQ(decoded->evidence.size(), 2u);
  EXPECT_EQ(decoded->evidence[0].user, a.user);
  EXPECT_EQ(decoded->evidence[0].is_author, a.is_author);
  EXPECT_EQ(decoded->evidence[0].tweets_on_topic, a.tweets_on_topic);
  EXPECT_EQ(decoded->evidence[1].user, b.user);
  EXPECT_EQ(decoded->evidence[1].is_mentioned, b.is_mentioned);
  EXPECT_EQ(decoded->evidence[1].hashtag_on_topic, b.hashtag_on_topic);

  EXPECT_FALSE(cluster::DecodeShardEvidence("garbage").ok());
  EXPECT_FALSE(
      cluster::DecodeShardEvidence("version=1 terms=1 candidates=2 ms=0\n"
                                   "1 0 0 0 0 0 0\n")
          .ok());  // truncated
}

TEST(ClusterTest, UrlEncodeEscapesReservedCharacters) {
  EXPECT_EQ(cluster::UrlEncode("tennis"), "tennis");
  EXPECT_EQ(cluster::UrlEncode("two words"), "two%20words");
  EXPECT_EQ(cluster::UrlEncode("a&b=c%"), "a%26b%3Dc%25");
}

// ------------------------------------------------------------ TSan stress --

TEST(ClusterTest, ConcurrentQueriesPublishesAndFaultsStayCoherent) {
  World world = MakeWorld(2601);
  cluster::RouterOptions ro;
  ro.enable_hedging = true;
  ro.hedge_warmup = 16;
  ro.hedge_min_ms = 0.5;
  FaultyCluster fc = MakeFaultyCluster(world, 4, ro);
  std::vector<std::string> queries = QueryMix(world);

  std::atomic<bool> stop{false};
  std::atomic<size_t> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 60; ++i) {
        const std::string& q = queries[(t * 13 + i) % queries.size()];
        auto result = fc.base.router->Query({q});
        if (result.ok()) served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread publisher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      fc.base.managers[1]->Publish(fc.base.store);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::thread fault_flipper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      fc.faults[3]->set_fail(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      fc.faults[3]->set_fail(false);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  publisher.join();
  fault_flipper.join();
  EXPECT_GT(served.load(), 0u);
  // Health invariants survived the churn.
  EXPECT_LE(fc.base.router->health().healthy_shards(), 4u);
  EXPECT_EQ(fc.base.router->health().num_shards(), 4u);
}

}  // namespace
}  // namespace esharp
