// Failure injection: errors raised deep inside operators, UDFs and
// generators must surface as Status at the API boundary — never crash,
// never silently corrupt — including on the parallel paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "graph/graph.h"
#include "sqlengine/parser.h"
#include "sqlengine/plan.h"

namespace esharp {
namespace {

using namespace esharp::sql;

Table SmallTable(size_t rows) {
  TableBuilder b({{"k", DataType::kInt64}, {"x", DataType::kDouble}});
  Rng rng(5);
  for (size_t i = 0; i < rows; ++i) {
    b.AddRow({Value::Int(static_cast<int64_t>(i % 10)),
              Value::Double(rng.NextDouble())});
  }
  return b.Build();
}

// ------------------------------------------------------------- UDF errors --

TEST(FailureTest, UdfErrorPropagatesFromSerialFilter) {
  Table t = SmallTable(20);
  ScalarUdf faulty = [](const std::vector<Value>&) -> Result<Value> {
    return Status::Internal("UDF exploded");
  };
  ExprPtr pred = Gt(Udf("boom", faulty, {Col("x")}), LitDouble(0));
  auto result = Filter(t, pred);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_NE(result.status().message().find("UDF exploded"),
            std::string::npos);
}

TEST(FailureTest, UdfErrorPropagatesFromParallelOperators) {
  Table t = SmallTable(500);
  std::atomic<int> calls{0};
  // Fails only on some rows, exercising the error path inside workers.
  ScalarUdf flaky = [&calls](const std::vector<Value>& args) -> Result<Value> {
    calls.fetch_add(1);
    if (args[0].double_value() > 0.95) {
      return Status::Internal("flaky row");
    }
    return args[0];
  };
  ThreadPool pool(4);
  ExecContext ctx{&pool, 8, nullptr, "test"};
  auto filtered = ParallelFilter(
      ctx, t, Gt(Udf("flaky", flaky, {Col("x")}), LitDouble(0)));
  ASSERT_FALSE(filtered.ok());
  EXPECT_TRUE(filtered.status().IsInternal());

  auto projected = ParallelProject(
      ctx, t, {{Udf("flaky", flaky, {Col("x")}), "y"}});
  ASSERT_FALSE(projected.ok());
}

TEST(FailureTest, UdfErrorPropagatesThroughParserAndExecutor) {
  Catalog cat;
  cat.Register("t", SmallTable(10));
  FunctionRegistry registry;
  registry.RegisterScalar("boom",
                          [](const std::vector<Value>&) -> Result<Value> {
                            return Status::Internal("kaboom");
                          });
  auto result = ExecuteSql("SELECT boom(x) AS y FROM t", cat, registry);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("kaboom"), std::string::npos);
}

// ------------------------------------------------------- Evaluation errors --

TEST(FailureTest, DivisionByZeroInsidePlanSurfaces) {
  Catalog cat;
  cat.Register("t", SmallTable(5));
  Executor exec;
  Plan plan = Plan::Scan("t").Select({{Div(Col("x"), LitInt(0)), "bad"}});
  auto result = exec.Execute(plan, cat);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("division by zero"),
            std::string::npos);
}

TEST(FailureTest, DeepPlanErrorDoesNotLoseTheRootCause) {
  Catalog cat;
  cat.Register("t", SmallTable(5));
  // A filter over a join over a missing table: the NotFound must bubble up
  // from three levels down.
  Plan plan = Plan::Scan("t")
                  .Join(Plan::Scan("ghost"), {"k"}, {"k"})
                  .Where(Gt(Col("x"), LitDouble(0)))
                  .GroupBy({"k"}, {CountStar("n")});
  Executor exec;
  auto result = exec.Execute(plan, cat);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_NE(result.status().message().find("ghost"), std::string::npos);
}

// ------------------------------------------------------------ Graph input --

TEST(FailureTest, GraphRejectsPathologicalWeights) {
  graph::Graph g;
  g.AddVertex("a");
  g.AddVertex("b");
  EXPECT_TRUE(g.AddEdge(0, 1, std::nan("")).IsInvalidArgument());
  EXPECT_TRUE(
      g.AddEdge(0, 1, std::numeric_limits<double>::infinity())
          .IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(0, 1, -0.0).IsInvalidArgument());
  EXPECT_EQ(g.num_edges(), 0u);
}

// ---------------------------------------------------------- Binding races --

TEST(FailureTest, SharedExpressionSurvivesRepeatedParallelBinding) {
  // The same expression object reused across many parallel executions with
  // the same schema: the fingerprinted Bind must stay correct.
  Table t = SmallTable(300);
  ThreadPool pool(4);
  ExecContext ctx{&pool, 8, nullptr, "test"};
  ExprPtr pred = Gt(Col("x"), LitDouble(0.5));
  size_t expected = Filter(t, pred)->num_rows();
  for (int round = 0; round < 20; ++round) {
    auto out = ParallelFilter(ctx, t, pred);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->num_rows(), expected);
  }
}

TEST(FailureTest, ExpressionRebindsAcrossDifferentSchemas) {
  // The same Col("x") bound against two schemas where x sits at different
  // ordinals must track the right column each time.
  TableBuilder b1({{"x", DataType::kDouble}, {"pad", DataType::kInt64}});
  b1.AddRow({Value::Double(1.5), Value::Int(0)});
  TableBuilder b2({{"pad", DataType::kInt64}, {"x", DataType::kDouble}});
  b2.AddRow({Value::Int(0), Value::Double(2.5)});
  ExprPtr x = Col("x");
  Table t1 = b1.Build(), t2 = b2.Build();
  ASSERT_TRUE(x->Bind(t1.schema()).ok());
  EXPECT_DOUBLE_EQ(x->Eval(t1.row(0))->double_value(), 1.5);
  ASSERT_TRUE(x->Bind(t2.schema()).ok());
  EXPECT_DOUBLE_EQ(x->Eval(t2.row(0))->double_value(), 2.5);
}

}  // namespace
}  // namespace esharp
