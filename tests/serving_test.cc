#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "esharp/pipeline.h"
#include "microblog/generator.h"
#include "obs/event_log.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "querylog/generator.h"
#include "serving/cache.h"
#include "serving/engine.h"
#include "serving/introspect.h"
#include "serving/metrics.h"
#include "serving/snapshot.h"

namespace esharp::serving {
namespace {

// ------------------------------------------------------- LatencyHistogram --

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
}

TEST(LatencyHistogramTest, PercentilesBracketObservations) {
  LatencyHistogram h;
  // 99 observations at 1ms, one at 1s: p50 ~ 1ms, p99+ reaches toward 1s.
  for (int i = 0; i < 99; ++i) h.Add(1e-3);
  h.Add(1.0);
  EXPECT_EQ(h.count(), 100u);
  // Geometric buckets guarantee ~16% relative error bounds.
  EXPECT_GT(h.Percentile(50), 0.5e-3);
  EXPECT_LT(h.Percentile(50), 2e-3);
  EXPECT_GT(h.Percentile(100), 0.5);
  EXPECT_NEAR(h.Max(), 1.0, 1e-12);
  EXPECT_NEAR(h.Mean(), (99 * 1e-3 + 1.0) / 100.0, 1e-9);
}

TEST(LatencyHistogramTest, PercentileIsMonotoneInP) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(1e-5 * i);
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(LatencyHistogramTest, MergeMatchesCombinedStream) {
  LatencyHistogram a, b, both;
  for (int i = 0; i < 50; ++i) {
    a.Add(2e-4);
    both.Add(2e-4);
  }
  for (int i = 0; i < 50; ++i) {
    b.Add(3e-2);
    both.Add(3e-2);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.Percentile(50), both.Percentile(50));
  EXPECT_EQ(a.Percentile(95), both.Percentile(95));
  EXPECT_NEAR(a.Mean(), both.Mean(), 1e-12);
}

TEST(LatencyHistogramTest, OutOfRangeValuesClampIntoEndBuckets) {
  LatencyHistogram h;
  h.Add(1e-9);   // below the 1us floor
  h.Add(1e6);    // above the 100s ceiling
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.Percentile(100), 10.0);
}

// ----------------------------------------------------- ShardedResultCache --

CachedResult MakeResult(double score, uint64_t version) {
  CachedResult r;
  expert::RankedExpert e;
  e.user = 7;
  e.score = score;
  r.experts.push_back(e);
  r.snapshot_version = version;
  return r;
}

TEST(ShardedResultCacheTest, PutThenGetHits) {
  ShardedResultCache cache;
  cache.Put("tennis", MakeResult(1.5, 1), /*now=*/0.0);
  auto hit = cache.Get("tennis", /*now=*/1.0, /*current_version=*/1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->experts.size(), 1u);
  EXPECT_DOUBLE_EQ(hit->experts[0].score, 1.5);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.Get("golf", 1.0, 1).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ShardedResultCacheTest, TtlExpiresEntries) {
  CacheOptions options;
  options.ttl_seconds = 10.0;
  ShardedResultCache cache(options);
  cache.Put("tennis", MakeResult(1.5, 1), /*now=*/0.0);
  EXPECT_TRUE(cache.Get("tennis", /*now=*/9.9, 1).has_value());
  EXPECT_FALSE(cache.Get("tennis", /*now=*/10.1, 1).has_value());
  EXPECT_EQ(cache.stats().expirations, 1u);
  // The expired entry is gone, not just hidden.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedResultCacheTest, SnapshotVersionMismatchIsAMiss) {
  ShardedResultCache cache;
  cache.Put("tennis", MakeResult(1.5, /*version=*/1), /*now=*/0.0);
  EXPECT_TRUE(cache.Get("tennis", 0.0, /*current_version=*/1).has_value());
  // After a hot swap the stored generation no longer matches.
  EXPECT_FALSE(cache.Get("tennis", 0.0, /*current_version=*/2).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedResultCacheTest, LruEvictsOldestWithinShard) {
  CacheOptions options;
  options.shards = 1;  // single shard makes eviction order deterministic
  options.capacity_per_shard = 2;
  options.ttl_seconds = 0;  // disabled
  ShardedResultCache cache(options);
  cache.Put("a", MakeResult(1, 1), 0.0);
  cache.Put("b", MakeResult(2, 1), 0.0);
  // Touch "a" so "b" becomes the LRU tail.
  EXPECT_TRUE(cache.Get("a", 0.0, 1).has_value());
  cache.Put("c", MakeResult(3, 1), 0.0);
  EXPECT_TRUE(cache.Get("a", 0.0, 1).has_value());
  EXPECT_FALSE(cache.Get("b", 0.0, 1).has_value());
  EXPECT_TRUE(cache.Get("c", 0.0, 1).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedResultCacheTest, InvalidateAllDropsEverything) {
  ShardedResultCache cache;
  cache.Put("a", MakeResult(1, 1), 0.0);
  cache.Put("b", MakeResult(2, 1), 0.0);
  EXPECT_EQ(cache.size(), 2u);
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a", 0.0, 1).has_value());
}

// -------------------------------------------------------- Serving fixture --

// One small world shared by every engine test (the offline pipeline is the
// expensive part; build it once).
class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    querylog::UniverseOptions uo;
    uo.num_categories = 2;
    uo.domains_per_category = 8;
    uo.seed = 501;
    universe_ = new querylog::TopicUniverse(
        *querylog::TopicUniverse::Generate(uo));

    querylog::GeneratorOptions go;
    go.seed = 502;
    go.head_impressions = 20000;
    generated_ = new querylog::GeneratedLog(*GenerateQueryLog(*universe_, go));

    core::OfflineOptions offline;
    offline.extraction.min_similarity = 0.15;
    artifacts_ = new core::OfflineArtifacts(
        *RunOfflinePipeline(generated_->log, offline));

    microblog::CorpusOptions co;
    co.seed = 503;
    co.casual_users = 200;
    co.spam_users = 20;
    corpus_ = new microblog::TweetCorpus(*GenerateCorpus(*universe_, co));

    // A query the baseline detector demonstrably answers, for the
    // no-empty-result assertions below.
    core::ESharp probe(&artifacts_->store, corpus_);
    for (const querylog::TopicDomain& dom : universe_->domains()) {
      auto experts = probe.FindExperts(dom.terms[0]);
      if (experts.ok() && !experts->empty()) {
        answered_query_ = new std::string(dom.terms[0]);
        break;
      }
    }
    ASSERT_NE(answered_query_, nullptr)
        << "no domain head term with experts in the test world";
  }

  static void TearDownTestSuite() {
    delete universe_;
    delete generated_;
    delete artifacts_;
    delete corpus_;
    delete answered_query_;
    answered_query_ = nullptr;
  }

  /// Fresh manager with the world's store published as generation 1.
  std::unique_ptr<SnapshotManager> NewManager() {
    auto manager = std::make_unique<SnapshotManager>(corpus_);
    manager->Publish(std::make_shared<const community::CommunityStore>(
        artifacts_->store));
    return manager;
  }

  static querylog::TopicUniverse* universe_;
  static querylog::GeneratedLog* generated_;
  static core::OfflineArtifacts* artifacts_;
  static microblog::TweetCorpus* corpus_;
  static std::string* answered_query_;
};

querylog::TopicUniverse* ServingTest::universe_ = nullptr;
querylog::GeneratedLog* ServingTest::generated_ = nullptr;
core::OfflineArtifacts* ServingTest::artifacts_ = nullptr;
microblog::TweetCorpus* ServingTest::corpus_ = nullptr;
std::string* ServingTest::answered_query_ = nullptr;

// -------------------------------------------------------- SnapshotManager --

TEST_F(ServingTest, PublishBumpsVersionAndAcquireSeesIt) {
  SnapshotManager manager(corpus_);
  EXPECT_EQ(manager.version(), 0u);
  EXPECT_EQ(manager.Acquire(), nullptr);
  uint64_t v1 = manager.Publish(artifacts_->store);
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(manager.version(), 1u);
  auto snap = manager.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_EQ(snap->store().num_communities(),
            artifacts_->store.num_communities());
  uint64_t v2 = manager.Publish(artifacts_->store);
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(manager.Acquire()->version(), 2u);
}

TEST_F(ServingTest, AcquiredSnapshotSurvivesSwap) {
  SnapshotManager manager(corpus_);
  manager.Publish(artifacts_->store);
  auto pinned = manager.Acquire();
  // Swap twice; the pinned generation must stay fully usable (its store
  // pointer and every Community* into it remain alive).
  manager.Publish(artifacts_->store);
  manager.Publish(artifacts_->store);
  EXPECT_EQ(pinned->version(), 1u);
  auto found = pinned->store().Find(*answered_query_);
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE((*found)->terms.empty());
}

TEST_F(ServingTest, FindCopyDetachesFromStoreLifetime) {
  community::Community copy;
  {
    community::CommunityStore store = artifacts_->store;
    auto found = store.FindCopy(*answered_query_);
    ASSERT_TRUE(found.ok());
    copy = *found;
  }  // store destroyed
  EXPECT_FALSE(copy.terms.empty());
  EXPECT_TRUE(artifacts_->store.FindCopy("no such term zz").status()
                  .IsNotFound());
}

// ---------------------------------------------------------- ServingEngine --

TEST_F(ServingTest, ServesSameExpertsAsDirectESharp) {
  auto manager = NewManager();
  ServingOptions options;
  options.num_threads = 2;
  ServingEngine engine(manager.get(), options);

  core::ESharp direct(&artifacts_->store, corpus_);
  auto expected = direct.FindExperts(*answered_query_);
  ASSERT_TRUE(expected.ok());

  auto response = engine.Query({*answered_query_});
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->from_cache);
  EXPECT_EQ(response->snapshot_version, 1u);
  ASSERT_EQ(response->experts.size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ(response->experts[i].user, (*expected)[i].user);
    EXPECT_DOUBLE_EQ(response->experts[i].score, (*expected)[i].score);
  }
}

TEST_F(ServingTest, QueryBeforeFirstPublishFailsPrecondition) {
  SnapshotManager manager(corpus_);
  ServingEngine engine(&manager);
  EXPECT_TRUE(engine.Query({"tennis"}).status().IsFailedPrecondition());
  EXPECT_TRUE(engine.LookupDomain("tennis").status().IsFailedPrecondition());
}

TEST_F(ServingTest, EmptyQueryIsInvalid) {
  auto manager = NewManager();
  ServingEngine engine(manager.get());
  EXPECT_TRUE(engine.Query({""}).status().IsInvalidArgument());
}

TEST_F(ServingTest, SecondIdenticalQueryHitsCache) {
  auto manager = NewManager();
  ServingEngine engine(manager.get());
  auto first = engine.Query({*answered_query_});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);

  auto second = engine.Query({*answered_query_});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->experts.size(), first->experts.size());
  EXPECT_GE(engine.cache_stats().hits, 1u);

  // Case-insensitive: "Tennis" and "tennis" share an entry (§5 lower-cases).
  std::string upper = *answered_query_;
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  auto third = engine.Query({upper});
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->from_cache);

  // bypass_cache forces a fresh execution.
  auto fourth = engine.Query({*answered_query_, /*deadline_ms=*/-1,
                              /*bypass_cache=*/true});
  ASSERT_TRUE(fourth.ok());
  EXPECT_FALSE(fourth->from_cache);
}

TEST_F(ServingTest, SwapInvalidatesCachedResults) {
  auto manager = NewManager();
  ServingEngine engine(manager.get());
  ASSERT_TRUE(engine.Query({*answered_query_}).ok());
  ASSERT_TRUE(engine.Query({*answered_query_})->from_cache);

  manager->Publish(artifacts_->store);  // hot swap to generation 2
  auto after = engine.Query({*answered_query_});
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->from_cache);  // stale entry dropped
  EXPECT_EQ(after->snapshot_version, 2u);
}

TEST_F(ServingTest, OverloadShedsWithUnavailable) {
  auto manager = NewManager();
  ServingOptions options;
  options.max_in_flight = 0;  // admit nothing: every request sheds
  ServingEngine engine(manager.get(), options);
  auto r = engine.Query({*answered_query_});
  EXPECT_TRUE(r.status().IsUnavailable());
  auto fut = engine.SubmitQuery({*answered_query_});
  EXPECT_TRUE(fut.get().status().IsUnavailable());
  EXPECT_EQ(engine.metrics().Report().shed, 2u);
  EXPECT_EQ(engine.metrics().Report().completed, 0u);
}

TEST_F(ServingTest, TinyDeadlineTimesOut) {
  auto manager = NewManager();
  ServingOptions options;
  options.enable_cache = false;  // force execution past the deadline check
  ServingEngine engine(manager.get(), options);
  QueryRequest request;
  request.query = *answered_query_;
  request.deadline_ms = 1e-6;  // elapses before the first checkpoint
  auto r = engine.Query(request);
  EXPECT_TRUE(r.status().IsDeadlineExceeded());
  EXPECT_GE(engine.metrics().Report().timeouts, 1u);
  // And without a deadline the same query succeeds.
  EXPECT_TRUE(engine.Query({*answered_query_}).ok());
}

TEST_F(ServingTest, SubmitQueryRunsOnPoolAndCompletes) {
  auto manager = NewManager();
  ServingOptions options;
  options.num_threads = 2;
  ServingEngine engine(manager.get(), options);
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine.SubmitQuery({*answered_query_}));
  }
  size_t ok = 0;
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->experts.empty());
    ++ok;
  }
  EXPECT_EQ(ok, 8u);
  EXPECT_EQ(engine.in_flight(), 0u);
  MetricsReport report = engine.metrics().Report();
  EXPECT_EQ(report.completed, 8u);
  // With the cache on, identical queries collapse: exactly one execution's
  // worth of stage time, the rest served from cache or deduplicated.
  EXPECT_GE(report.cache_hits + report.deduplicated, 7u);
}

TEST_F(ServingTest, SingleFlightCollapsesConcurrentIdenticalQueries) {
  auto manager = NewManager();
  std::atomic<int> leaders_entered{0};
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();

  ServingOptions options;
  options.enable_cache = false;  // leave single-flight as the only collapse
  options.num_threads = 4;
  options.max_in_flight = 64;
  // Pin the leader inside its execution until the test releases it, so the
  // followers deterministically find its flight in progress.
  options.execution_hook = [&](const std::string&) {
    leaders_entered.fetch_add(1);
    release_future.wait();
  };
  ServingEngine engine(manager.get(), options);

  std::vector<std::future<Result<QueryResponse>>> futures;
  futures.push_back(engine.SubmitQuery({*answered_query_}));
  while (leaders_entered.load() == 0) std::this_thread::yield();
  // The leader is now parked inside ExecuteUncached; these three become
  // followers (the cache is off, so they cannot be absorbed any other way).
  for (int i = 0; i < 3; ++i) {
    futures.push_back(engine.SubmitQuery({*answered_query_}));
  }
  // Give the followers time to reach the flight table, then unblock.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();

  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->experts.empty());
  }
  MetricsReport report = engine.metrics().Report();
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.deduplicated, 3u);
  // Exactly one execution ran the detector.
  EXPECT_EQ(leaders_entered.load(), 1);
}

// ------------------------------------------------- hot swap under load ----

// The acceptance-criterion test: N reader threads hammer the engine while
// the store is hot-swapped M times. No crash (TSan-clean), no empty answer
// for a query the baseline answers, and post-swap queries reflect the new
// store.
TEST_F(ServingTest, HotSwapUnderConcurrentLoad) {
  // store2 = store1 plus a sentinel term spliced into community 0, so the
  // two generations are distinguishable through the serving API.
  const std::string sentinel = "swapsentinelzz";
  auto parsed = community::CommunityStore::ParseTsv(
      artifacts_->store.SerializeTsv() + "t\t0\t" + sentinel + "\n");
  ASSERT_TRUE(parsed.ok());
  auto store1 =
      std::make_shared<const community::CommunityStore>(artifacts_->store);
  auto store2 =
      std::make_shared<const community::CommunityStore>(parsed.MoveValueUnsafe());

  SnapshotManager manager(corpus_);
  manager.Publish(store1);

  ServingOptions options;
  options.num_threads = 2;
  options.max_in_flight = 1 << 20;  // no shedding in this test
  ServingEngine engine(&manager, options);
  ASSERT_TRUE(engine.LookupDomain(sentinel).status().IsNotFound());

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 30;
  constexpr int kSwaps = 6;
  std::atomic<bool> start{false};
  std::atomic<int> failures{0};
  std::atomic<int> empty_answers{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kQueriesPerReader; ++i) {
        // Mix cached and uncached traffic on the known-answerable query.
        QueryRequest request;
        request.query = *answered_query_;
        request.bypass_cache = (i + t) % 3 == 0;
        auto r = engine.Query(request);
        if (!r.ok()) {
          failures.fetch_add(1);
        } else if (r->experts.empty()) {
          empty_answers.fetch_add(1);
        }
      }
    });
  }

  std::thread swapper([&] {
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int s = 0; s < kSwaps; ++s) {
      manager.Publish(s % 2 == 0 ? store2 : store1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    manager.Publish(store2);  // final generation carries the sentinel
  });

  start.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  swapper.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(empty_answers.load(), 0);

  // Post-swap: the serving path sees the new store.
  uint64_t final_version = manager.version();
  EXPECT_EQ(final_version, 1u + kSwaps + 1u);
  auto domain = engine.LookupDomain(sentinel);
  ASSERT_TRUE(domain.ok()) << domain.status().ToString();
  QueryRequest fresh;
  fresh.query = *answered_query_;
  fresh.bypass_cache = true;
  auto post = engine.Query(fresh);
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->snapshot_version, final_version);
  EXPECT_FALSE(post->experts.empty());
}

// Swapping also under SubmitQuery (async) traffic, exercising the queue.
TEST_F(ServingTest, AsyncTrafficAcrossASwapAllCompletes) {
  auto manager = NewManager();
  ServingOptions options;
  options.num_threads = 2;
  options.max_in_flight = 1 << 20;
  ServingEngine engine(manager.get(), options);

  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < 20; ++i) {
    QueryRequest request;
    request.query = *answered_query_;
    request.bypass_cache = i % 2 == 0;
    futures.push_back(engine.SubmitQuery(std::move(request)));
    if (i == 10) manager->Publish(artifacts_->store);
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->experts.empty());
    EXPECT_GE(r->snapshot_version, 1u);
    EXPECT_LE(r->snapshot_version, 2u);
  }
  EXPECT_EQ(engine.metrics().Report().completed, 20u);
}

// ----------------------------------------------- concurrent publishing ----

// Regression: unserialized publishers could install snapshots out of
// version order (last writer wins on the pointer), leaving the acquirable
// generation behind version() — which made every cache entry look stale
// until the next publish. After racing publishers join, the pointer and
// the counter must agree on the newest generation.
TEST_F(ServingTest, ConcurrentPublishesInstallNewestGeneration) {
  SnapshotManager manager(corpus_);
  auto store =
      std::make_shared<const community::CommunityStore>(artifacts_->store);
  constexpr int kPublishers = 4;
  constexpr int kPerThread = 8;
  std::atomic<bool> start{false};
  std::vector<std::thread> publishers;
  publishers.reserve(kPublishers);
  for (int t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) manager.Publish(store);
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& th : publishers) th.join();

  EXPECT_EQ(manager.version(), uint64_t{kPublishers * kPerThread});
  auto snap = manager.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), manager.version());
}

// ----------------------------------------------- destruction draining -----

// Regression: destroying the engine while submitted requests were still
// queued or executing let worker lambdas touch already-destroyed members
// (cache_, metrics_, flights_). The destructor must not return until no
// admitted request can reach the engine again — and every future handed
// out by SubmitQuery must already be fulfilled when it does.
TEST_F(ServingTest, DestructionDrainsPendingAsyncWorkOnOwnedPool) {
  auto manager = NewManager();
  std::vector<std::future<Result<QueryResponse>>> futures;
  {
    ServingOptions options;
    options.num_threads = 2;
    options.max_in_flight = 1 << 20;
    options.enable_cache = false;  // every request runs the detector
    options.execution_hook = [](const std::string&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    ServingEngine engine(manager.get(), options);
    for (int i = 0; i < 16; ++i) {
      QueryRequest request;
      request.query = *answered_query_;
      request.bypass_cache = true;  // defeat single-flight: all execute
      futures.push_back(engine.SubmitQuery(std::move(request)));
    }
    // Engine destroyed here, with most requests still queued on its pool.
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "destructor returned before a submitted request completed";
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

// Same contract when the pool is external: the engine cannot join it, so
// the destructor waits for its own admitted requests to release their
// slots instead. The pool outlives the engine, as the options require.
TEST_F(ServingTest, DestructionDrainsPendingAsyncWorkOnExternalPool) {
  auto manager = NewManager();
  ThreadPool pool(2);
  std::vector<std::future<Result<QueryResponse>>> futures;
  {
    ServingOptions options;
    options.pool = &pool;
    options.max_in_flight = 1 << 20;
    options.enable_cache = false;
    options.execution_hook = [](const std::string&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    ServingEngine engine(manager.get(), options);
    for (int i = 0; i < 16; ++i) {
      QueryRequest request;
      request.query = *answered_query_;
      request.bypass_cache = true;
      futures.push_back(engine.SubmitQuery(std::move(request)));
    }
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "destructor returned before a submitted request completed";
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

// ------------------------------------------------------ health transitions --

// The /readyz contract at the engine level: not ready until the first
// Publish, ready (with version and age) afterwards, and the readiness
// probe layers a staleness bound on top.
TEST_F(ServingTest, HealthNotReadyBeforeFirstPublishThenReady) {
  SnapshotManager manager(corpus_);
  ServingEngine engine(&manager);

  HealthView before = engine.Health();
  EXPECT_FALSE(before.ready);
  EXPECT_FALSE(before.detail.empty());
  EXPECT_EQ(before.snapshot_version, 0u);
  obs::ProbeResult probe = EngineReadiness(&engine)();
  EXPECT_FALSE(probe.ok);
  EXPECT_FALSE(probe.detail.empty());

  manager.Publish(artifacts_->store);
  HealthView after = engine.Health();
  EXPECT_TRUE(after.ready);
  EXPECT_TRUE(after.detail.empty());
  EXPECT_EQ(after.snapshot_version, 1u);
  EXPECT_GE(after.snapshot_age_seconds, 0.0);
  EXPECT_TRUE(EngineReadiness(&engine)().ok);

  // A staleness bound turns a stalled weekly refresh into not-ready even
  // though the snapshot itself still serves.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  obs::ProbeResult stale =
      EngineReadiness(&engine, /*max_snapshot_age_seconds=*/1e-3)();
  EXPECT_FALSE(stale.ok);
  EXPECT_TRUE(EngineReadiness(&engine, /*max_snapshot_age_seconds=*/3600)().ok);
}

// Readiness must not flap during a hot swap: a prober polling Health()
// concurrently with traffic and repeated Publishes never observes a
// not-ready window.
TEST_F(ServingTest, HealthStaysReadyAcrossMidTrafficHotSwap) {
  auto manager = NewManager();
  ServingOptions options;
  options.num_threads = 2;
  options.max_in_flight = 1 << 20;
  ServingEngine engine(manager.get(), options);

  std::atomic<bool> stop{false};
  std::atomic<int> not_ready_observations{0};
  std::thread prober([&] {
    while (!stop.load(std::memory_order_acquire)) {
      HealthView h = engine.Health();
      if (!h.ready) not_ready_observations.fetch_add(1);
      std::this_thread::yield();
    }
  });
  std::thread traffic([&] {
    for (int i = 0; i < 60; ++i) {
      QueryRequest request;
      request.query = *answered_query_;
      request.bypass_cache = i % 2 == 0;
      (void)engine.Query(request);
    }
  });
  for (int s = 0; s < 4; ++s) {
    manager->Publish(artifacts_->store);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  traffic.join();
  stop.store(true, std::memory_order_release);
  prober.join();

  EXPECT_EQ(not_ready_observations.load(), 0);
  HealthView final_health = engine.Health();
  EXPECT_TRUE(final_health.ready);
  EXPECT_EQ(final_health.snapshot_version, 5u);  // initial publish + 4 swaps
  EXPECT_GT(final_health.completed, 0u);
}

// When the shed rate blows through the objective, the engine itself stays
// "ready" (the snapshot is fine) but the SLO watchdog degrades — the
// layering /readyz composes.
TEST_F(ServingTest, WatchdogDegradesWhenShedRateExceedsObjective) {
  auto manager = NewManager();
  ServingOptions options;
  options.max_in_flight = 0;  // everything sheds
  ServingEngine engine(manager.get(), options);

  double now = 0;
  obs::EventLog events(64);
  obs::SloWatchdog::Options wd_options;
  wd_options.events = &events;
  wd_options.clock = [&now] { return now; };
  obs::SloWatchdog watchdog(wd_options);
  for (obs::SloObjective& objective : DefaultServingObjectives(&engine)) {
    if (objective.name != "shed_rate") continue;
    objective.short_window_seconds = 5;  // compressed for the test clock
    objective.long_window_seconds = 10;
    watchdog.AddObjective(std::move(objective));
  }

  EXPECT_TRUE(engine.Health().ready);
  EXPECT_TRUE(watchdog.healthy());

  // Sustained 100% shed rate across both windows (target tolerates 5%).
  for (int t = 0; t <= 12; ++t) {
    EXPECT_TRUE(engine.Query({*answered_query_}).status().IsUnavailable());
    now = t;
    watchdog.Tick();
  }

  EXPECT_FALSE(watchdog.healthy());
  std::vector<obs::SloState> states = watchdog.Snapshot();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].name, "shed_rate");
  EXPECT_TRUE(states[0].breached);
  EXPECT_GE(states[0].short_burn, 1.0);
  EXPECT_GE(states[0].long_burn, 1.0);

  bool breach_logged = false;
  for (const obs::Event& e : events.Events()) {
    if (e.message.find("SLO breach: shed_rate") != std::string::npos) {
      breach_logged = true;
    }
  }
  EXPECT_TRUE(breach_logged);

  HealthView health = engine.Health();
  EXPECT_TRUE(health.ready);  // shedding is not a snapshot problem
  EXPECT_GE(health.shed, 13u);
  EXPECT_EQ(health.completed, 0u);
}

// The active-request registry and finished samples behind /tracez: a
// pinned request shows up with its stage, and finishing moves it into the
// latency-bucketed sample ring with its outcome.
TEST_F(ServingTest, ActiveRegistryTracksStageAndSamplesOutcome) {
  auto manager = NewManager();
  std::atomic<int> entered{0};
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();

  ServingOptions options;
  options.enable_cache = false;
  options.num_threads = 2;
  options.execution_hook = [&](const std::string&) {
    entered.fetch_add(1);
    release_future.wait();
  };
  ServingEngine engine(manager.get(), options);

  EXPECT_TRUE(engine.ActiveRequests().empty());
  auto future = engine.SubmitQuery({*answered_query_});
  while (entered.load() == 0) std::this_thread::yield();

  std::vector<ActiveRequestInfo> active = engine.ActiveRequests();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].query, *answered_query_);
  // The hook runs at the head of ExecuteUncached: the request has moved
  // past admission into the detector stages.
  EXPECT_FALSE(active[0].stage.empty());
  EXPECT_GE(active[0].elapsed_ms, 0.0);

  release.set_value();
  ASSERT_TRUE(future.get().ok());
  EXPECT_TRUE(engine.ActiveRequests().empty());

  std::vector<RequestSample> samples = engine.SampledRequests();
  ASSERT_FALSE(samples.empty());
  bool found_ok = false;
  for (const RequestSample& s : samples) {
    if (s.query == *answered_query_ && s.outcome == "ok") found_ok = true;
  }
  EXPECT_TRUE(found_ok);

  // A shed never reaches the registry but error outcomes are sampled too:
  // an invalid (empty) query lands in the ring as "invalid".
  ASSERT_TRUE(engine.Query({""}).status().IsInvalidArgument());
  samples = engine.SampledRequests();
  bool found_invalid = false;
  for (const RequestSample& s : samples) {
    if (s.outcome == "invalid") found_invalid = true;
  }
  EXPECT_TRUE(found_invalid);
}

// ---------------------------------------------------------- Observability --

#if ESHARP_OBS_ENABLED
TEST_F(ServingTest, TraceCoversAllStagesOfAServedRequest) {
  auto manager = NewManager();
  obs::Tracer tracer;
  ServingOptions options;
  options.num_threads = 1;
  options.tracer = &tracer;
  ServingEngine engine(manager.get(), options);
  auto response = engine.Query({*answered_query_});
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  std::vector<obs::TraceEvent> events = tracer.Events();
  const obs::TraceEvent* request = nullptr;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "request") request = &e;
  }
  ASSERT_NE(request, nullptr) << "no request span recorded";
  EXPECT_EQ(request->parent_id, 0u);

  // The full uncached pipeline: admission -> cache -> expand -> detect ->
  // rank, every stage a child of the request span.
  for (const char* stage :
       {"admission", "cache", "expand", "detect", "rank"}) {
    const obs::TraceEvent* found = nullptr;
    for (const obs::TraceEvent& e : events) {
      if (e.name == stage) found = &e;
    }
    ASSERT_NE(found, nullptr) << "missing stage span: " << stage;
    EXPECT_EQ(found->parent_id, request->id)
        << stage << " span not parented under the request span";
  }
  auto arg = [](const obs::TraceEvent& e, const std::string& key) {
    for (const auto& [k, v] : e.args) {
      if (k == key) return v;
    }
    return std::string();
  };
  for (const obs::TraceEvent& e : events) {
    if (e.name == "cache") EXPECT_EQ(arg(e, "outcome"), "miss");
    if (e.name == "request") EXPECT_EQ(arg(e, "outcome"), "ok");
  }

  // A repeat of the same query is served from the cache: a new request
  // span with a cache-hit outcome and no detector stages.
  size_t before = events.size();
  ASSERT_TRUE(engine.Query({*answered_query_}).ok());
  events = tracer.Events();
  size_t expands = 0;
  std::string hit_outcome;
  for (size_t i = before; i < events.size(); ++i) {
    if (events[i].name == "expand") ++expands;
    if (events[i].name == "cache") hit_outcome = arg(events[i], "outcome");
  }
  EXPECT_EQ(expands, 0u);
  EXPECT_EQ(hit_outcome, "hit");
}

TEST_F(ServingTest, ShedRequestsLeaveATraceEvent) {
  auto manager = NewManager();
  obs::Tracer tracer;
  ServingOptions options;
  options.num_threads = 1;
  options.max_in_flight = 0;  // everything sheds
  options.tracer = &tracer;
  ServingEngine engine(manager.get(), options);
  auto response = engine.Query({*answered_query_});
  EXPECT_FALSE(response.ok());
  std::vector<obs::TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "shed");
  EXPECT_DOUBLE_EQ(events[0].dur_us, 0.0);
}
#endif  // ESHARP_OBS_ENABLED

TEST(ServingMetricsTest, WindowedQpsRecoversAfterIdleUnlikeLifetimeQps) {
  ServingMetrics metrics;
  double now = 0;
  metrics.SetClockForTest([&now] { return now; });
  StageTimings stages;

  // Phase 1: 10 qps for 10 seconds.
  for (int i = 0; i < 100; ++i) {
    now = i * 0.1;
    metrics.RecordRequest(0.01, stages, /*cache_hit=*/false,
                          /*deduplicated=*/false);
  }
  MetricsReport warm = metrics.Report();
  EXPECT_NEAR(warm.window_qps, 10.0, 2.5);

  // Long idle: the windowed rate decays to ~0; the lifetime average barely
  // moves and keeps overstating the current load.
  now = 1000;
  MetricsReport idle = metrics.Report();
  EXPECT_LT(idle.window_qps, 0.05);

  // Phase 2: a burst after the idle period. The lifetime qps is diluted by
  // the idle time (this was the Report() understatement bug); the windowed
  // rate tracks the recent burst instead.
  for (int i = 0; i < 100; ++i) {
    now = 1000 + i * 0.01;
    metrics.RecordRequest(0.01, stages, /*cache_hit=*/false,
                          /*deduplicated=*/false);
  }
  MetricsReport burst = metrics.Report();
  EXPECT_LT(burst.qps, 1.0);  // 200 requests over ~1001 s
  EXPECT_GT(burst.window_qps, 5.0 * burst.qps);
  EXPECT_GT(burst.window_qps, 2.0);
  metrics.SetClockForTest(nullptr);
}

TEST(ServingMetricsTest, WindowedQpsEarlyLifeIsNotUnderestimated) {
  ServingMetrics metrics;
  double now = 0;
  metrics.SetClockForTest([&now] { return now; });
  StageTimings stages;
  // 20 qps for one second — much shorter than the window's time constant.
  // The warm-up fill correction must keep the estimate near the true rate
  // instead of diluting it across the whole (mostly unobserved) window.
  for (int i = 0; i < 20; ++i) {
    now = i * 0.05;
    metrics.RecordRequest(0.01, stages, false, false);
  }
  MetricsReport r = metrics.Report();
  EXPECT_NEAR(r.window_qps, 20.0, 5.0);
  metrics.SetClockForTest(nullptr);
}

}  // namespace
}  // namespace esharp::serving
