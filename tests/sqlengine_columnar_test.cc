#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sqlengine/catalog.h"
#include "sqlengine/column.h"
#include "sqlengine/columnar.h"
#include "sqlengine/operators.h"
#include "sqlengine/parallel.h"
#include "sqlengine/plan.h"

namespace esharp::sql {
namespace {

// ------------------------------------------------------------- Harness ----
//
// Randomized equivalence suite: every columnar kernel must produce the same
// multiset of rows as its row-store reference implementation, including
// NULLs, empty inputs, and single-partition edge cases.

// Random table over all four concrete types with NULLs sprinkled in.
Table RandomNullableTable(size_t rows, size_t key_cardinality, uint64_t seed,
                          double null_prob = 0.15) {
  Rng rng(seed);
  TableBuilder b({{"k", DataType::kInt64},
                  {"s", DataType::kString},
                  {"x", DataType::kDouble},
                  {"f", DataType::kBool}});
  for (size_t i = 0; i < rows; ++i) {
    int64_t k = static_cast<int64_t>(rng.Uniform(key_cardinality));
    Row r;
    r.push_back(rng.Bernoulli(null_prob) ? Value::Null() : Value::Int(k));
    r.push_back(rng.Bernoulli(null_prob)
                    ? Value::Null()
                    : Value::String("s" + std::to_string(k % 5)));
    r.push_back(rng.Bernoulli(null_prob) ? Value::Null()
                                         : Value::Double(rng.NextDouble()));
    r.push_back(rng.Bernoulli(null_prob) ? Value::Null()
                                         : Value::Bool(rng.Bernoulli(0.5)));
    b.AddRow(std::move(r));
  }
  return b.Build();
}

Table EmptyTable() {
  return TableBuilder({{"k", DataType::kInt64},
                       {"s", DataType::kString},
                       {"x", DataType::kDouble},
                       {"f", DataType::kBool}})
      .Build();
}

ColumnTable ToColumnar(const Table& t) {
  Result<ColumnTable> ct = ColumnTable::FromTable(t);
  EXPECT_TRUE(ct.ok()) << ct.status().ToString();
  return std::move(ct).ValueOrDie();
}

Table FromColumnar(ColumnTable ct) {
  return Table::FromColumnar(
      std::make_shared<const ColumnTable>(std::move(ct)));
}

// Canonical lex-sorted comparison, cell-exact (Value::Compare == 0).
void ExpectSameRows(Table a, Table b, const std::string& what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  a.SortLexicographic();
  b.SortLexicographic();
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.row(i)[c].Compare(b.row(i)[c]), 0)
          << what << ": row " << i << " col " << c << ": "
          << a.row(i)[c].ToString() << " vs " << b.row(i)[c].ToString();
    }
  }
}

// ------------------------------------------------------- Conversions ------

TEST(ColumnTableTest, RoundTripIsLossless) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Table t = RandomNullableTable(200, 12, seed);
    ColumnTable ct = ToColumnar(t);
    ASSERT_EQ(ct.num_rows(), t.num_rows());
    std::vector<Row> rows = ct.MaterializeRows();
    for (size_t i = 0; i < t.num_rows(); ++i) {
      for (size_t c = 0; c < t.num_columns(); ++c) {
        // Cell-exact including the type (1 vs 1.0 must round-trip as-is).
        ASSERT_EQ(rows[i][c].type(), t.row(i)[c].type());
        ASSERT_EQ(rows[i][c].Compare(t.row(i)[c]), 0);
      }
    }
  }
}

TEST(ColumnTableTest, EmptyAndAllNullColumns) {
  ColumnTable empty = ToColumnar(EmptyTable());
  EXPECT_EQ(empty.num_rows(), 0u);

  TableBuilder b({{"n", DataType::kNull}, {"k", DataType::kInt64}});
  b.AddRow({Value::Null(), Value::Int(1)});
  b.AddRow({Value::Null(), Value::Null()});
  Table t = b.Build();
  ColumnTable ct = ToColumnar(t);
  EXPECT_EQ(ct.col(0).type, DataType::kNull);
  std::vector<Row> rows = ct.MaterializeRows();
  EXPECT_TRUE(rows[0][0].is_null());
  EXPECT_TRUE(rows[1][1].is_null());
}

TEST(ColumnTableTest, MixedTypeColumnIsUnsupportedNotAnError) {
  TableBuilder b({{"m", DataType::kInt64}});
  b.AddRow({Value::Int(1)});
  b.AddRow({Value::String("oops")});
  Result<ColumnTable> ct = ColumnTable::FromTable(b.Build());
  ASSERT_FALSE(ct.ok());
  EXPECT_TRUE(IsColumnarUnsupported(ct.status())) << ct.status().ToString();
}

TEST(ColumnTableTest, HashesMatchRowHashes) {
  Table t = RandomNullableTable(300, 20, 4);
  ColumnTable ct = ToColumnar(t);
  for (size_t i = 0; i < t.num_rows(); ++i) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      ASSERT_EQ(ct.col(c).HashAt(i), t.row(i)[c].Hash())
          << "row " << i << " col " << c;
    }
  }
}

// --------------------------------------------------------------- Filter ---

TEST(ColumnarKernelTest, FilterMatchesRowKernel) {
  std::vector<ExprPtr> preds = {
      Gt(Col("x"), LitDouble(0.5)),
      And(Gt(Col("x"), LitDouble(0.2)), Eq(Col("s"), LitString("s1"))),
      Or(Eq(Col("k"), LitInt(3)), Not(Col("f"))),
      Le(Col("k"), LitInt(5)),
  };
  for (uint64_t seed = 10; seed < 16; ++seed) {
    // NOTE: no NULLs here — the row kernel requires the predicate to be
    // all-BOOL, so NULL-producing predicates are an error on both paths
    // (checked separately below).
    Table t = RandomNullableTable(250, 9, seed, /*null_prob=*/0.0);
    for (const ExprPtr& pred : preds) {
      Result<Table> row = Filter(t, pred);
      Result<ColumnTable> col = ColumnarFilter(ToColumnar(t), pred);
      ASSERT_TRUE(row.ok()) << row.status().ToString();
      ASSERT_TRUE(col.ok()) << col.status().ToString();
      ExpectSameRows(*row, FromColumnar(std::move(col).ValueOrDie()),
                     "filter seed " + std::to_string(seed));
    }
  }
}

TEST(ColumnarKernelTest, FilterErrorParity) {
  // Null-free so both paths reach the "not BOOL" check (with NULLs present
  // the columnar arithmetic type-check surfaces the NULL-coercion error
  // first, a documented divergence in error precedence, not in results).
  Table t = RandomNullableTable(50, 5, 20, /*null_prob=*/0.0);
  // Non-BOOL predicate: same error code and message on both paths.
  Result<Table> row = Filter(t, Add(Col("k"), LitInt(1)));
  Result<ColumnTable> col = ColumnarFilter(ToColumnar(t), Add(Col("k"), LitInt(1)));
  ASSERT_FALSE(row.ok());
  ASSERT_FALSE(col.ok());
  EXPECT_FALSE(IsColumnarUnsupported(col.status()));
  EXPECT_EQ(row.status().ToString(), col.status().ToString());
}

TEST(ColumnarKernelTest, FilterEmptyInput) {
  ExprPtr pred = Gt(Col("x"), LitDouble(0.5));
  Result<Table> row = Filter(EmptyTable(), pred);
  Result<ColumnTable> col = ColumnarFilter(ToColumnar(EmptyTable()), pred);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->num_rows(), 0u);
  ExpectSameRows(*row, FromColumnar(std::move(col).ValueOrDie()),
                 "empty filter");
}

// -------------------------------------------------------------- Project ---

TEST(ColumnarKernelTest, ProjectMatchesRowKernel) {
  std::vector<std::vector<ProjectedColumn>> cases = {
      {{Col("k"), "k"}, {Col("s"), "s"}},
      {{Add(Col("x"), LitDouble(1.0)), "x1"},
       {Mul(Col("k"), LitInt(3)), "k3"}},
      {{Sub(Col("x"), Col("k")), "d"}, {LitString("c"), "c"}},
      {{Eq(Col("s"), LitString("s2")), "is2"}, {Lit(Value::Null()), "nil"}},
  };
  for (uint64_t seed = 30; seed < 34; ++seed) {
    Table t = RandomNullableTable(200, 7, seed, /*null_prob=*/0.0);
    for (const auto& cols : cases) {
      Result<Table> row = Project(t, cols);
      Result<ColumnTable> col = ColumnarProject(ToColumnar(t), cols);
      ASSERT_TRUE(row.ok()) << row.status().ToString();
      ASSERT_TRUE(col.ok()) << col.status().ToString();
      ExpectSameRows(*row, FromColumnar(std::move(col).ValueOrDie()),
                     "project seed " + std::to_string(seed));
    }
  }
}

TEST(ColumnarKernelTest, ProjectNullsAndUdf) {
  // NULL-aware projections: pass-through of nullable columns and a UDF
  // (which evaluates row-at-a-time internally on both paths).
  ScalarUdf coalesce_zero = [](const std::vector<Value>& args) -> Result<Value> {
    return args[0].is_null() ? Value::Int(0) : args[0];
  };
  std::vector<ProjectedColumn> cols = {
      {Col("k"), "k"},
      {Col("s"), "s"},
      {Udf("czero", coalesce_zero, {Col("k")}), "k0"},
  };
  for (uint64_t seed = 40; seed < 44; ++seed) {
    Table t = RandomNullableTable(150, 6, seed, /*null_prob=*/0.3);
    Result<Table> row = Project(t, cols);
    Result<ColumnTable> col = ColumnarProject(ToColumnar(t), cols);
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    ASSERT_TRUE(col.ok()) << col.status().ToString();
    ExpectSameRows(*row, FromColumnar(std::move(col).ValueOrDie()),
                   "udf project seed " + std::to_string(seed));
  }
}

TEST(ColumnarKernelTest, ProjectDivisionByZeroParity) {
  TableBuilder b({{"a", DataType::kInt64}, {"d", DataType::kInt64}});
  b.AddRow({Value::Int(4), Value::Int(2)});
  b.AddRow({Value::Int(4), Value::Int(0)});
  Table t = b.Build();
  std::vector<ProjectedColumn> cols = {{Div(Col("a"), Col("d")), "q"}};
  Result<Table> row = Project(t, cols);
  Result<ColumnTable> col = ColumnarProject(ToColumnar(t), cols);
  ASSERT_FALSE(row.ok());
  ASSERT_FALSE(col.ok());
  EXPECT_EQ(row.status().ToString(), col.status().ToString());
}

// ----------------------------------------------------------------- Join ---

TEST(ColumnarKernelTest, JoinMatchesRowKernel) {
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter}) {
    for (uint64_t seed = 50; seed < 54; ++seed) {
      Table left = RandomNullableTable(160, 10, seed);
      Table right = RandomNullableTable(90, 10, seed + 100);
      Result<Table> row = HashJoin(left, right, {"k"}, {"k"}, type);
      Result<ColumnTable> col = ColumnarHashJoin(
          ToColumnar(left), ToColumnar(right), {"k"}, {"k"}, type);
      ASSERT_TRUE(row.ok()) << row.status().ToString();
      ASSERT_TRUE(col.ok()) << col.status().ToString();
      ExpectSameRows(*row, FromColumnar(std::move(col).ValueOrDie()),
                     "join seed " + std::to_string(seed));
    }
  }
}

TEST(ColumnarKernelTest, MultiKeyAndStringKeyJoin) {
  for (uint64_t seed = 60; seed < 63; ++seed) {
    Table left = RandomNullableTable(120, 6, seed);
    Table right = RandomNullableTable(80, 6, seed + 200);
    Result<Table> row = HashJoin(left, right, {"k", "s"}, {"k", "s"});
    Result<ColumnTable> col = ColumnarHashJoin(
        ToColumnar(left), ToColumnar(right), {"k", "s"}, {"k", "s"});
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    ASSERT_TRUE(col.ok()) << col.status().ToString();
    ExpectSameRows(*row, FromColumnar(std::move(col).ValueOrDie()),
                   "multikey join seed " + std::to_string(seed));
  }
}

TEST(ColumnarKernelTest, JoinEmptySidesAndErrorParity) {
  Table t = RandomNullableTable(40, 4, 70);
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter}) {
    Result<Table> row = HashJoin(t, EmptyTable(), {"k"}, {"k"}, type);
    Result<ColumnTable> col = ColumnarHashJoin(
        ToColumnar(t), ToColumnar(EmptyTable()), {"k"}, {"k"}, type);
    ASSERT_TRUE(row.ok());
    ASSERT_TRUE(col.ok());
    ExpectSameRows(*row, FromColumnar(std::move(col).ValueOrDie()),
                   "empty right join");
  }
  // Arity mismatch: same error.
  Result<Table> row = HashJoin(t, t, {"k", "s"}, {"k"});
  Result<ColumnTable> col =
      ColumnarHashJoin(ToColumnar(t), ToColumnar(t), {"k", "s"}, {"k"});
  ASSERT_FALSE(row.ok());
  ASSERT_FALSE(col.ok());
  EXPECT_EQ(row.status().ToString(), col.status().ToString());
}

// ------------------------------------------------------------ Aggregate ---

std::vector<AggSpec> AllAggKinds() {
  std::vector<AggSpec> aggs;
  aggs.push_back(CountStar("n"));
  aggs.push_back(AggSpec{AggKind::kCount, Col("x"), nullptr, "nx"});
  aggs.push_back(SumOf(Col("x"), "sx"));
  aggs.push_back(SumOf(Col("k"), "sk"));  // int-preserving SUM
  aggs.push_back(AvgOf(Col("x"), "ax"));
  aggs.push_back(MinOf(Col("s"), "mins"));
  aggs.push_back(MaxOf(Col("x"), "maxx"));
  aggs.push_back(ArgMaxOf(Col("x"), Col("s"), "best"));
  aggs.push_back(ArgMinOf(Col("x"), Col("k"), "worst"));
  return aggs;
}

TEST(ColumnarKernelTest, AggregateMatchesRowKernel) {
  for (uint64_t seed = 80; seed < 86; ++seed) {
    // Small cardinality forces ties, exercising ARGMAX/ARGMIN tie-breaks.
    Table t = RandomNullableTable(300, 5, seed);
    for (const auto& keys :
         std::vector<std::vector<std::string>>{{"k"}, {"s"}, {"k", "s"}}) {
      Result<Table> row = HashAggregate(t, keys, AllAggKinds());
      Result<ColumnTable> col =
          ColumnarHashAggregate(ToColumnar(t), keys, AllAggKinds());
      ASSERT_TRUE(row.ok()) << row.status().ToString();
      ASSERT_TRUE(col.ok()) << col.status().ToString();
      ExpectSameRows(*row, FromColumnar(std::move(col).ValueOrDie()),
                     "aggregate seed " + std::to_string(seed));
    }
  }
}

TEST(ColumnarKernelTest, GlobalAggregateAndEmptyInput) {
  // No group keys: one output row, even over an empty input.
  for (const Table& t :
       {RandomNullableTable(120, 4, 90), EmptyTable()}) {
    Result<Table> row = HashAggregate(t, {}, AllAggKinds());
    Result<ColumnTable> col = ColumnarHashAggregate(ToColumnar(t), {},
                                                    AllAggKinds());
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    ASSERT_TRUE(col.ok()) << col.status().ToString();
    EXPECT_EQ(col->num_rows(), 1u);
    ExpectSameRows(*row, FromColumnar(std::move(col).ValueOrDie()),
                   "global aggregate");
  }
  // Grouped aggregate over empty input: zero rows on both paths.
  Result<Table> row = HashAggregate(EmptyTable(), {"k"}, AllAggKinds());
  Result<ColumnTable> col =
      ColumnarHashAggregate(ToColumnar(EmptyTable()), {"k"}, AllAggKinds());
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->num_rows(), 0u);
  EXPECT_EQ(row->num_rows(), 0u);
}

// ---------------------------------------------------------- Partitioning --

TEST(ColumnarKernelTest, HashPartitionRoutesIdentically) {
  for (size_t parts : {1u, 2u, 7u, 16u}) {
    Table t = RandomNullableTable(260, 12, 100 + parts);
    Result<std::vector<Table>> row = HashPartition(t, {"k", "s"}, parts);
    Result<std::vector<ColumnTable>> col =
        ColumnarHashPartition(ToColumnar(t), {"k", "s"}, parts);
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    ASSERT_TRUE(col.ok()) << col.status().ToString();
    ASSERT_EQ(row->size(), col->size());
    for (size_t p = 0; p < row->size(); ++p) {
      // Identical routing: partition p holds the same rows on both paths.
      ExpectSameRows((*row)[p], FromColumnar(std::move((*col)[p])),
                     "partition " + std::to_string(p) + "/" +
                         std::to_string(parts));
    }
  }
  // Zero partitions: same error.
  Table t = RandomNullableTable(10, 3, 99);
  Result<std::vector<Table>> row = HashPartition(t, {"k"}, 0);
  Result<std::vector<ColumnTable>> col =
      ColumnarHashPartition(ToColumnar(t), {"k"}, 0);
  ASSERT_FALSE(row.ok());
  ASSERT_FALSE(col.ok());
  EXPECT_EQ(row.status().ToString(), col.status().ToString());
}

TEST(ColumnarKernelTest, RoundRobinChunksIdentically) {
  for (size_t parts : {1u, 3u, 8u}) {
    Table t = RandomNullableTable(103, 6, 110 + parts);
    std::vector<Table> row = RoundRobinPartition(t, parts);
    std::vector<ColumnTable> col =
        ColumnarRoundRobinPartition(ToColumnar(t), parts);
    ASSERT_EQ(row.size(), col.size());
    for (size_t p = 0; p < row.size(); ++p) {
      ASSERT_EQ(row[p].num_rows(), col[p].num_rows()) << "chunk " << p;
      // Chunking is positional: compare in order, not as multisets.
      std::vector<Row> rows = col[p].MaterializeRows();
      for (size_t i = 0; i < rows.size(); ++i) {
        for (size_t c = 0; c < rows[i].size(); ++c) {
          ASSERT_EQ(rows[i][c].Compare(row[p].row(i)[c]), 0);
        }
      }
    }
  }
}

TEST(ColumnarKernelTest, ConcatRestoresPartitions) {
  Table t = RandomNullableTable(240, 10, 120);
  Result<std::vector<ColumnTable>> parts =
      ColumnarHashPartition(ToColumnar(t), {"k"}, 6);
  ASSERT_TRUE(parts.ok());
  Result<ColumnTable> whole = ColumnarConcat(*parts);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ExpectSameRows(t, FromColumnar(std::move(whole).ValueOrDie()), "concat");

  // Empty list: same error as the row path.
  Result<Table> row_err = ConcatTables({});
  Result<ColumnTable> col_err = ColumnarConcat({});
  ASSERT_FALSE(row_err.ok());
  ASSERT_FALSE(col_err.ok());
  EXPECT_EQ(row_err.status().ToString(), col_err.status().ToString());
}

TEST(ColumnarKernelTest, EqualAsMultisetsDetectsDifferences) {
  Table a = RandomNullableTable(80, 6, 130);
  Table b = a;
  EXPECT_TRUE(ColumnTablesEqualAsMultisets(ToColumnar(a), ToColumnar(b)));
  b.mutable_row(3)[0] = Value::Int(424242);
  EXPECT_FALSE(ColumnTablesEqualAsMultisets(ToColumnar(a), ToColumnar(b)));
}

// ------------------------------------------- Parallel wrappers (on/off) ---

class ColumnarParallelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ColumnarParallelTest, WrappersMatchRowPath) {
  ThreadPool pool(4);
  const size_t partitions = GetParam();
  ExecContext columnar{&pool, partitions, nullptr, "test"};
  columnar.use_columnar = true;
  ExecContext rowwise = columnar;
  rowwise.use_columnar = false;

  Table left = RandomNullableTable(350, 14, 140);
  Table right = RandomNullableTable(180, 14, 141);

  for (JoinStrategy strategy :
       {JoinStrategy::kReplicated, JoinStrategy::kPartitioned}) {
    for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter}) {
      Table c = *ParallelHashJoin(columnar, left, right, {"k"}, {"k"}, type,
                                  strategy);
      Table r = *ParallelHashJoin(rowwise, left, right, {"k"}, {"k"}, type,
                                  strategy);
      ExpectSameRows(r, c, "parallel join");
    }
  }

  std::vector<AggSpec> aggs = AllAggKinds();
  ExpectSameRows(*ParallelHashAggregate(rowwise, left, {"k"}, aggs),
                 *ParallelHashAggregate(columnar, left, {"k"}, aggs),
                 "parallel aggregate");
  ExpectSameRows(*ParallelHashAggregate(rowwise, left, {}, aggs),
                 *ParallelHashAggregate(columnar, left, {}, aggs),
                 "parallel global aggregate");

  ExprPtr pred = Gt(Col("x"), LitDouble(0.4));
  ExpectSameRows(*ParallelFilter(rowwise, left, pred),
                 *ParallelFilter(columnar, left, pred), "parallel filter");

  // NULL-safe projection (comparisons use Compare semantics on both paths;
  // arithmetic over NULL cells is an error on both).
  std::vector<ProjectedColumn> cols = {{Col("s"), "s"},
                                       {Ge(Col("x"), LitDouble(0.5)), "hi"}};
  ExpectSameRows(*ParallelProject(rowwise, left, cols),
                 *ParallelProject(columnar, left, cols), "parallel project");
}

INSTANTIATE_TEST_SUITE_P(Fanouts, ColumnarParallelTest,
                         ::testing::Values(1, 3, 8));

// ---------------------------------------------------- Executor end-to-end --

TEST(ColumnarExecutorTest, PlansMatchRowPathAndExplainCountsAgree) {
  Catalog cat;
  cat.Register("l", RandomNullableTable(400, 15, 150, /*null_prob=*/0.0));
  cat.Register("r", RandomNullableTable(220, 15, 151, /*null_prob=*/0.0));
  Plan plan = Plan::Scan("l")
                  .As("a")
                  .Join(Plan::Scan("r").As("b"), {"a.k"}, {"b.k"})
                  .Where(Gt(Col("a.x"), LitDouble(0.2)))
                  .GroupBy({"a.s"}, {CountStar("n"), SumOf(Col("b.x"), "sx")});

  ThreadPool pool(4);
  ExecutorOptions columnar;
  columnar.pool = &pool;
  columnar.num_partitions = 8;
  columnar.use_columnar = true;
  ExecutorOptions rowwise = columnar;
  rowwise.use_columnar = false;

  ExplainStats cstats, rstats;
  Table c = *Executor(columnar).Execute(plan, cat, &cstats);
  Table r = *Executor(rowwise).Execute(plan, cat, &rstats);
  ExpectSameRows(r, c, "executor end-to-end");

  // EXPLAIN ANALYZE parity: exact rows in/out and batch counts are
  // identical node-by-node across the two execution paths.
  ASSERT_EQ(cstats.NodeCount(), rstats.NodeCount());
  std::function<void(const ExplainStats&, const ExplainStats&)> compare =
      [&](const ExplainStats& x, const ExplainStats& y) {
        EXPECT_EQ(x.op, y.op);
        EXPECT_EQ(x.rows_in, y.rows_in) << x.op;
        EXPECT_EQ(x.rows_out, y.rows_out) << x.op;
        EXPECT_EQ(x.batches, y.batches) << x.op;
        ASSERT_EQ(x.children.size(), y.children.size());
        for (size_t i = 0; i < x.children.size(); ++i) {
          compare(*x.children[i], *y.children[i]);
        }
      };
  compare(cstats, rstats);
}

TEST(ColumnarExecutorTest, MixedTypeTableFallsBackToRowKernels) {
  // A column whose cells mix INT64 and STRING has no columnar form; plans
  // over it transparently run on the row kernels with identical results.
  TableBuilder b({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  b.AddRow({Value::Int(1), Value::Int(10)});
  b.AddRow({Value::Int(2), Value::String("not an int")});
  b.AddRow({Value::Int(1), Value::Int(30)});
  Catalog cat;
  cat.Register("weird", b.Build());
  Plan plan = Plan::Scan("weird").GroupBy({"k"}, {CountStar("n")});

  ThreadPool pool(2);
  for (bool use_columnar : {true, false}) {
    ExecutorOptions options;
    options.pool = &pool;
    options.num_partitions = 4;
    options.use_columnar = use_columnar;
    Result<Table> out = Executor(options).Execute(plan, cat);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->num_rows(), 2u);
  }
}

}  // namespace
}  // namespace esharp::sql
