#include <gtest/gtest.h>

#include <unordered_set>

#include "esharp/pipeline.h"
#include "eval/crowd.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/query_sets.h"
#include "microblog/generator.h"
#include "querylog/generator.h"

namespace esharp::eval {
namespace {

// ------------------------------------------------------------- QuerySets --

class QuerySetsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    querylog::UniverseOptions uo;
    uo.num_categories = 6;
    uo.domains_per_category = 15;
    uo.seed = 401;
    universe_ = std::make_unique<querylog::TopicUniverse>(
        *querylog::TopicUniverse::Generate(uo));
    querylog::GeneratorOptions go;
    go.seed = 402;
    log_ = std::make_unique<querylog::GeneratedLog>(
        *GenerateQueryLog(*universe_, go));
  }

  std::unique_ptr<querylog::TopicUniverse> universe_;
  std::unique_ptr<querylog::GeneratedLog> log_;
};

TEST_F(QuerySetsTest, BuildsSixSets) {
  QuerySetOptions options;
  options.per_category = 20;
  options.top_n = 50;
  auto sets = *BuildQuerySets(*universe_, log_->log, options);
  ASSERT_EQ(sets.size(), 6u);
  EXPECT_EQ(sets[0].name, "sports");
  EXPECT_EQ(sets[4].name, "wikipedia");
  EXPECT_EQ(sets[5].name, "top50");
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_LE(sets[i].queries.size(), 20u);
    EXPECT_GT(sets[i].queries.size(), 5u);
  }
  EXPECT_EQ(sets[5].queries.size(), 50u);
}

TEST_F(QuerySetsTest, CategorySetsContainOnlyTheirCategory) {
  auto sets = *BuildQuerySets(*universe_, log_->log);
  for (size_t cat = 0; cat < 5; ++cat) {
    for (const EvalQuery& q : sets[cat].queries) {
      ASSERT_NE(q.domain, querylog::kNoDomain);
      EXPECT_EQ(universe_->CategoryOf(q.domain), cat);
    }
  }
}

TEST_F(QuerySetsTest, SetsAreSortedByPopularity) {
  auto sets = *BuildQuerySets(*universe_, log_->log);
  const querylog::QueryLog& log = log_->log;
  for (const QuerySet& set : sets) {
    uint64_t prev = UINT64_MAX;
    for (const EvalQuery& q : set.queries) {
      uint64_t count = log.query(*log.FindQuery(q.text)).total_count;
      EXPECT_LE(count, prev);
      prev = count;
    }
  }
}

TEST_F(QuerySetsTest, TopSetIncludesVariants) {
  QuerySetOptions options;
  options.top_n = 250;
  auto sets = *BuildQuerySets(*universe_, log_->log, options);
  const QuerySet& top = sets.back();
  size_t variants = 0;
  for (const EvalQuery& q : top.queries) {
    auto id = log_->log.FindQuery(q.text);
    if (id.ok() && log_->log.query(*id).is_variant) ++variants;
  }
  EXPECT_GT(variants, 0u);
}

TEST_F(QuerySetsTest, InvalidOptionsRejected) {
  QuerySetOptions options;
  options.per_category = 0;
  EXPECT_FALSE(BuildQuerySets(*universe_, log_->log, options).ok());
}

// ----------------------------------------------------------------- Crowd --

microblog::TweetCorpus TinyCorpus() {
  microblog::TweetCorpus corpus;
  microblog::UserProfile expert;
  expert.id = 0;
  expert.kind = microblog::AccountKind::kExpert;
  expert.domain = 3;
  corpus.AddUser(expert);
  microblog::UserProfile casual;
  casual.id = 1;
  casual.kind = microblog::AccountKind::kCasual;
  corpus.AddUser(casual);
  return corpus;
}

TEST(CrowdTest, GroundTruthRelevance) {
  microblog::TweetCorpus corpus = TinyCorpus();
  EXPECT_TRUE(IsRelevant(corpus, 0, 3));
  EXPECT_FALSE(IsRelevant(corpus, 0, 4));  // wrong domain
  EXPECT_FALSE(IsRelevant(corpus, 1, 3));  // not an expert
  EXPECT_FALSE(IsRelevant(corpus, 0, querylog::kNoDomain));
}

TEST(CrowdTest, PerfectWorkersJudgeTruth) {
  microblog::TweetCorpus corpus = TinyCorpus();
  CrowdOptions options;
  options.accuracy_on_experts = 1.0;
  options.accuracy_on_nonexperts = 1.0;
  options.skip_probability = 0.0;
  SimulatedCrowd crowd(options);
  std::vector<expert::RankedExpert> experts(2);
  experts[0].user = 0;
  experts[1].user = 1;
  auto judged = crowd.Judge(corpus, 3, experts);
  ASSERT_EQ(judged.size(), 2u);
  EXPECT_TRUE(judged[0].judged_relevant);
  EXPECT_FALSE(judged[1].judged_relevant);
  EXPECT_TRUE(judged[0].relevant_truth);
  EXPECT_FALSE(judged[1].relevant_truth);
}

TEST(CrowdTest, MajorityVoteAbsorbsSingleError) {
  // With accuracy just below 1, a single erring worker is outvoted; the
  // empirical flip rate must be far below the single-worker error rate.
  microblog::TweetCorpus corpus = TinyCorpus();
  CrowdOptions options;
  options.accuracy_on_experts = 0.8;
  options.accuracy_on_nonexperts = 0.8;
  options.skip_probability = 0.0;
  options.seed = 5;
  SimulatedCrowd crowd(options);
  std::vector<expert::RankedExpert> experts(1);
  experts[0].user = 0;  // truly relevant
  int flips = 0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    auto judged = crowd.Judge(corpus, 3, experts);
    if (!judged[0].judged_relevant) ++flips;
  }
  // P(>=2 of 3 err) = 3*0.04*0.8 + 0.008 = 0.104 << 0.2.
  EXPECT_NEAR(flips / static_cast<double>(trials), 0.104, 0.03);
}

TEST(CrowdTest, DeterministicForSeed) {
  microblog::TweetCorpus corpus = TinyCorpus();
  CrowdOptions options;
  options.seed = 42;
  std::vector<expert::RankedExpert> experts(2);
  experts[0].user = 0;
  experts[1].user = 1;
  SimulatedCrowd a(options), b(options);
  for (int i = 0; i < 20; ++i) {
    auto ja = a.Judge(corpus, 3, experts);
    auto jb = b.Judge(corpus, 3, experts);
    for (size_t k = 0; k < ja.size(); ++k) {
      EXPECT_EQ(ja[k].judged_relevant, jb[k].judged_relevant);
    }
  }
}

// --------------------------------------------------------------- Metrics --

std::vector<expert::RankedExpert> MakeExperts(
    std::initializer_list<double> scores) {
  std::vector<expert::RankedExpert> out;
  microblog::UserId id = 0;
  for (double s : scores) {
    expert::RankedExpert e;
    e.user = id++;
    e.score = s;
    out.push_back(e);
  }
  return out;
}

SetRun MakeRun() {
  SetRun run;
  run.name = "synthetic";
  QueryRun q1;
  q1.query = {"a", 0};
  q1.baseline = MakeExperts({2.0, 0.5, -1.0});
  q1.esharp = MakeExperts({2.5, 1.0, 0.2, -0.5});
  QueryRun q2;
  q2.query = {"b", 1};
  q2.baseline = MakeExperts({});
  q2.esharp = MakeExperts({0.4});
  run.runs = {q1, q2};
  return run;
}

TEST(MetricsTest, ApplyThresholdFiltersAndCaps) {
  auto experts = MakeExperts({3.0, 1.0, -2.0});
  EXPECT_EQ(ApplyThreshold(experts, 0.0, 15).size(), 2u);
  EXPECT_EQ(ApplyThreshold(experts, -10.0, 2).size(), 2u);
  EXPECT_EQ(ApplyThreshold(experts, 10.0, 15).size(), 0u);
}

TEST(MetricsTest, AnsweredProportion) {
  SetRun run = MakeRun();
  EXPECT_DOUBLE_EQ(AnsweredProportion(run, Side::kBaseline), 0.5);
  EXPECT_DOUBLE_EQ(AnsweredProportion(run, Side::kESharp), 1.0);
  // A hard threshold starves both.
  EXPECT_DOUBLE_EQ(AnsweredProportion(run, Side::kBaseline, 5.0), 0.0);
}

TEST(MetricsTest, CumulativeCoverage) {
  SetRun run = MakeRun();
  auto curve = CumulativeCoverage(run, Side::kESharp, 4);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve[0], 100.0);  // all queries have >= 0
  EXPECT_DOUBLE_EQ(curve[1], 100.0);  // both have >= 1 above z=0
  EXPECT_DOUBLE_EQ(curve[2], 50.0);   // only q1 has >= 2
  EXPECT_DOUBLE_EQ(curve[4], 0.0);
}

TEST(MetricsTest, AvgExpertsPerQueryTracksThreshold) {
  SetRun run = MakeRun();
  double loose = AvgExpertsPerQuery(run, Side::kESharp, -10.0);
  double tight = AvgExpertsPerQuery(run, Side::kESharp, 1.0);
  EXPECT_GT(loose, tight);
  EXPECT_DOUBLE_EQ(AvgExpertsPerQuery(run, Side::kBaseline, 0.0), 1.0);
}

TEST(MetricsTest, ImpurityCurveShrinksWithThreshold) {
  // Impurity of an empty result set is 0 by definition; as the threshold
  // loosens, more accounts (here: all irrelevant, domain mismatch) appear.
  microblog::TweetCorpus corpus = TinyCorpus();
  SetRun run = MakeRun();
  CrowdOptions crowd;
  crowd.accuracy_on_experts = 1.0;
  crowd.accuracy_on_nonexperts = 1.0;
  crowd.skip_probability = 0.0;
  auto curve = ImpurityCurve(run, Side::kESharp, corpus, {10.0, 0.0}, crowd);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].impurity, 0.0);
  EXPECT_GT(curve[1].avg_experts, 0.0);
  // Queries have domains 0/1 but the only expert's domain is 3: all
  // returned accounts are judged non-relevant by perfect workers.
  EXPECT_DOUBLE_EQ(curve[1].impurity, 1.0);
}

TEST(MetricsTest, PerfectClusteringScoresPerfectly) {
  // Two domains, two communities matching exactly.
  querylog::QueryLog log;
  uint32_t a = log.AddQuery("a1", 0, false);
  uint32_t b = log.AddQuery("a2", 0, false);
  uint32_t c = log.AddQuery("b1", 1, false);
  uint32_t d = log.AddQuery("b2", 1, false);
  (void)a; (void)b; (void)c; (void)d;
  graph::Graph g;
  g.AddVertex("a1");
  g.AddVertex("a2");
  g.AddVertex("b1");
  g.AddVertex("b2");
  g.Finalize();
  community::CommunityStore store =
      community::CommunityStore::Build(g, {0, 0, 1, 1});
  ClusterQuality q = EvaluateClustering(store, log);
  EXPECT_DOUBLE_EQ(q.purity, 1.0);
  EXPECT_NEAR(q.nmi, 1.0, 1e-9);
}

TEST(MetricsTest, MixedClusteringScoresLower) {
  querylog::QueryLog log;
  log.AddQuery("a1", 0, false);
  log.AddQuery("a2", 0, false);
  log.AddQuery("b1", 1, false);
  log.AddQuery("b2", 1, false);
  graph::Graph g;
  g.AddVertex("a1");
  g.AddVertex("a2");
  g.AddVertex("b1");
  g.AddVertex("b2");
  g.Finalize();
  // One community mixing both domains plus one pure community.
  community::CommunityStore store =
      community::CommunityStore::Build(g, {0, 0, 0, 1});
  ClusterQuality q = EvaluateClustering(store, log);
  EXPECT_LT(q.purity, 1.0);
  EXPECT_LT(q.nmi, 1.0);
  EXPECT_GT(q.nmi, 0.0);
}

TEST(MetricsTest, EmptyRunsAreZeroNotNan) {
  SetRun empty;
  EXPECT_EQ(AnsweredProportion(empty, Side::kBaseline), 0.0);
  EXPECT_EQ(AvgExpertsPerQuery(empty, Side::kESharp, 0.0), 0.0);
  auto curve = CumulativeCoverage(empty, Side::kESharp, 5);
  for (double v : curve) EXPECT_EQ(v, 0.0);
}

TEST(MetricsTest, CoverageCurveIsMonotoneNonIncreasing) {
  SetRun run = MakeRun();
  for (Side side : {Side::kBaseline, Side::kESharp}) {
    auto curve = CumulativeCoverage(run, side, 14, -10.0, 15);
    for (size_t n = 1; n < curve.size(); ++n) {
      EXPECT_LE(curve[n], curve[n - 1]);
    }
  }
}

TEST(MetricsTest, CapDominatesThreshold) {
  auto experts = MakeExperts({5, 4, 3, 2, 1});
  EXPECT_EQ(ApplyThreshold(experts, -100, 3).size(), 3u);
  // Threshold applied before the cap fills up.
  EXPECT_EQ(ApplyThreshold(experts, 3.5, 3).size(), 2u);
}

TEST(MetricsTest, ImpurityOfEmptyThresholdsIsEmpty) {
  microblog::TweetCorpus corpus = TinyCorpus();
  SetRun run = MakeRun();
  CrowdOptions crowd;
  EXPECT_TRUE(ImpurityCurve(run, Side::kESharp, corpus, {}, crowd).empty());
}

// --------------------------------------------------------------- Harness --

TEST(HarnessTest, EndToEndComparisonProducesRuns) {
  querylog::UniverseOptions uo;
  uo.num_categories = 2;
  uo.domains_per_category = 8;
  uo.seed = 411;
  querylog::TopicUniverse universe =
      *querylog::TopicUniverse::Generate(uo);
  querylog::GeneratorOptions go;
  go.seed = 412;
  querylog::GeneratedLog gen = *GenerateQueryLog(universe, go);
  core::OfflineOptions offline;
  core::OfflineArtifacts artifacts = *RunOfflinePipeline(gen.log, offline);
  microblog::CorpusOptions co;
  co.seed = 413;
  co.casual_users = 100;
  co.spam_users = 10;
  microblog::TweetCorpus corpus = *GenerateCorpus(universe, co);

  core::ESharp system(&artifacts.store, &corpus);
  QuerySetOptions qso;
  qso.per_category = 10;
  qso.top_n = 20;
  auto sets = *BuildQuerySets(universe, gen.log, qso);
  auto runs = *RunComparison(system, sets);
  ASSERT_EQ(runs.size(), sets.size());
  size_t total_queries = 0, matched = 0;
  for (const SetRun& run : runs) {
    for (const QueryRun& qr : run.runs) {
      ++total_queries;
      if (qr.expansion_matched) ++matched;
      // Stored lists are never thresholded away entirely by accident.
      EXPECT_GE(qr.esharp.size(), qr.baseline.size());
    }
  }
  EXPECT_GT(total_queries, 30u);
  EXPECT_GT(matched, total_queries / 2);
}

}  // namespace
}  // namespace esharp::eval
