// Cross-module tests: substrates flowing through the SQL engine, graph
// persistence round-trips, and Q&A generator determinism — the seams the
// per-module suites do not cover.

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "qna/corpus.h"
#include "querylog/generator.h"
#include "sqlengine/parser.h"

namespace esharp {
namespace {

// --------------------------------------------------- Graph TSV round trip --

TEST(GraphIoTest, TsvRoundTripPreservesStructure) {
  graph::Graph g;
  g.AddVertex("49ers");
  g.AddVertex("nfl");
  g.AddVertex("orphan term");
  ASSERT_TRUE(g.AddEdge(0, 1, 0.2875).ok());
  g.Finalize();

  graph::Graph parsed = *graph::Graph::ParseTsv(g.SerializeTsv());
  EXPECT_EQ(parsed.num_vertices(), 3u);
  EXPECT_EQ(parsed.num_edges(), 1u);
  EXPECT_TRUE(parsed.FindVertex("orphan term").ok());  // isolated survives
  EXPECT_DOUBLE_EQ(parsed.edges()[0].weight, 0.2875);
  EXPECT_EQ(parsed.label(parsed.edges()[0].u), "49ers");
}

TEST(GraphIoTest, ParseRejectsGarbage) {
  EXPECT_FALSE(graph::Graph::ParseTsv("x\tweird").ok());
  EXPECT_FALSE(graph::Graph::ParseTsv("e\ta\tb").ok());
  EXPECT_FALSE(graph::Graph::ParseTsv("e\ta\tb\tNaNish").ok());
  EXPECT_TRUE(graph::Graph::ParseTsv("").ok());
}

TEST(GraphIoTest, RealExtractionOutputRoundTrips) {
  querylog::UniverseOptions uo;
  uo.num_categories = 2;
  uo.domains_per_category = 6;
  uo.seed = 501;
  querylog::TopicUniverse universe =
      *querylog::TopicUniverse::Generate(uo);
  querylog::GeneratorOptions go;
  go.seed = 502;
  querylog::GeneratedLog gen = *GenerateQueryLog(universe, go);
  graph::Graph g = *graph::BuildSimilarityGraph(gen.log, {});

  graph::Graph parsed = *graph::Graph::ParseTsv(g.SerializeTsv());
  ASSERT_EQ(parsed.num_vertices(), g.num_vertices());
  ASSERT_EQ(parsed.num_edges(), g.num_edges());
  EXPECT_NEAR(parsed.TotalWeight(), g.TotalWeight(), 1e-9);
}

// --------------------------------- Substrate tables through the SQL engine --

TEST(SubstrateSqlTest, ClickLogAnalyzedWithSqlText) {
  // The simulated click log exported as a relation and analyzed with plain
  // SQL: top URLs by clicks for one query string.
  querylog::QueryLog log;
  uint32_t q1 = log.AddQuery("49ers", 0, false);
  uint32_t q2 = log.AddQuery("nfl", 0, false);
  log.AddClicks(q1, 100, 25);
  log.AddClicks(q1, 101, 10);
  log.AddClicks(q2, 102, 20);
  log.AddClicks(q2, 101, 15);

  sql::Catalog catalog;
  catalog.Register("clicks", log.ToClickTable());
  sql::Table out = *sql::ExecuteSql(
      "SELECT url, sum(clicks) AS total FROM clicks "
      "WHERE query = '49ers' GROUP BY url ORDER BY total DESC",
      catalog);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.row(0)[0].int_value(), 100);
  EXPECT_EQ(out.row(0)[1].int_value(), 25);
}

TEST(SubstrateSqlTest, EdgeTableDegreesMatchGraphDegrees) {
  // Fig. 2's vector-space story, checked through the engine: per-vertex
  // degree computed by SQL over the symmetric edge table equals the graph's
  // weighted degrees.
  graph::Graph g;
  g.AddVertex("a");
  g.AddVertex("b");
  g.AddVertex("c");
  ASSERT_TRUE(g.AddEdge(0, 1, 1.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 2.5).ok());
  g.Finalize();
  sql::Catalog catalog;
  catalog.Register("graph", g.ToEdgeTable());
  sql::Table out = *sql::ExecuteSql(
      "SELECT query1, sum(distance) AS degree FROM graph "
      "GROUP BY query1 ORDER BY query1",
      catalog);
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(out.row(0)[1].double_value(), 1.5);  // a
  EXPECT_DOUBLE_EQ(out.row(1)[1].double_value(), 4.0);  // b
  EXPECT_DOUBLE_EQ(out.row(2)[1].double_value(), 2.5);  // c
}

// ------------------------------------------------------- Q&A determinism ---

TEST(QnaDeterminismTest, SameSeedSameCorpus) {
  querylog::UniverseOptions uo;
  uo.num_categories = 2;
  uo.domains_per_category = 8;
  uo.seed = 503;
  querylog::TopicUniverse universe =
      *querylog::TopicUniverse::Generate(uo);
  qna::QnaOptions options;
  options.seed = 504;
  options.casual_users = 100;
  qna::QnaCorpus a = *GenerateQnaCorpus(universe, options);
  qna::QnaCorpus b = *GenerateQnaCorpus(universe, options);
  ASSERT_EQ(a.num_questions(), b.num_questions());
  ASSERT_EQ(a.num_answers(), b.num_answers());
  for (size_t i = 0; i < a.num_questions(); i += 7) {
    EXPECT_EQ(a.question(static_cast<uint32_t>(i)).title,
              b.question(static_cast<uint32_t>(i)).title);
  }
}

TEST(QnaDeterminismTest, AnswerBookkeepingConsistent) {
  querylog::UniverseOptions uo;
  uo.num_categories = 1;
  uo.domains_per_category = 6;
  uo.seed = 505;
  querylog::TopicUniverse universe =
      *querylog::TopicUniverse::Generate(uo);
  qna::QnaOptions options;
  options.seed = 506;
  options.casual_users = 50;
  qna::QnaCorpus corpus = *GenerateQnaCorpus(universe, options);
  // Per-user totals must equal the sums over the raw answers.
  std::vector<uint64_t> answers(corpus.num_users(), 0);
  std::vector<uint64_t> upvotes(corpus.num_users(), 0);
  for (size_t a = 0; a < corpus.num_answers(); ++a) {
    const qna::Answer& ans = corpus.answer(static_cast<uint32_t>(a));
    ++answers[ans.author];
    upvotes[ans.author] += ans.upvotes;
    EXPECT_LT(ans.question, corpus.num_questions());
  }
  for (qna::UserId u = 0; u < corpus.num_users(); ++u) {
    EXPECT_EQ(corpus.AnswersByUser(u), answers[u]);
    EXPECT_EQ(corpus.UpvotesOfUser(u), upvotes[u]);
  }
}

}  // namespace
}  // namespace esharp
