// Tests of the observability subsystem: metrics registry (concurrency,
// interning, exporters), tracing (nesting, retroactive spans, Chrome JSON),
// leveled logging (capture sink, level filter, subsystem tag) and the
// ResourceMeter -> registry mirror.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/file_io.h"
#include "obs/flightrecorder.h"
#include "obs/obs.h"
#include "obs/resource_meter.h"
#include "obs/timeseries.h"

namespace esharp::obs {
namespace {

// ---- Counter / Gauge ------------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (size_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, IncrementWithDelta) {
  Counter counter;
  counter.Increment(5);
  counter.Increment(7);
  EXPECT_EQ(counter.Value(), 12u);
}

TEST(GaugeTest, SetAndConcurrentAddAreExact) {
  Gauge gauge;
  gauge.Set(41.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 41.5);
  gauge.Set(0);
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (size_t i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  // Add is a CAS loop, so no increments are lost.
  EXPECT_DOUBLE_EQ(gauge.Value(), static_cast<double>(kThreads * kPerThread));
}

// ---- Histogram ------------------------------------------------------------

TEST(HistogramTest, PercentilesAreOrderedAndSane) {
  Histogram hist;
  // 1..1000 ms as seconds: p50 ~ 0.5 s, p99 ~ 1 s.
  for (int i = 1; i <= 1000; ++i) hist.Observe(i / 1000.0);
  HistogramSnapshot s = hist.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  // Percentiles report bucket upper bounds (~16% relative resolution), so
  // p99 may slightly exceed the exact max.
  EXPECT_LE(s.p99, s.max * 1.2);
  EXPECT_NEAR(s.p50, 0.5, 0.1);
  EXPECT_GT(s.p99, 0.9);
  EXPECT_NEAR(s.mean, 0.5005, 0.05);
  EXPECT_NEAR(s.max, 1.0, 0.01);
  hist.Reset();
  EXPECT_EQ(hist.Snapshot().count, 0u);
}

// ---- Registry -------------------------------------------------------------

TEST(MetricsRegistryTest, InternsByNameAndSortedLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reg.c", {{"x", "1"}, {"y", "2"}});
  Counter* b = registry.GetCounter("reg.c", {{"y", "2"}, {"x", "1"}});
  Counter* c = registry.GetCounter("reg.c", {{"x", "1"}});
  Counter* d = registry.GetCounter("reg.c");
  EXPECT_EQ(a, b);  // label order does not matter
  EXPECT_NE(a, c);
  EXPECT_NE(c, d);
  EXPECT_EQ(registry.size(), 3u);
  // Different kinds never alias, even under one name.
  Gauge* g = registry.GetGauge("reg.c");
  EXPECT_NE(static_cast<void*>(g), static_cast<void*>(d));
}

TEST(MetricsRegistryTest, ConcurrentGetOrCreateReturnsOnePointer) {
  MetricsRegistry registry;
  constexpr size_t kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.GetCounter("race.c", {{"k", "v"}});
      for (int i = 0; i < 1000; ++i) c->Increment();
      seen[t] = c;
    });
  }
  for (auto& t : threads) t.join();
  for (size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), kThreads * 1000u);
}

TEST(MetricsRegistryTest, JsonExportRoundTripsValues) {
  MetricsRegistry registry;
  registry.GetCounter("test.requests", {{"stage", "extract"}})->Increment(7);
  registry.GetGauge("test.depth")->Set(2.5);
  Histogram* h = registry.GetHistogram("test.latency");
  h->Observe(0.25);
  h->Observe(0.25);
  std::string json = registry.ExportJson();
  // The serialization is deterministic (map-ordered, %.12g numbers), so the
  // round trip is checked against the exact encoded forms.
  EXPECT_NE(json.find("\"counters\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("{\"name\":\"test.requests\",\"labels\":{\"stage\":"
                      "\"extract\"},\"value\":7}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"test.depth\",\"labels\":{},\"value\":2.5}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"test.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  // Structural sanity: braces and brackets balance.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, WriteJsonFileRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("file.counter")->Increment(3);
  std::string path = ::testing::TempDir() + "/obs_metrics.json";
  ASSERT_TRUE(registry.WriteJsonFile(path).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // The capture timestamp moves between the write and a fresh export;
  // everything after its line must round-trip byte-identically.
  auto strip_stamp = [](const std::string& json) {
    auto pos = json.find('\n', json.find("captured_unix_ms"));
    return json.substr(pos);
  };
  EXPECT_NE(contents->find("\"captured_unix_ms\": "), std::string::npos);
  EXPECT_EQ(strip_stamp(*contents), strip_stamp(registry.ExportJson()));
  std::remove(path.c_str());
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("prom.requests", {{"stage", "rank"}})->Increment(4);
  registry.GetGauge("prom-gauge.depth")->Set(1.5);
  registry.GetHistogram("prom.latency")->Observe(0.5);
  std::string text = registry.ExportPrometheus();
  // Names sanitize ('.'/'-' -> '_'), one # TYPE line per family.
  EXPECT_NE(text.find("# TYPE prom_requests counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("prom_requests{stage=\"rank\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE prom_gauge_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("prom_latency{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("prom_latency_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("reset.c");
  c->Increment(9);
  registry.GetHistogram("reset.h")->Observe(1.0);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(registry.GetHistogram("reset.h")->Snapshot().count, 0u);
  EXPECT_EQ(registry.GetCounter("reset.c"), c);
}

TEST(MetricsRegistryTest, DumpAllCoversGlobalRegistry) {
  MetricsRegistry::Global().GetCounter("obs_test.dump_marker")->Increment();
  EXPECT_NE(DumpAll().find("obs_test_dump_marker"), std::string::npos);
}

// ---- Tracing --------------------------------------------------------------

TEST(TracerTest, SpanNestingRecordsParentIdsAndContainment) {
  Tracer tracer;
  uint64_t parent_id, child_id;
  {
    Span parent = tracer.StartSpan("parent");
    parent_id = parent.id();
    {
      Span child = tracer.StartSpan("child", &parent);
      child_id = child.id();
      EXPECT_NE(child_id, parent_id);
    }
  }
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // The child ends (and records) first.
  EXPECT_EQ(events[0].name, "child");
  EXPECT_EQ(events[0].id, child_id);
  EXPECT_EQ(events[0].parent_id, parent_id);
  EXPECT_EQ(events[1].name, "parent");
  EXPECT_EQ(events[1].parent_id, 0u);
  // Containment: the child interval lies inside the parent interval.
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].dur_us,
            events[1].start_us + events[1].dur_us + 1.0);
}

TEST(TracerTest, CrossThreadChildKeepsParentLink) {
  Tracer tracer;
  Span parent = tracer.StartSpan("parent");
  std::thread worker([&tracer, &parent] {
    Span child = tracer.StartSpan("child", &parent);
    child.Annotate("worker", "true");
  });
  worker.join();
  parent.End();
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].parent_id, parent.id());
  // Distinct threads get distinct dense tids.
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TracerTest, AnnotationsAndRetroactiveSpans) {
  Tracer tracer;
  double t0 = NowSeconds() - 0.010;
  Span request = tracer.StartSpanAt("request", nullptr, t0);
  uint64_t admission =
      tracer.RecordSpan("admission", &request, t0, t0 + 0.005,
                        {{"outcome", "admitted"}});
  EXPECT_GT(admission, 0u);
  request.Annotate("outcome", "ok");
  request.Annotate("experts", static_cast<int64_t>(10));
  request.End();
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& adm = events[0];
  EXPECT_EQ(adm.name, "admission");
  EXPECT_EQ(adm.parent_id, request.id());
  EXPECT_NEAR(adm.dur_us, 5000.0, 100.0);
  const TraceEvent& req = events[1];
  EXPECT_GE(req.dur_us, 9000.0);  // opened ~10ms in the past
  ASSERT_FALSE(req.args.empty());
  EXPECT_EQ(req.args[0].first, "outcome");
  EXPECT_EQ(req.args[0].second, "ok");
}

TEST(TracerTest, ChromeJsonIsLoadableShape) {
  Tracer tracer;
  {
    Span parent = tracer.StartSpan("job");
    Span child = tracer.StartSpan("step", &parent);
    child.Annotate("k", "v");
  }
  std::string json = tracer.ExportChromeJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"job\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"step\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  tracer.Reset();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, InertSpansAreHarmless) {
  Span inert;  // default-constructed
  inert.Annotate("k", "v");
  inert.End();
  EXPECT_FALSE(inert.active());
  EXPECT_EQ(inert.id(), 0u);
  // The null-tolerant free function mirrors the macro's disabled path.
  Span from_null = StartSpan(nullptr, "nope");
  EXPECT_FALSE(from_null.active());
}

// ---- Logging --------------------------------------------------------------

TEST(LogTest, CapturedSinkSeesFormattedLine) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  ESHARP_LOG(WARN) << "disk almost full: " << 93 << "%";
  SetLogSink(nullptr);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kWARN);
  EXPECT_NE(captured[0].second.find("WARN"), std::string::npos);
  EXPECT_NE(captured[0].second.find("disk almost full: 93%"),
            std::string::npos);
  // Subsystem tag parsed from the path: this file lives under tests/.
  EXPECT_NE(captured[0].second.find("[tests]"), std::string::npos)
      << captured[0].second;
  EXPECT_NE(captured[0].second.find("obs_test.cc"), std::string::npos);
}

TEST(LogTest, MinLevelFiltersBelow) {
  std::vector<std::string> captured;
  SetLogSink([&captured](LogLevel, const std::string& line) {
    captured.push_back(line);
  });
  SetMinLogLevel(LogLevel::kERROR);
  ESHARP_LOG(INFO) << "dropped";
  ESHARP_LOG(WARN) << "dropped too";
  ESHARP_LOG(ERROR) << "kept";
  SetMinLogLevel(LogLevel::kINFO);
  SetLogSink(nullptr);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("kept"), std::string::npos);
}

// ---- ResourceMeter mirror -------------------------------------------------

TEST(ResourceMeterTest, MirrorsStageTotalsIntoGlobalRegistry) {
  ResourceMeter meter;
  meter.AddTime("ObsTestStage", 1.5);
  meter.AddIO("ObsTestStage", 100, 40);
  meter.AddRows("ObsTestStage", 7, 3);
  meter.SetParallelism("ObsTestStage", 8);
  ResourceMeter::StageStats stats = meter.Get("ObsTestStage");
  EXPECT_DOUBLE_EQ(stats.seconds, 1.5);
  EXPECT_EQ(stats.bytes_read, 100u);
  EXPECT_EQ(stats.rows_written, 3u);
  EXPECT_EQ(stats.parallelism, 8u);
#if ESHARP_OBS_ENABLED
  MetricsRegistry& global = MetricsRegistry::Global();
  const Labels stage{{"stage", "ObsTestStage"}};
  EXPECT_DOUBLE_EQ(global.GetGauge("resource.seconds", stage)->Value(), 1.5);
  EXPECT_DOUBLE_EQ(global.GetGauge("resource.bytes_read", stage)->Value(),
                   100.0);
  EXPECT_DOUBLE_EQ(global.GetGauge("resource.rows_written", stage)->Value(),
                   3.0);
  EXPECT_DOUBLE_EQ(global.GetGauge("resource.parallelism", stage)->Value(),
                   8.0);
#endif
}

// ---- Tracer ring bound (regression: events_ used to grow without bound) ---

TEST(TracerTest, RingCapsStorageAndCountsDrops) {
  Counter* global_dropped =
      MetricsRegistry::Global().GetCounter("trace.events_dropped");
  uint64_t global_before = global_dropped->Value();
  Tracer tracer(/*max_events=*/4);
  EXPECT_EQ(tracer.max_events(), 4u);
  for (int i = 0; i < 7; ++i) {
    Span s = tracer.StartSpan("span" + std::to_string(i));
  }
  // Storage stays at the cap no matter how many spans were recorded.
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 3u);
  EXPECT_EQ(global_dropped->Value(), global_before + 3);
  // The survivors are the newest four, still in chronological order.
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].name, "span" + std::to_string(i + 3));
    if (i > 0) EXPECT_GE(events[i].start_us, events[i - 1].start_us);
  }
  // Reset clears the ring and the per-tracer drop count.
  tracer.Reset();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  // A default-constructed tracer uses the documented large default.
  Tracer defaulted;
  EXPECT_EQ(defaulted.max_events(), Tracer::kDefaultMaxEvents);
}

TEST(TracerTest, RingExportsOnlyRetainedEvents) {
  Tracer tracer(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    Span s = tracer.StartSpan(i % 2 == 0 ? "even" : "odd");
  }
  std::string json = tracer.ExportChromeJson();
  // Retained: spans 3 ("odd") and 4 ("even") — exactly one of each name.
  EXPECT_NE(json.find("\"name\":\"odd\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"even\""), std::string::npos);
  EXPECT_EQ(tracer.Events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

// ---- Prometheus label escaping --------------------------------------------

TEST(MetricsRegistryTest, PrometheusEscapesLabelValues) {
  MetricsRegistry registry;
  // The three characters the exposition format requires escaping: backslash,
  // double quote, and newline.
  registry.GetCounter("esc.c", {{"q", "say \"hi\""}})->Increment();
  registry.GetCounter("esc.c", {{"q", "back\\slash"}})->Increment(2);
  registry.GetCounter("esc.c", {{"q", "two\nlines"}})->Increment(3);
  std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("esc_c{q=\"say \\\"hi\\\"\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("esc_c{q=\"back\\\\slash\"} 2"), std::string::npos)
      << text;
  // Newlines must be escaped to the two-character sequence \n — a raw
  // newline inside a label value corrupts the line-oriented format.
  EXPECT_NE(text.find("esc_c{q=\"two\\nlines\"} 3"), std::string::npos)
      << text;
  for (size_t pos = text.find("esc_c{"); pos != std::string::npos;
       pos = text.find("esc_c{", pos + 1)) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    // Each sample stays on one physical line.
    EXPECT_EQ(text.substr(pos, eol - pos).find('\n'), std::string::npos);
  }
}

TEST(MetricsRegistryTest, JsonEscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("jesc.c", {{"q", "a\"b\\c\nd"}})->Increment();
  std::string json = registry.ExportJson();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos) << json;
}

// ---- EventLog -------------------------------------------------------------

TEST(EventLogTest, RecordsStructuredEventsInOrder) {
  EventLog log(/*capacity=*/8);
  log.Add(LogLevel::kINFO, "serving", "snapshot published",
          {{"version", "1"}});
  log.Add(LogLevel::kERROR, "slo", "SLO breach: latency_p99",
          {{"short_burn", "2.5"}});
  std::vector<Event> events = log.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].source, "serving");
  EXPECT_EQ(events[0].fields[0].second, "1");
  EXPECT_EQ(events[1].severity, LogLevel::kERROR);
  EXPECT_GT(events[1].sequence, events[0].sequence);
  EXPECT_LE(events[0].time_seconds, events[1].time_seconds);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, RingOverwritesOldestAndCountsDrops) {
  EventLog log(/*capacity=*/3);
  for (int i = 0; i < 8; ++i) {
    log.Add(LogLevel::kINFO, "test", "event " + std::to_string(i));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 5u);
  std::vector<Event> events = log.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].message, "event 5");
  EXPECT_EQ(events[2].message, "event 7");
  std::string json = log.RenderJson();
  EXPECT_NE(json.find("\"dropped\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("event 7"), std::string::npos);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  // Sequence numbers keep advancing across Clear().
  log.Add(LogLevel::kINFO, "test", "after clear");
  EXPECT_GT(log.Events()[0].sequence, 8u);
}

// ---- JobProgressRegistry --------------------------------------------------

TEST(JobProgressTest, TracksStagesAndOutcomes) {
  JobProgressRegistry registry;
  auto job = registry.Start("offline_pipeline");
  EXPECT_EQ(registry.num_active(), 1u);
  job->SetStage("cluster");
  job->SetFraction(0.4);
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "offline_pipeline");
  EXPECT_EQ(snapshot[0].stage, "cluster");
  EXPECT_DOUBLE_EQ(snapshot[0].fraction, 0.4);
  EXPECT_FALSE(snapshot[0].finished);
  job->Finish("ok");
  job.reset();
  EXPECT_EQ(registry.num_active(), 0u);
  snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_TRUE(snapshot[0].finished);
  EXPECT_EQ(snapshot[0].outcome, "ok");
}

TEST(JobProgressTest, DroppedHandleMarksAborted) {
  JobProgressRegistry registry;
  { auto job = registry.Start("doomed"); }  // error path unwinds through it
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_TRUE(snapshot[0].finished);
  EXPECT_EQ(snapshot[0].outcome, "aborted");
  // Fractions clamp to [0, 1].
  auto job = registry.Start("clamped");
  job->SetFraction(7.0);
  EXPECT_DOUBLE_EQ(registry.Snapshot()[0].fraction, 1.0);
}

// ---- Export timestamps / SampleAll ----------------------------------------

TEST(MetricsRegistryTest, ExportsStampCaptureWallClock) {
  MetricsRegistry registry;
  registry.GetCounter("stamped")->Increment();
  std::string prom = registry.ExportPrometheus();
  EXPECT_EQ(prom.rfind("# captured_unix_ms ", 0), 0u) << prom;
  std::string json = registry.ExportJson();
  auto pos = json.find("\"captured_unix_ms\": ");
  ASSERT_NE(pos, std::string::npos) << json;
  long long ms = std::atoll(json.c_str() + pos + 20);
  EXPECT_GT(ms, 1500000000000LL);  // a real wall clock, not a steady one
  // Capture times are monotone non-decreasing across exports.
  std::string json2 = registry.ExportJson();
  auto pos2 = json2.find("\"captured_unix_ms\": ");
  ASSERT_NE(pos2, std::string::npos);
  EXPECT_GE(std::atoll(json2.c_str() + pos2 + 20), ms);
}

TEST(MetricsRegistryTest, SampleAllWalksEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("walk.counter", {{"shard", "s0"}})->Increment(7);
  registry.GetGauge("walk.gauge")->Set(2.5);
  registry.GetHistogram("walk.hist")->Observe(0.25);
  RegistrySample sample = registry.SampleAll();
  ASSERT_EQ(sample.counters.size(), 1u);
  EXPECT_EQ(sample.counters[0].key, "walk.counter{shard=\"s0\"}");
  EXPECT_EQ(sample.counters[0].name, "walk.counter");
  EXPECT_EQ(sample.counters[0].value, 7u);
  ASSERT_EQ(sample.gauges.size(), 1u);
  EXPECT_EQ(sample.gauges[0].key, "walk.gauge");
  EXPECT_DOUBLE_EQ(sample.gauges[0].value, 2.5);
  ASSERT_EQ(sample.histograms.size(), 1u);
  EXPECT_EQ(sample.histograms[0].snapshot.count, 1u);
}

// ---- Event filtering ------------------------------------------------------

TEST(EventLogTest, FilteredBySeverityCursorAndLimit) {
  EventLog log(/*capacity=*/16);
  log.Add(LogLevel::kDEBUG, "a", "noise");
  log.Add(LogLevel::kWARN, "a", "warned");
  log.Add(LogLevel::kERROR, "a", "broke");
  log.Add(LogLevel::kINFO, "a", "routine");

  EventFilter warnings;
  warnings.min_severity = LogLevel::kWARN;
  std::vector<Event> events = log.Filtered(warnings);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].message, "warned");
  EXPECT_EQ(events[1].message, "broke");

  // Cursor: only events after the first fetch's next_after.
  EventFilter after;
  after.after_sequence = events[0].sequence;
  events = log.Filtered(after);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].message, "broke");
  EXPECT_EQ(events[1].message, "routine");

  // Limit keeps the newest, not the oldest.
  EventFilter last_one;
  last_one.limit = 1;
  events = log.Filtered(last_one);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].message, "routine");
}

TEST(EventLogTest, RenderJsonCarriesCursorAndHonorsFilter) {
  EventLog log(/*capacity=*/8);
  log.Add(LogLevel::kINFO, "a", "kept-info");
  log.Add(LogLevel::kERROR, "a", "kept-error");
  EventFilter errors_only;
  errors_only.min_severity = LogLevel::kERROR;
  std::string json = log.RenderJson(errors_only);
  EXPECT_EQ(json.find("kept-info"), std::string::npos) << json;
  EXPECT_NE(json.find("kept-error"), std::string::npos);
  EXPECT_NE(json.find("\"next_after\":"), std::string::npos);
}

TEST(EventLogTest, ParseLogLevelAcceptsAliasesRejectsJunk) {
  LogLevel level = LogLevel::kDEBUG;
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWARN);
  EXPECT_TRUE(ParseLogLevel("WARNING", &level));
  EXPECT_EQ(level, LogLevel::kWARN);
  EXPECT_TRUE(ParseLogLevel("Error", &level));
  EXPECT_EQ(level, LogLevel::kERROR);
  EXPECT_FALSE(ParseLogLevel("loud", &level));
}

// ---- Time series ----------------------------------------------------------

TEST(TimeSeriesTest, ManualClockSamplerIsDeterministic) {
  MetricsRegistry registry;
  double now = 100.0;
  TimeSeriesOptions options;
  options.registry = &registry;
  options.clock = [&now] { return now; };
  TimeSeriesStore store(options);

  Counter* requests = registry.GetCounter("ts.requests");
  Gauge* depth = registry.GetGauge("ts.depth");
  depth->Set(3);
  store.Sample();  // counters only baseline on their first observation
  now = 101.0;
  requests->Increment(10);
  depth->Set(5);
  store.Sample();
  now = 103.0;
  requests->Increment(30);
  store.Sample();

#if ESHARP_OBS_ENABLED
  EXPECT_EQ(store.samples_taken(), 3u);
  std::vector<TimeSeriesPoint> rate = store.Range("ts.requests");
  ASSERT_EQ(rate.size(), 2u);
  EXPECT_DOUBLE_EQ(rate[0].time_seconds, 101.0);
  EXPECT_DOUBLE_EQ(rate[0].value, 10.0);  // 10 in 1 s
  EXPECT_DOUBLE_EQ(rate[1].value, 15.0);  // 30 in 2 s
  std::vector<TimeSeriesPoint> gauge_points = store.Range("ts.depth");
  ASSERT_EQ(gauge_points.size(), 3u);
  EXPECT_DOUBLE_EQ(gauge_points[0].value, 3.0);
  EXPECT_DOUBLE_EQ(gauge_points[2].value, 5.0);
  SeriesWindowStats stats = store.Window("ts.requests");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.min, 10.0);
  EXPECT_DOUBLE_EQ(stats.max, 15.0);
  EXPECT_DOUBLE_EQ(stats.last, 15.0);
  // Trailing window cuts on the newest point's time.
  EXPECT_EQ(store.Range("ts.depth", 1.5).size(), 1u);
#else
  // Compiled out: sampling retains nothing.
  EXPECT_EQ(store.samples_taken(), 0u);
  EXPECT_EQ(store.num_series(), 0u);
#endif
}

#if ESHARP_OBS_ENABLED
TEST(TimeSeriesTest, RingWrapsAtCapacity) {
  MetricsRegistry registry;
  double now = 0;
  TimeSeriesOptions options;
  options.registry = &registry;
  options.clock = [&now] { return now; };
  options.capacity = 4;
  TimeSeriesStore store(options);
  Gauge* gauge = registry.GetGauge("wrap");
  for (int i = 0; i < 10; ++i) {
    now = i;
    gauge->Set(i);
    store.Sample();
  }
  std::vector<TimeSeriesPoint> points = store.Range("wrap");
  ASSERT_EQ(points.size(), 4u);  // only the newest `capacity` retained
  EXPECT_DOUBLE_EQ(points[0].value, 6.0);  // oldest first
  EXPECT_DOUBLE_EQ(points[3].value, 9.0);
  EXPECT_EQ(store.capacity(), 4u);
}

TEST(TimeSeriesTest, CounterResetStartsAFreshBaseline) {
  MetricsRegistry registry;
  double now = 0;
  TimeSeriesOptions options;
  options.registry = &registry;
  options.clock = [&now] { return now; };
  TimeSeriesStore store(options);
  Counter* counter = registry.GetCounter("restart");
  counter->Increment(10);
  store.Sample();  // baseline at 10
  now = 1;
  counter->Increment(10);
  store.Sample();  // rate 10
  counter->Reset();
  counter->Increment(4);  // cumulative 4 < 20: the process "restarted"
  now = 2;
  store.Sample();
  std::vector<TimeSeriesPoint> points = store.Range("restart");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 10.0);
  // Post-reset the cumulative value itself is the delta — no negative
  // spike, no absurd positive one.
  EXPECT_DOUBLE_EQ(points[1].value, 4.0);
}

TEST(TimeSeriesTest, HistogramDecomposesIntoQuantileSeries) {
  MetricsRegistry registry;
  double now = 0;
  TimeSeriesOptions options;
  options.registry = &registry;
  options.clock = [&now] { return now; };
  TimeSeriesStore store(options);
  Histogram* hist = registry.GetHistogram("lat");
  for (int i = 1; i <= 100; ++i) hist->Observe(i * 1e-3);
  store.Sample();
  std::vector<std::string> names = store.SeriesNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "lat.p50"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "lat.p95"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "lat.p99"), names.end());
  double p50 = store.Window("lat.p50").last;
  double p95 = store.Window("lat.p95").last;
  double p99 = store.Window("lat.p99").last;
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 0.2);  // same order as the data, not garbage
  std::string json = store.RenderJson("lat.");
  EXPECT_NE(json.find("\"kind\":\"quantile\""), std::string::npos) << json;
}

TEST(TimeSeriesTest, ConcurrentSampleAndReadIsSafe) {
  MetricsRegistry registry;
  TimeSeriesOptions options;
  options.registry = &registry;
  TimeSeriesStore store(options);
  Counter* counter = registry.GetCounter("hot");
  constexpr size_t kSamples = 1000;
  std::thread sampler([&] {
    for (size_t i = 0; i < kSamples; ++i) {
      counter->Increment();
      store.Sample();
    }
  });
  while (store.samples_taken() < kSamples) {
    (void)store.SeriesNames();
    (void)store.Range("hot");
    (void)store.Window("hot");
    (void)store.RenderJson();
  }
  sampler.join();
  EXPECT_EQ(store.samples_taken(), kSamples);
}
#endif  // ESHARP_OBS_ENABLED

TEST(TimeSeriesTest, BackgroundSamplerStartStop) {
  MetricsRegistry registry;
  TimeSeriesOptions options;
  options.registry = &registry;
  TimeSeriesStore store(options);
  registry.GetGauge("bg")->Set(1);
  store.Start(/*period_seconds=*/0.001);
#if ESHARP_OBS_ENABLED
  EXPECT_TRUE(store.running());
  for (int spin = 0; spin < 2000 && store.samples_taken() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(store.samples_taken(), 2u);
#else
  EXPECT_FALSE(store.running());  // no thread is ever spawned
#endif
  store.Stop();
  EXPECT_FALSE(store.running());
  store.Stop();  // idempotent
}

// ---- Flight recorder ------------------------------------------------------

// The recorder deliberately adopts bundles already in its directory (crash
// recovery), so every test gets a directory no prior run has written to.
std::string FreshBundleDir(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "fr_" + tag + "_" +
         std::to_string(WallUnixMillis()) + "_" + std::to_string(counter++);
}

#if ESHARP_OBS_ENABLED
TEST(FlightRecorderTest, TriggerWritesBundleWithEverySection) {
  MetricsRegistry registry;
  double now = 50.0;
  TimeSeriesOptions ts_options;
  ts_options.registry = &registry;
  ts_options.clock = [&now] { return now; };
  TimeSeriesStore store(ts_options);
  registry.GetCounter("bundle.requests")->Increment(5);
  store.Sample();
  now = 51.0;
  registry.GetCounter("bundle.requests")->Increment(5);
  store.Sample();

  EventLog events(/*capacity=*/8);
  events.Add(LogLevel::kWARN, "test", "something flapped");

  FlightRecorderOptions options;
  options.dir = FreshBundleDir("sections");
  options.timeseries = &store;
  options.events = &events;
  options.statusz = [] { return std::string("shard table\nwith \"quotes\""); };
  options.clock = [&now] { return now; };
  options.wall_clock_ms = [] { return int64_t{1700000000123}; };
  FlightRecorder recorder(options);

  auto path = recorder.Trigger("unit_test", "induced");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  auto content = ReadFileToString(*path);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(content->find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(content->find("\"detail\":\"induced\""), std::string::npos);
  EXPECT_NE(content->find("\"captured_unix_ms\":1700000000123"),
            std::string::npos);
  EXPECT_NE(content->find("bundle.requests"), std::string::npos);
  EXPECT_NE(content->find("something flapped"), std::string::npos);
  EXPECT_NE(content->find("shard table\\nwith \\\"quotes\\\""),
            std::string::npos);
  ASSERT_EQ(recorder.Bundles().size(), 1u);
  EXPECT_EQ(recorder.Bundles()[0].captured_unix_ms, 1700000000123);
  EXPECT_EQ(recorder.written(), 1u);
  // The trigger itself lands in the event log, pointing at the bundle.
  std::vector<Event> logged = events.Events();
  EXPECT_EQ(logged.back().message, "incident bundle written: unit_test");
}

TEST(FlightRecorderTest, AllowlistBoundsBundleToNamedPrefixes) {
  MetricsRegistry registry;
  double now = 0;
  TimeSeriesOptions ts_options;
  ts_options.registry = &registry;
  ts_options.clock = [&now] { return now; };
  TimeSeriesStore store(ts_options);
  registry.GetGauge("serving.depth")->Set(1);
  registry.GetGauge("cluster.noise")->Set(2);
  store.Sample();

  EventLog events(/*capacity=*/4);
  FlightRecorderOptions options;
  options.dir = FreshBundleDir("allowlist");
  options.timeseries = &store;
  options.events = &events;
  options.metric_allowlist = {"serving."};
  FlightRecorder recorder(options);
  auto path = recorder.Trigger("allowlist");
  ASSERT_TRUE(path.ok());
  auto content = ReadFileToString(*path);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(content->find("serving.depth"), std::string::npos);
  EXPECT_EQ(content->find("cluster.noise"), std::string::npos) << *content;
}

TEST(FlightRecorderTest, RetentionKeepsNewestAcrossRestart) {
  std::string dir = FreshBundleDir("retention");
  EventLog events(/*capacity=*/4);
  int64_t wall = 1700000000000;
  FlightRecorderOptions options;
  options.dir = dir;
  options.max_bundles = 2;
  options.min_interval_seconds = 0;
  options.events = &events;
  options.wall_clock_ms = [&wall] { return wall; };
  std::vector<std::string> paths;
  {
    FlightRecorder recorder(options);
    for (int i = 0; i < 4; ++i) {
      wall += 1000;
      auto path = recorder.Trigger("burst");
      ASSERT_TRUE(path.ok());
      paths.push_back(*path);
    }
    std::vector<IncidentBundleInfo> kept = recorder.Bundles();
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0].sequence, 3u);
    EXPECT_EQ(kept[1].sequence, 4u);
    EXPECT_FALSE(ReadFileToString(paths[0]).ok());  // evicted from disk
    EXPECT_TRUE(ReadFileToString(paths[3]).ok());
  }
  // A fresh recorder over the same directory adopts the survivors and
  // keeps numbering after them.
  FlightRecorder revived(options);
  std::vector<IncidentBundleInfo> adopted = revived.Bundles();
  ASSERT_EQ(adopted.size(), 2u);
  EXPECT_EQ(adopted[1].sequence, 4u);
  wall += 1000;
  auto path = revived.Trigger("after_restart");
  ASSERT_TRUE(path.ok());
  std::vector<IncidentBundleInfo> after = revived.Bundles();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1].sequence, 5u);
  EXPECT_FALSE(ReadFileToString(paths[2]).ok());  // oldest survivor evicted
}

TEST(FlightRecorderTest, DebounceSuppressesBackToBackTriggers) {
  EventLog events(/*capacity=*/4);
  double steady = 1000.0;
  FlightRecorderOptions options;
  options.dir = FreshBundleDir("debounce");
  options.min_interval_seconds = 10;
  options.events = &events;
  options.clock = [&steady] { return steady; };
  FlightRecorder recorder(options);
  EXPECT_TRUE(recorder.Trigger("first").ok());
  steady += 1;
  auto debounced = recorder.Trigger("storm");
  EXPECT_FALSE(debounced.ok());
  EXPECT_EQ(recorder.suppressed(), 1u);
  steady += 10;
  EXPECT_TRUE(recorder.Trigger("next_episode").ok());
  EXPECT_EQ(recorder.written(), 2u);
}

TEST(FlightRecorderTest, SloHookFiresOnBreachNotRecovery) {
  EventLog events(/*capacity=*/4);
  FlightRecorderOptions options;
  options.dir = FreshBundleDir("slohook");
  options.min_interval_seconds = 0;
  options.events = &events;
  FlightRecorder recorder(options);
  auto hook = recorder.SloAlertHook();

  SloState recovered;
  recovered.name = "error_rate";
  recovered.breached = false;
  hook(recovered);
  EXPECT_EQ(recorder.written(), 0u);

  SloState breached;
  breached.name = "error_rate";
  breached.breached = true;
  breached.short_burn = 2.5;
  breached.long_burn = 1.25;
  hook(breached);
  ASSERT_EQ(recorder.written(), 1u);
  std::vector<IncidentBundleInfo> bundles = recorder.Bundles();
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].reason, "slo_breach:error_rate");
  auto content = ReadFileToString(bundles[0].path);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(content->find("burn short 2.50x long 1.25x"), std::string::npos)
      << *content;
}
#else  // !ESHARP_OBS_ENABLED
TEST(FlightRecorderTest, CompiledOutTriggerRefuses) {
  FlightRecorderOptions options;
  options.dir = FreshBundleDir("off");
  FlightRecorder recorder(options);
  EXPECT_FALSE(recorder.Trigger("anything").ok());
  EXPECT_TRUE(recorder.Bundles().empty());
  EXPECT_EQ(recorder.written(), 0u);
}
#endif  // ESHARP_OBS_ENABLED

TEST(ResourceMeterTest, CopyIsIndependent) {
  ResourceMeter meter;
  meter.AddTime("CopyStage", 1.0);
  ResourceMeter copy = meter;
  copy.AddTime("CopyStage", 2.0);
  EXPECT_DOUBLE_EQ(meter.Get("CopyStage").seconds, 1.0);
  EXPECT_DOUBLE_EQ(copy.Get("CopyStage").seconds, 3.0);
}

}  // namespace
}  // namespace esharp::obs
