// Randomized bit-identity suite for the common/simd.h kernels: every
// dispatched kernel must produce exactly the scalar twin's output at every
// level the machine supports. This is the contract that lets the engine
// call simd::* on correctness-critical paths (partition routing, postings
// intersection, snapshot checksums) without a behavioral SIMD/scalar split.

#include "common/simd.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace esharp {
namespace {

using simd::Level;

/// Levels to exercise: every level from scalar up to what the machine
/// supports (ForceLevelForTest clamps, so asking for more is safe but
/// would silently re-test the same level).
std::vector<Level> TestableLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (simd::DetectedLevel() >= Level::kSse42) levels.push_back(Level::kSse42);
  if (simd::DetectedLevel() >= Level::kAvx2) levels.push_back(Level::kAvx2);
  return levels;
}

/// Restores full dispatch after each forced-level block.
struct LevelGuard {
  ~LevelGuard() { simd::ForceLevelForTest(simd::DetectedLevel()); }
};

TEST(SimdDispatchTest, ForcingAboveDetectedClampsToDetected) {
  LevelGuard guard;
  simd::ForceLevelForTest(Level::kAvx2);
  EXPECT_LE(simd::ActiveLevel(), simd::DetectedLevel());
  simd::ForceLevelForTest(Level::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), Level::kScalar);
}

TEST(SimdDispatchTest, LevelNamesAreStable) {
  EXPECT_EQ(simd::LevelName(Level::kScalar), "scalar");
  EXPECT_EQ(simd::LevelName(Level::kSse42), "sse4.2");
  EXPECT_EQ(simd::LevelName(Level::kAvx2), "avx2");
}

TEST(SimdCompactTest, MatchesScalarOnRandomFlags) {
  LevelGuard guard;
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = rng.Uniform(400);
    const double density = rng.NextDouble();
    std::vector<uint8_t> flags(n);
    for (size_t i = 0; i < n; ++i) {
      // Any nonzero byte is a hit; use varied nonzero values, not just 1.
      flags[i] = rng.Bernoulli(density)
                     ? static_cast<uint8_t>(1 + rng.Uniform(255))
                     : 0;
    }
    // Exactly the contract's n + 7 capacity, so an out-of-contract store
    // trips ASan/valgrind instead of hiding in slack.
    std::vector<uint32_t> expected(n + 7, 0xAAAAAAAAu);
    const size_t want =
        simd::scalar::CompactSelection(flags.data(), n, expected.data());
    for (Level level : TestableLevels()) {
      simd::ForceLevelForTest(level);
      std::vector<uint32_t> got(n + 7, 0xBBBBBBBBu);
      const size_t k = simd::CompactSelection(flags.data(), n, got.data());
      ASSERT_EQ(k, want) << simd::LevelName(level) << " trial " << trial;
      for (size_t i = 0; i < k; ++i) {
        ASSERT_EQ(got[i], expected[i])
            << simd::LevelName(level) << " trial " << trial << " slot " << i;
      }
    }
  }
}

TEST(SimdCompactTest, AllAndNoneSelected) {
  LevelGuard guard;
  for (Level level : TestableLevels()) {
    simd::ForceLevelForTest(level);
    std::vector<uint8_t> all(129, 1), none(129, 0);
    std::vector<uint32_t> out(129 + 7);
    EXPECT_EQ(simd::CompactSelection(all.data(), all.size(), out.data()),
              all.size());
    EXPECT_EQ(simd::CompactSelection(none.data(), none.size(), out.data()),
              0u);
  }
}

TEST(SimdHashTest, CombineBatchMatchesScalarChain) {
  LevelGuard guard;
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = rng.Uniform(300);
    std::vector<uint64_t> seed(n), h(n);
    for (size_t i = 0; i < n; ++i) {
      seed[i] = rng.Next();
      h[i] = rng.Next();
    }
    std::vector<uint64_t> expected = seed;
    for (size_t i = 0; i < n; ++i) {
      expected[i] = HashCombine(expected[i], h[i]);
    }
    for (Level level : TestableLevels()) {
      simd::ForceLevelForTest(level);
      std::vector<uint64_t> acc = seed;
      simd::HashCombineBatch(acc.data(), h.data(), n);
      ASSERT_EQ(acc, expected) << simd::LevelName(level) << " trial " << trial;
    }
  }
}

TEST(SimdHashTest, CombineMix64BatchMatchesScalarChain) {
  LevelGuard guard;
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = rng.Uniform(300);
    std::vector<uint64_t> seed(n), keys(n);
    for (size_t i = 0; i < n; ++i) {
      seed[i] = rng.Next();
      keys[i] = rng.Next();
    }
    std::vector<uint64_t> expected = seed;
    for (size_t i = 0; i < n; ++i) {
      expected[i] = HashCombine(expected[i], Mix64(keys[i]));
    }
    for (Level level : TestableLevels()) {
      simd::ForceLevelForTest(level);
      std::vector<uint64_t> acc = seed;
      simd::HashCombineMix64Batch(acc.data(), keys.data(), n);
      ASSERT_EQ(acc, expected) << simd::LevelName(level) << " trial " << trial;
    }
  }
}

TEST(SimdHashTest, HashF64CanonicalizesSignedZero) {
  EXPECT_EQ(HashF64(0.0), HashF64(-0.0));
  EXPECT_EQ(HashF64(1.0), Mix64(CanonicalF64Bits(1.0)));
  EXPECT_NE(HashF64(1.0), HashF64(2.0));
}

/// Random sorted-unique u32 array with controllable value density, so the
/// intersection tests cover sparse-vs-sparse, dense-vs-dense and the
/// mixed cases the adaptive matcher switches between.
std::vector<uint32_t> RandomSortedUnique(Rng* rng, size_t max_len,
                                         uint32_t value_range) {
  const size_t len = rng->Uniform(max_len + 1);
  std::set<uint32_t> values;
  for (size_t i = 0; i < len; ++i) {
    values.insert(static_cast<uint32_t>(rng->Uniform(value_range)));
  }
  return std::vector<uint32_t>(values.begin(), values.end());
}

TEST(SimdIntersectTest, MatchesScalarAndStdOnRandomArrays) {
  LevelGuard guard;
  Rng rng(17);
  for (int trial = 0; trial < 80; ++trial) {
    const uint32_t range = 1 + static_cast<uint32_t>(rng.Uniform(500));
    std::vector<uint32_t> a = RandomSortedUnique(&rng, 300, range);
    std::vector<uint32_t> b = RandomSortedUnique(&rng, 300, range);
    std::vector<uint32_t> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    std::vector<uint32_t> scalar_out(std::min(a.size(), b.size()));
    const size_t scalar_k = simd::scalar::IntersectSortedU32(
        a.data(), a.size(), b.data(), b.size(), scalar_out.data());
    scalar_out.resize(scalar_k);
    ASSERT_EQ(scalar_out, expected) << "scalar twin diverges from std";
    for (Level level : TestableLevels()) {
      simd::ForceLevelForTest(level);
      std::vector<uint32_t> got(std::min(a.size(), b.size()) + 1,
                                0xCCCCCCCCu);
      const size_t k = simd::IntersectSortedU32(a.data(), a.size(), b.data(),
                                                b.size(), got.data());
      got.resize(k);
      ASSERT_EQ(got, expected) << simd::LevelName(level) << " trial "
                               << trial;
    }
  }
}

TEST(SimdIntersectTest, SkewedLengthsAndBlockBoundaries) {
  LevelGuard guard;
  Rng rng(19);
  // Exact multiples of the 4/8-lane block sizes plus off-by-ones, where
  // the vector loop hands off to the scalar tail.
  const size_t sizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33};
  for (size_t na : sizes) {
    for (size_t nb : sizes) {
      std::vector<uint32_t> a, b;
      for (size_t i = 0; i < na; ++i) {
        a.push_back(static_cast<uint32_t>(2 * i));
      }
      for (size_t i = 0; i < nb; ++i) {
        b.push_back(static_cast<uint32_t>(3 * i));
      }
      std::vector<uint32_t> expected;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(expected));
      for (Level level : TestableLevels()) {
        simd::ForceLevelForTest(level);
        std::vector<uint32_t> got(std::max<size_t>(1, std::min(na, nb)));
        const size_t k = simd::IntersectSortedU32(
            a.data(), na, b.data(), nb, got.data());
        got.resize(k);
        ASSERT_EQ(got, expected)
            << simd::LevelName(level) << " na=" << na << " nb=" << nb;
      }
    }
  }
}

TEST(SimdMinTest, MatchesScalarOnRandomArrays) {
  LevelGuard guard;
  Rng rng(23);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 1 + rng.Uniform(100);
    std::vector<uint32_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint32_t>(rng.Next());
    }
    const uint32_t expected = *std::min_element(v.begin(), v.end());
    ASSERT_EQ(simd::scalar::MinU32(v.data(), n), expected);
    for (Level level : TestableLevels()) {
      simd::ForceLevelForTest(level);
      ASSERT_EQ(simd::MinU32(v.data(), n), expected)
          << simd::LevelName(level) << " trial " << trial << " n=" << n;
    }
  }
}

TEST(SimdChecksumTest, MatchesScalarOnRandomBuffers) {
  LevelGuard guard;
  Rng rng(29);
  for (int trial = 0; trial < 60; ++trial) {
    // Sizes straddle the 16/32-byte vector strides and 8-byte tails.
    const size_t n = rng.Uniform(600);
    std::vector<uint8_t> buf(n);
    for (size_t i = 0; i < n; ++i) {
      buf[i] = static_cast<uint8_t>(rng.Next());
    }
    const uint64_t expected = simd::scalar::Checksum64(buf.data(), n);
    for (Level level : TestableLevels()) {
      simd::ForceLevelForTest(level);
      ASSERT_EQ(simd::Checksum64(buf.data(), n), expected)
          << simd::LevelName(level) << " trial " << trial << " n=" << n;
    }
  }
}

TEST(SimdChecksumTest, DetectsFlipsSwapsAndLengthChanges) {
  std::vector<uint8_t> buf(257);
  Rng rng(31);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(rng.Next());
  }
  const uint64_t base = simd::Checksum64(buf.data(), buf.size());
  // Single byte flip, anywhere.
  for (size_t i = 0; i < buf.size(); i += 37) {
    std::vector<uint8_t> mutated = buf;
    mutated[i] ^= 0x40;
    EXPECT_NE(simd::Checksum64(mutated.data(), mutated.size()), base)
        << "flip at " << i;
  }
  // Swapping two distinct 8-byte words must change the fold (the
  // positional (i+1)*step term exists exactly for this).
  std::vector<uint8_t> swapped = buf;
  for (size_t i = 0; i < 8; ++i) std::swap(swapped[i], swapped[64 + i]);
  EXPECT_NE(simd::Checksum64(swapped.data(), swapped.size()), base);
  // A truncated buffer must not collide via zero padding.
  EXPECT_NE(simd::Checksum64(buf.data(), buf.size() - 1), base);
  EXPECT_EQ(simd::Checksum64(buf.data(), buf.size()), base);
}

}  // namespace
}  // namespace esharp
