// The streaming-ingestion suite (ctest -L ingest): every delta-published
// generation must be *bit-identical* to an offline from-scratch rebuild
// over the same accumulated inputs — across randomized interleavings of
// tweet appends, query-log triples, users and publishes; both clustering
// backends; and the sharded tier end to end through the router. The
// structural-sharing tests pin the delta claims (clean pools and reused
// stores ARE the previous generation's objects, not copies), and the
// stress test at the bottom (concurrent ingest x queries x hot-swap)
// joins the serving label's TSan runs.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "community/component_cd.h"
#include "community/parallel_cd.h"
#include "community/sql_cd.h"
#include "esharp/esharp.h"
#include "graph/builder.h"
#include "ingest/ingest.h"
#include "ingest/introspect.h"
#include "ingest/sharded.h"
#include "ingest/verify.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "serving/engine.h"
#include "serving/snapshot.h"

namespace esharp {
namespace {

using ingest::IngestOptions;
using ingest::IngestPipeline;
using ingest::PublishStats;
using ingest::ShardedIngest;

// Small vocabularies so random draws collide: queries share urls (edges
// form), tweets share tokens with query terms (evidence pools fill).
const char* kTopics[] = {"solar", "panels", "nhl", "hockey", "sushi",
                         "kernel", "tuning", "yoga", "lisp", "macros"};
constexpr size_t kNumTopics = 10;

IngestOptions TestOptions(core::ClusteringBackend backend =
                              core::ClusteringBackend::kParallelNative) {
  IngestOptions options;
  options.extraction.min_query_count = 3;
  options.extraction.min_similarity = 0.10;
  // Tiny fanout cap so the fuzz actually exercises hub flips.
  options.extraction.max_url_fanout = 4;
  options.backend = backend;
  return options;
}

std::string RandomQuery(Rng& rng) {
  std::string q = kTopics[rng.Uniform(kNumTopics)];
  if (rng.Bernoulli(0.4)) {
    q += " ";
    q += kTopics[rng.Uniform(kNumTopics)];
  }
  return q;
}

std::string RandomTweetText(Rng& rng) {
  std::string text = "about";
  size_t words = 1 + rng.Uniform(4);
  for (size_t i = 0; i < words; ++i) {
    text += " ";
    text += kTopics[rng.Uniform(kNumTopics)];
  }
  return text;
}

microblog::UserProfile MakeUser(microblog::UserId id) {
  microblog::UserProfile user;
  user.id = id;
  user.screen_name = "user" + std::to_string(id);
  user.followers = 10 + id;
  return user;
}

// One random append, drawn from the full op mix. `target` abstracts over
// IngestPipeline and ShardedIngest (same writer API).
template <typename Target>
void RandomAppend(Rng& rng, Target& target, microblog::UserId* num_users) {
  switch (rng.Uniform(10)) {
    case 0: {  // new user
      target.AppendUser(MakeUser((*num_users)++));
      break;
    }
    case 1:
    case 2: {  // query-log triples
      if (rng.Bernoulli(0.5)) {
        target.AppendSearches(RandomQuery(rng), 1 + rng.Uniform(3));
      } else {
        target.AppendClicks(RandomQuery(rng), rng.Uniform(12),
                            rng.Uniform(4));
      }
      break;
    }
    default: {  // tweet (the realistic majority of traffic)
      microblog::UserId author = rng.Uniform(*num_users);
      std::vector<microblog::UserId> mentions;
      if (rng.Bernoulli(0.3)) mentions.push_back(rng.Uniform(*num_users));
      target.AppendTweet(author, RandomTweetText(rng), mentions,
                         rng.Uniform(5));
      break;
    }
  }
}

std::vector<std::string> ProbeQueries() {
  std::vector<std::string> probes;
  for (size_t i = 0; i < kNumTopics; ++i) probes.push_back(kTopics[i]);
  probes.push_back("solar panels");
  probes.push_back("never seen query");
  return probes;
}

// ------------------------------------------------- randomized fuzz gate ----

// Arbitrary interleavings of appends and publishes must converge to a
// world bit-identical to a from-scratch offline build. This is the PR's
// core claim, checked surface by surface (corpus, graph, store, evidence,
// ranked answers) by VerifyAgainstRebuild.
void FuzzOnce(uint64_t seed, core::ClusteringBackend backend) {
  Rng rng(seed);
  serving::SnapshotManager manager;
  IngestPipeline pipeline(&manager, TestOptions(backend));
  microblog::UserId num_users = 0;
  pipeline.AppendUser(MakeUser(num_users++));

  size_t ops = 200 + rng.Uniform(200);
  for (size_t i = 0; i < ops; ++i) {
    RandomAppend(rng, pipeline, &num_users);
    if (rng.Bernoulli(0.03)) {
      ASSERT_TRUE(pipeline.Publish().ok());
    }
  }
  ASSERT_TRUE(pipeline.Publish().ok());
  Status gate = ingest::VerifyAgainstRebuild(pipeline, ProbeQueries());
  EXPECT_TRUE(gate.ok()) << "seed " << seed << ": " << gate.message();
}

TEST(IngestFuzz, ParallelBackendConvergesToRebuild) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    FuzzOnce(seed, core::ClusteringBackend::kParallelNative);
  }
}

TEST(IngestFuzz, SqlBackendConvergesToRebuild) {
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    FuzzOnce(seed, core::ClusteringBackend::kSqlEngine);
  }
}

TEST(IngestFuzz, FullReextractionSafetyValveMatchesIncremental) {
  // incremental_graph=false re-extracts from the accumulated log on every
  // publish; the gate must hold the same way (and this pins that the
  // incremental adjacency is not what the gate itself is built from).
  Rng rng(7);
  serving::SnapshotManager manager;
  IngestOptions options = TestOptions();
  options.incremental_graph = false;
  IngestPipeline pipeline(&manager, options);
  microblog::UserId num_users = 0;
  pipeline.AppendUser(MakeUser(num_users++));
  for (size_t i = 0; i < 250; ++i) {
    RandomAppend(rng, pipeline, &num_users);
    if (rng.Bernoulli(0.05)) ASSERT_TRUE(pipeline.Publish().ok());
  }
  ASSERT_TRUE(pipeline.Publish().ok());
  Status gate = ingest::VerifyAgainstRebuild(pipeline, ProbeQueries());
  EXPECT_TRUE(gate.ok()) << gate.message();
}

TEST(IngestFuzz, VerifyRequiresDrainedPipeline) {
  serving::SnapshotManager manager;
  IngestPipeline pipeline(&manager, TestOptions());
  pipeline.AppendUser(MakeUser(0));
  ASSERT_TRUE(pipeline.Publish().ok());
  pipeline.AppendTweet(0, "solar panels", {}, 0);
  Status gate = ingest::VerifyAgainstRebuild(pipeline, {});
  EXPECT_EQ(gate.code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------- structural sharing ----

TEST(IngestDelta, TweetOnlyBatchReusesStoreAndSharesCleanPools) {
  Rng rng(21);
  serving::SnapshotManager manager;
  IngestPipeline pipeline(&manager, TestOptions());
  microblog::UserId num_users = 0;
  pipeline.AppendUser(MakeUser(num_users++));
  // Seed a world with enough log structure for a non-empty vocabulary.
  for (size_t i = 0; i < 300; ++i) RandomAppend(rng, pipeline, &num_users);
  ASSERT_TRUE(pipeline.Publish().ok());
  ASSERT_GT(pipeline.published_vocabulary().size(), 0u);

  auto prev_store = pipeline.published_store();
  auto prev_graph = pipeline.published_graph();
  auto prev_evidence = pipeline.published_evidence();
  auto prev_corpus = pipeline.published_corpus();

  // A batch of one tweet matching exactly one topic token.
  std::string dirty_term;
  for (const std::string& term : pipeline.published_vocabulary()) {
    if (term.find(' ') == std::string::npos) {
      dirty_term = term;
      break;
    }
  }
  ASSERT_FALSE(dirty_term.empty());
  pipeline.AppendTweet(0, "about " + dirty_term, {}, 1);
  Result<PublishStats> stats = pipeline.Publish();
  ASSERT_TRUE(stats.ok());

  // No query-log change: graph, store, clustering reused wholesale — the
  // very same objects, not equal copies.
  EXPECT_FALSE(stats->graph_changed);
  EXPECT_EQ(pipeline.published_store().get(), prev_store.get());
  EXPECT_EQ(pipeline.published_graph().get(), prev_graph.get());

  // Evidence: the dirty term re-collected, every other pool shared.
  auto next_evidence = pipeline.published_evidence();
  size_t shared = 0, rebuilt = 0;
  for (const std::string& term : pipeline.published_vocabulary()) {
    auto prev_pool = prev_evidence->FindShared(term);
    auto next_pool = next_evidence->FindShared(term);
    ASSERT_TRUE(prev_pool != nullptr && next_pool != nullptr) << term;
    bool contains_dirty = term == dirty_term;
    if (prev_pool.get() == next_pool.get()) {
      ++shared;
      EXPECT_FALSE(contains_dirty) << term;
    } else {
      ++rebuilt;
    }
  }
  EXPECT_GE(rebuilt, 1u);
  EXPECT_EQ(stats->evidence_reused, shared);

  // Corpus generations COW-share postings of tokens the batch never
  // touched: same vector object across generations.
  auto next_corpus = pipeline.published_corpus();
  std::vector<std::string> tokens = prev_corpus->TokenStrings();
  bool found_shared_postings = false;
  for (microblog::TokenId t = 0; t < tokens.size(); ++t) {
    if (tokens[t] == "about" || tokens[t] == dirty_term) continue;
    microblog::TokenId nt = next_corpus->FindToken(tokens[t]);
    ASSERT_NE(nt, microblog::kNoToken);
    if (&prev_corpus->Postings(t) == &next_corpus->Postings(nt)) {
      found_shared_postings = true;
      break;
    }
  }
  EXPECT_TRUE(found_shared_postings);
}

// --------------------------------------- component CD == monolithic CD ----

TEST(ComponentCd, MatchesMonolithicOnRandomGraphs) {
  for (uint64_t seed = 31; seed <= 35; ++seed) {
    Rng rng(seed);
    graph::Graph g;
    size_t n = 20 + rng.Uniform(40);
    for (size_t v = 0; v < n; ++v) g.AddVertex("q" + std::to_string(v));
    // Several dense pockets + sprinkled cross edges inside pockets only,
    // so multiple connected components actually form.
    size_t pockets = 3 + rng.Uniform(3);
    for (size_t v = 0; v < n; ++v) {
      size_t pocket = v % pockets;
      for (size_t u = pocket; u < v; u += pockets) {
        if (rng.Bernoulli(0.4)) {
          ASSERT_TRUE(g.AddEdge(u, v, 0.1 + rng.NextDouble()).ok());
        }
      }
    }
    g.Finalize();

    community::ParallelCdOptions mono;
    Result<community::DetectionResult> want =
        DetectCommunitiesParallel(g, mono);
    ASSERT_TRUE(want.ok());
    community::ComponentCdOptions by_component;
    Result<community::DetectionResult> got =
        DetectCommunitiesByComponent(g, by_component);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->assignment, want->assignment) << "seed " << seed;

    community::SqlCdOptions sql_mono;
    Result<community::DetectionResult> sql_want =
        DetectCommunitiesSql(g, sql_mono);
    ASSERT_TRUE(sql_want.ok());
    community::ComponentCdOptions sql_by_component;
    sql_by_component.use_sql = true;
    Result<community::DetectionResult> sql_got =
        DetectCommunitiesByComponent(g, sql_by_component);
    ASSERT_TRUE(sql_got.ok());
    EXPECT_EQ(sql_got->assignment, sql_want->assignment) << "seed " << seed;
  }
}

// ------------------------------------------------------- sharded tier ----

void ShardedFuzzOnce(uint64_t seed, uint32_t num_shards) {
  Rng rng(seed);
  ShardedIngest sharded(num_shards, TestOptions());
  microblog::UserId num_users = 0;
  sharded.AppendUser(MakeUser(num_users++));
  size_t ops = 200 + rng.Uniform(100);
  for (size_t i = 0; i < ops; ++i) {
    RandomAppend(rng, sharded, &num_users);
    if (rng.Bernoulli(0.03)) {
      ASSERT_TRUE(sharded.Publish().ok());
    }
  }
  ASSERT_TRUE(sharded.Publish().ok());
  Status gate = ingest::VerifySharded(sharded, ProbeQueries());
  EXPECT_TRUE(gate.ok()) << "seed " << seed << " shards " << num_shards
                         << ": " << gate.message();
}

TEST(ShardedIngestFuzz, RouterStaysBitIdenticalAcrossShardCounts) {
  ShardedFuzzOnce(41, 1);
  ShardedFuzzOnce(42, 2);
  ShardedFuzzOnce(43, 4);
}

// ------------------------------------------------------- observability ----

TEST(IngestObs, GaugesAndObjectivesTrackBacklogAndLag) {
  obs::MetricsRegistry metrics;
  serving::SnapshotManager manager;
  IngestOptions options = TestOptions();
  options.metrics = &metrics;
  IngestPipeline pipeline(&manager, options);

  std::vector<obs::SloObjective> objectives =
      ingest::DefaultIngestObjectives(&pipeline);
  ASSERT_EQ(objectives.size(), 2u);
  EXPECT_EQ(objectives[0].name, "ingest_lag");
  EXPECT_EQ(objectives[1].name, "ingest_backlog");
  EXPECT_EQ(objectives[1].value(), 0.0);

  pipeline.AppendUser(MakeUser(0));
  pipeline.AppendTweet(0, "solar panels", {}, 0);
  EXPECT_EQ(pipeline.backlog(), 2u);
  EXPECT_EQ(objectives[1].value(), 2.0);
  EXPECT_GE(objectives[0].value(), 0.0);
  pipeline.RefreshGauges();
  EXPECT_EQ(metrics.GetGauge("ingest.backlog")->Value(), 2.0);

  ASSERT_TRUE(pipeline.Publish().ok());
  EXPECT_EQ(pipeline.backlog(), 0u);
  EXPECT_EQ(objectives[1].value(), 0.0);
  EXPECT_EQ(objectives[0].value(), 0.0);
  EXPECT_EQ(metrics.GetGauge("ingest.backlog")->Value(), 0.0);
  EXPECT_EQ(metrics.GetGauge("ingest.lag_ms")->Value(), 0.0);
}

// ------------------------------------------- concurrency (TSan target) ----

// One writer appends and publishes at full speed while query threads
// hammer a ServingEngine over the same manager: generation hot-swap,
// COW corpus sharing and the atomic introspection counters all race
// here if they can race at all.
TEST(IngestStress, ConcurrentIngestQueriesAndHotSwap) {
  Rng rng(51);
  serving::SnapshotManager manager;
  IngestPipeline pipeline(&manager, TestOptions());
  microblog::UserId num_users = 0;
  pipeline.AppendUser(MakeUser(num_users++));
  for (size_t i = 0; i < 200; ++i) RandomAppend(rng, pipeline, &num_users);
  ASSERT_TRUE(pipeline.Publish().ok());

  serving::ServingOptions serving_options;
  serving_options.enable_cache = false;
  serving::ServingEngine engine(&manager, serving_options);

  std::atomic<bool> stop{false};
  std::atomic<size_t> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&engine, &stop, &answered, t] {
      Rng reader_rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        serving::QueryRequest request;
        request.query = kTopics[reader_rng.Uniform(kNumTopics)];
        Result<serving::QueryResponse> response =
            engine.Query(std::move(request));
        if (response.ok()) answered.fetch_add(1, std::memory_order_relaxed);
        // Watchdog-style sampling from a non-writer thread.
        (void)answered;
      }
    });
  }
  std::thread watchdog([&pipeline, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)pipeline.backlog();
      (void)pipeline.lag_ms();
      (void)pipeline.dirty_term_count();
      std::this_thread::yield();
    }
  });

  // Keep publishing until the readers have demonstrably raced the
  // hot-swap (publishes are fast enough to finish before a single query
  // lands otherwise), bounded so a wedged engine cannot hang the suite.
  size_t batch = 0;
  while (batch < 15 || (answered.load() < 50 && batch < 5000)) {
    size_t appends = 5 + rng.Uniform(20);
    for (size_t i = 0; i < appends; ++i) {
      RandomAppend(rng, pipeline, &num_users);
    }
    ASSERT_TRUE(pipeline.Publish().ok());
    ++batch;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  watchdog.join();
  EXPECT_GT(answered.load(), 0u);

  Status gate = ingest::VerifyAgainstRebuild(pipeline, ProbeQueries());
  EXPECT_TRUE(gate.ok()) << gate.message();
}

}  // namespace
}  // namespace esharp
