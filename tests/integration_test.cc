// End-to-end integration test: builds a full (small) experiment world and
// asserts the paper's headline claims hold as *shapes* — the same checks
// the bench binaries print for humans, here enforced by the suite.

#include <gtest/gtest.h>

#include "esharp/esharp.h"
#include "esharp/pipeline.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/query_sets.h"
#include "microblog/generator.h"
#include "querylog/generator.h"

namespace esharp {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    querylog::UniverseOptions uo;
    uo.num_categories = 6;
    uo.domains_per_category = 25;
    uo.seed = 901;
    universe_ = new querylog::TopicUniverse(
        *querylog::TopicUniverse::Generate(uo));

    querylog::GeneratorOptions go;
    go.seed = 902;
    generated_ = new querylog::GeneratedLog(
        *GenerateQueryLog(*universe_, go));

    core::OfflineOptions offline;
    artifacts_ = new core::OfflineArtifacts(
        *RunOfflinePipeline(generated_->log, offline));

    microblog::CorpusOptions co;
    co.seed = 903;
    co.casual_users = 500;
    co.spam_users = 40;
    corpus_ = new microblog::TweetCorpus(*GenerateCorpus(*universe_, co));

    core::ESharp system(&artifacts_->store, corpus_);
    eval::QuerySetOptions qso;
    qso.per_category = 40;
    qso.top_n = 100;
    auto sets = *BuildQuerySets(*universe_, generated_->log, qso);
    runs_ = new std::vector<eval::SetRun>(*RunComparison(system, sets));
  }

  static void TearDownTestSuite() {
    delete universe_;
    delete generated_;
    delete artifacts_;
    delete corpus_;
    delete runs_;
  }

  static querylog::TopicUniverse* universe_;
  static querylog::GeneratedLog* generated_;
  static core::OfflineArtifacts* artifacts_;
  static microblog::TweetCorpus* corpus_;
  static std::vector<eval::SetRun>* runs_;
};

querylog::TopicUniverse* IntegrationTest::universe_ = nullptr;
querylog::GeneratedLog* IntegrationTest::generated_ = nullptr;
core::OfflineArtifacts* IntegrationTest::artifacts_ = nullptr;
microblog::TweetCorpus* IntegrationTest::corpus_ = nullptr;
std::vector<eval::SetRun>* IntegrationTest::runs_ = nullptr;

// --- Fig. 5 shape: steep decay, fast convergence. --------------------------

TEST_F(IntegrationTest, ConvergenceIsSteepThenFlat) {
  const auto& series = artifacts_->communities_per_iteration;
  ASSERT_GE(series.size(), 3u);
  // First iteration removes a large share of communities.
  EXPECT_LT(series[1], series[0]);
  EXPECT_LT(static_cast<double>(series[1]),
            0.8 * static_cast<double>(series[0]));
  // Converges within the paper's ballpark (roughly 6; allow headroom).
  EXPECT_LE(series.size(), 12u);
}

// --- Fig. 6 shape: modal bucket is 2-10, meaningful orphan share. ----------

TEST_F(IntegrationTest, SizeDistributionMatchesPaperShape) {
  community::SizeHistogram h = artifacts_->store.ComputeSizeHistogram();
  double total = static_cast<double>(h.total());
  ASSERT_GT(total, 0);
  EXPECT_GT(h.small / total, 0.35);    // paper ~60%
  EXPECT_GT(h.orphans / total, 0.05);  // paper ~20%
  EXPECT_LT(h.large / total, 0.10);    // paper: very few
}

// --- Clustering quality: communities recover the latent domains. -----------

TEST_F(IntegrationTest, ClusteringRecoversLatentDomains) {
  eval::ClusterQuality q =
      eval::EvaluateClustering(artifacts_->store, generated_->log);
  EXPECT_GT(q.purity, 0.8);
  EXPECT_GT(q.nmi, 0.8);
}

// --- Table 8 shape: e# answers at least as many queries, biggest gain on
// --- the head-query set. ----------------------------------------------------

TEST_F(IntegrationTest, ESharpAnswersMoreQueriesEverywhere) {
  for (const eval::SetRun& run : *runs_) {
    double baseline = eval::AnsweredProportion(run, eval::Side::kBaseline);
    double esharp_prop = eval::AnsweredProportion(run, eval::Side::kESharp);
    EXPECT_GE(esharp_prop, baseline) << "set " << run.name;
  }
}

TEST_F(IntegrationTest, TopSetGainIsLargest) {
  double top_gain = 0, best_category_gain = 0;
  for (const eval::SetRun& run : *runs_) {
    double baseline = eval::AnsweredProportion(run, eval::Side::kBaseline);
    double esharp_prop = eval::AnsweredProportion(run, eval::Side::kESharp);
    double gain = baseline > 0 ? (esharp_prop - baseline) / baseline : 0;
    if (run.name.rfind("top", 0) == 0) {
      top_gain = gain;
    } else {
      best_category_gain = std::max(best_category_gain, gain);
    }
  }
  EXPECT_GT(top_gain, 0.0);
  // The head-query set benefits at least as much as a typical category set
  // (the paper's strongest improvement is on Top 250).
  EXPECT_GE(top_gain, 0.5 * best_category_gain);
}

// --- Fig. 8 shape: e# coverage curve dominates at (almost) every n. --------

TEST_F(IntegrationTest, CoverageCurveDominates) {
  for (const eval::SetRun& run : *runs_) {
    auto baseline = eval::CumulativeCoverage(run, eval::Side::kBaseline, 14);
    auto esharp_curve = eval::CumulativeCoverage(run, eval::Side::kESharp, 14);
    size_t dominated = 0;
    for (size_t n = 0; n <= 14; ++n) {
      if (esharp_curve[n] + 1e-9 >= baseline[n]) ++dominated;
    }
    EXPECT_GE(dominated, 14u) << "set " << run.name;
  }
}

// --- Fig. 9 shape: monotone decrease in the threshold; e# dominates. -------

TEST_F(IntegrationTest, ThresholdSweepIsMonotoneAndDominated) {
  const eval::SetRun& top = runs_->back();
  double prev_b = 1e18, prev_e = 1e18;
  for (double z = 0.0; z <= 8.0; z += 1.0) {
    double b = eval::AvgExpertsPerQuery(top, eval::Side::kBaseline, z);
    double e = eval::AvgExpertsPerQuery(top, eval::Side::kESharp, z);
    EXPECT_LE(b, prev_b + 1e-9);
    EXPECT_LE(e, prev_e + 1e-9);
    EXPECT_GE(e, b);
    prev_b = b;
    prev_e = e;
  }
}

// --- Fig. 10 shape: at matched sizes, e# impurity is not (much) worse. -----

TEST_F(IntegrationTest, ImpurityPenaltyIsBounded) {
  eval::CrowdOptions crowd;
  std::vector<double> thresholds = {2.0, 1.0, 0.5, 0.0};
  for (const eval::SetRun& run : *runs_) {
    auto baseline = eval::ImpurityCurve(run, eval::Side::kBaseline, *corpus_,
                                  thresholds, crowd);
    auto esharp_curve = eval::ImpurityCurve(run, eval::Side::kESharp, *corpus_,
                                      thresholds, crowd);
    for (size_t i = 0; i < thresholds.size(); ++i) {
      if (baseline[i].avg_experts < 0.5) continue;  // nothing to compare
      EXPECT_LE(esharp_curve[i].impurity, baseline[i].impurity + 0.15)
          << "set " << run.name << " z=" << thresholds[i];
    }
  }
}

// --- Superset property: expansion can only add candidates. -----------------

TEST_F(IntegrationTest, CandidatePoolIsSuperset) {
  for (const eval::SetRun& run : *runs_) {
    for (const eval::QueryRun& qr : run.runs) {
      EXPECT_GE(qr.esharp.size(), qr.baseline.size())
          << "query " << qr.query.text;
      EXPECT_GE(qr.expanded_terms, 1u);
    }
  }
}

}  // namespace
}  // namespace esharp
