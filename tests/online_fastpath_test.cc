// The online fast-path equivalence suite (ctest -L online): PR 5's
// snapshot-time evidence index, interned-token matching and parallel live
// fan-out must be *bit-identical* to the reference serial detector — same
// ranked experts, same doubles, on randomized worlds — and the deadline
// must cancel cooperatively inside candidate collection. Also exercised
// under TSan via -DESHARP_SANITIZE=thread (the stress test at the bottom).

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "community/store.h"
#include "esharp/pipeline.h"
#include "expert/detector.h"
#include "expert/evidence_index.h"
#include "microblog/corpus.h"
#include "microblog/generator.h"
#include "querylog/generator.h"
#include "serving/engine.h"

namespace esharp {
namespace {

using expert::CandidateEvidence;
using expert::RankedExpert;

// ------------------------------------------------------------- helpers ----

void ExpectSameExperts(const std::vector<RankedExpert>& a,
                       const std::vector<RankedExpert>& b,
                       const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(context + " expert #" + std::to_string(i));
    EXPECT_EQ(a[i].user, b[i].user);
    // Exact equality on purpose: the fast path must not perturb a single
    // bit of the ranking arithmetic.
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].z_topical_signal, b[i].z_topical_signal);
    EXPECT_EQ(a[i].z_mention_impact, b[i].z_mention_impact);
    EXPECT_EQ(a[i].z_retweet_impact, b[i].z_retweet_impact);
    EXPECT_EQ(a[i].z_conversation, b[i].z_conversation);
    EXPECT_EQ(a[i].z_hashtag, b[i].z_hashtag);
    EXPECT_EQ(a[i].z_followers, b[i].z_followers);
  }
}

void ExpectSameEvidence(const std::vector<CandidateEvidence>& a,
                        const std::vector<CandidateEvidence>& b,
                        const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(context + " candidate #" + std::to_string(i));
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].is_author, b[i].is_author);
    EXPECT_EQ(a[i].is_mentioned, b[i].is_mentioned);
    EXPECT_EQ(a[i].tweets_on_topic, b[i].tweets_on_topic);
    EXPECT_EQ(a[i].mentions_on_topic, b[i].mentions_on_topic);
    EXPECT_EQ(a[i].retweets_on_topic, b[i].retweets_on_topic);
    EXPECT_EQ(a[i].conversational_on_topic, b[i].conversational_on_topic);
    EXPECT_EQ(a[i].hashtag_on_topic, b[i].hashtag_on_topic);
  }
}

/// One randomized world: universe -> query log -> offline pipeline ->
/// corpus, at small scale (the offline stage is the expensive part).
struct World {
  querylog::TopicUniverse universe;
  core::OfflineArtifacts artifacts;
  microblog::TweetCorpus corpus;
};

struct WorldShape {
  uint64_t seed;
  size_t categories;
  size_t domains_per_category;
  size_t casual_users;
  size_t spam_users;
};

World MakeWorld(const WorldShape& shape) {
  querylog::UniverseOptions uo;
  uo.num_categories = shape.categories;
  uo.domains_per_category = shape.domains_per_category;
  uo.seed = shape.seed;
  querylog::TopicUniverse universe = *querylog::TopicUniverse::Generate(uo);

  querylog::GeneratorOptions go;
  go.seed = shape.seed + 1;
  go.head_impressions = 15000;
  querylog::GeneratedLog generated = *GenerateQueryLog(universe, go);

  microblog::CorpusOptions co;
  co.seed = shape.seed + 2;
  co.casual_users = shape.casual_users;
  co.spam_users = shape.spam_users;
  microblog::TweetCorpus corpus = *GenerateCorpus(universe, co);

  core::OfflineOptions offline;
  offline.extraction.min_similarity = 0.15;
  offline.corpus = &corpus;  // index stage builds the evidence index
  core::OfflineArtifacts artifacts = *RunOfflinePipeline(generated.log, offline);

  return World{std::move(universe), std::move(artifacts), std::move(corpus)};
}

/// The query mix of the equivalence runs: every domain head term (the
/// in-vocabulary workload), a few community sibling terms, plus ad-hoc
/// shapes the vocabulary cannot cover (unknown tokens, mixed case,
/// duplicate tokens, multi-word raw strings).
std::vector<std::string> QueryMix(const World& world) {
  std::vector<std::string> queries;
  for (const querylog::TopicDomain& dom : world.universe.domains()) {
    if (!dom.terms.empty()) queries.push_back(dom.terms[0]);
    if (dom.terms.size() > 2) queries.push_back(dom.terms[2]);
  }
  for (const community::Community& c : world.artifacts.store.communities()) {
    if (c.terms.size() > 1) {
      queries.push_back(c.terms[1]);
      break;
    }
  }
  queries.push_back("no such topic anywhere");
  queries.push_back("ZZZUNSEEN token");
  if (!queries.empty() && !queries[0].empty()) {
    std::string upper = queries[0];
    for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
    queries.push_back(upper);                       // case-folding
    queries.push_back(queries[0] + " " + queries[0]);  // duplicate tokens
  }
  return queries;
}

serving::ServingOptions ReferenceOptions() {
  serving::ServingOptions o;
  o.num_threads = 3;
  o.enable_cache = false;
  o.enable_single_flight = false;
  o.use_evidence_index = false;
  o.parallel_detect = false;
  return o;
}

serving::ServingOptions FastOptions() {
  serving::ServingOptions o = ReferenceOptions();
  o.use_evidence_index = true;
  o.parallel_detect = true;
  return o;
}

// ------------------------------------------- randomized path equivalence --

TEST(OnlineFastPathTest, RandomizedWorldsBitIdenticalToReference) {
  const WorldShape shapes[] = {
      {601, 2, 8, 200, 20},
      {733, 3, 5, 120, 5},
      {901, 2, 4, 300, 40},
  };
  for (const WorldShape& shape : shapes) {
    SCOPED_TRACE("seed " + std::to_string(shape.seed));
    World world = MakeWorld(shape);
    ASSERT_NE(world.artifacts.evidence_index, nullptr);

    auto store = std::make_shared<const community::CommunityStore>(
        world.artifacts.store);
    serving::SnapshotManager fast_manager(&world.corpus);
    // Reuse the pipeline-built index: this is the production hand-off.
    fast_manager.Publish(store, {}, world.artifacts.evidence_index);
    serving::SnapshotManager ref_manager(&world.corpus);
    ref_manager.set_build_evidence_on_publish(false);
    ref_manager.Publish(store);
    ASSERT_NE(fast_manager.Acquire()->evidence(), nullptr);
    ASSERT_EQ(ref_manager.Acquire()->evidence(), nullptr);

    serving::ServingEngine ref_engine(&ref_manager, ReferenceOptions());
    serving::ServingEngine fast_engine(&fast_manager, FastOptions());

    for (const std::string& q : QueryMix(world)) {
      auto ref = ref_engine.Query({q});
      auto fast = fast_engine.Query({q});
      ASSERT_TRUE(ref.ok()) << q << ": " << ref.status().ToString();
      ASSERT_TRUE(fast.ok()) << q << ": " << fast.status().ToString();
      ExpectSameExperts(fast->experts, ref->experts, "query '" + q + "'");
    }
  }
}

TEST(OnlineFastPathTest, PublishBuiltEvidenceMatchesPipelineBuilt) {
  World world = MakeWorld({601, 2, 8, 200, 20});
  auto store = std::make_shared<const community::CommunityStore>(
      world.artifacts.store);
  // Default publish path: no index supplied, the manager builds one.
  serving::SnapshotManager manager(&world.corpus);
  manager.Publish(store);
  const expert::TermEvidenceIndex* built = manager.Acquire()->evidence();
  ASSERT_NE(built, nullptr);
  const expert::TermEvidenceIndex& piped = *world.artifacts.evidence_index;
  EXPECT_EQ(built->num_terms(), piped.num_terms());
  EXPECT_EQ(built->num_entries(), piped.num_entries());
  for (const community::Community& c : store->communities()) {
    for (const std::string& term : c.terms) {
      std::string normalized = ToLowerAscii(term);
      const auto* a = built->Find(normalized);
      const auto* b = piped.Find(normalized);
      ASSERT_NE(a, nullptr) << normalized;
      ASSERT_NE(b, nullptr) << normalized;
      ExpectSameEvidence(*a, *b, "term '" + normalized + "'");
    }
  }
}

// ------------------------------------------------- evidence-index pools ----

TEST(OnlineFastPathTest, EvidencePoolsEqualLiveCollection) {
  World world = MakeWorld({733, 3, 5, 120, 5});
  const expert::TermEvidenceIndex& index = *world.artifacts.evidence_index;
  expert::ExpertDetector detector(&world.corpus);
  size_t checked = 0;
  for (const community::Community& c : world.artifacts.store.communities()) {
    for (const std::string& term : c.terms) {
      std::string normalized = ToLowerAscii(term);
      const std::vector<CandidateEvidence>* pool = index.Find(normalized);
      ASSERT_NE(pool, nullptr) << "vocabulary term '" << normalized
                               << "' missing from the index";
      ExpectSameEvidence(*pool, detector.CollectCandidates(normalized),
                         "term '" + normalized + "'");
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(index.num_terms(), checked);  // vocabulary terms are distinct
  EXPECT_EQ(index.Find("definitely not a vocabulary term"), nullptr);
}

// ------------------------------------------------------ token-id matching --

TEST(OnlineFastPathTest, MatchTweetsStringAndTokenIdPathsAgree) {
  Rng rng(42);
  const char* alphabet[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                            "zeta",  "eta",  "theta", "iota",  "kappa"};
  constexpr size_t kAlphabet = sizeof(alphabet) / sizeof(alphabet[0]);
  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    microblog::TweetCorpus corpus;
    for (microblog::UserId u = 0; u < 4; ++u) {
      microblog::UserProfile p;
      p.id = u;
      p.screen_name = "u" + std::to_string(u);
      corpus.AddUser(p);
    }
    size_t tweets = 20 + rng.Uniform(60);
    for (size_t t = 0; t < tweets; ++t) {
      std::string text;
      size_t words = 1 + rng.Uniform(6);
      for (size_t w = 0; w < words; ++w) {
        if (w) text += ' ';
        text += alphabet[rng.Uniform(kAlphabet)];
      }
      corpus.AddTweet(static_cast<microblog::UserId>(rng.Uniform(4)),
                      std::move(text), {}, 0);
    }
    for (int q = 0; q < 30; ++q) {
      std::vector<std::string> tokens;
      size_t len = rng.Uniform(4);  // includes the empty query
      for (size_t w = 0; w < len; ++w) {
        if (rng.Uniform(10) == 0) {
          tokens.push_back("UNSEEN" + std::to_string(q));
        } else if (!tokens.empty() && rng.Uniform(4) == 0) {
          tokens.push_back(tokens.back());  // duplicate token
        } else {
          std::string tok = alphabet[rng.Uniform(kAlphabet)];
          if (rng.Uniform(2) == 0) tok[0] = static_cast<char>(
              std::toupper(tok[0]));  // exercise lower-casing
          tokens.push_back(tok);
        }
      }
      std::vector<uint32_t> by_string = corpus.MatchTweets(tokens);
      std::string joined;
      for (const std::string& t : tokens) {
        if (!joined.empty()) joined += ' ';
        joined += t;
      }
      std::vector<uint32_t> by_id =
          corpus.MatchTweets(corpus.TokenizeQuery(joined));
      EXPECT_EQ(by_string, by_id) << "query '" << joined << "'";
      EXPECT_TRUE(std::is_sorted(by_id.begin(), by_id.end()));
    }
  }
}

TEST(OnlineFastPathTest, TokenizeNormalizedSkipsLowerCasing) {
  microblog::TweetCorpus corpus;
  microblog::UserProfile p;
  corpus.AddUser(p);
  corpus.AddTweet(0, "Foo BAR baz", {}, 0);
  // Tweet text is lower-cased at ingest; already-normalized lookups agree
  // with the lower-casing path, and a non-normalized string simply misses.
  EXPECT_EQ(corpus.TokenizeNormalized("foo bar"), corpus.TokenizeQuery("FOO Bar"));
  EXPECT_EQ(corpus.FindToken("BAR"), microblog::kNoToken);
  EXPECT_NE(corpus.FindToken("bar"), microblog::kNoToken);
  EXPECT_EQ(corpus.num_tokens(), 3u);
  EXPECT_EQ(corpus.TokenDf(*corpus.TokenizeQuery("foo").begin()), 1u);
}

// ----------------------------------------------------------- merge paths --

/// The pre-PR-5 merge, kept as the test oracle: hash-map accumulation over
/// every list, then sort by user.
std::vector<CandidateEvidence> HashMergeOracle(
    const std::vector<std::vector<CandidateEvidence>>& lists) {
  std::unordered_map<microblog::UserId, CandidateEvidence> by_user;
  for (const auto& list : lists) {
    for (const CandidateEvidence& c : list) {
      CandidateEvidence& acc = by_user[c.user];
      acc.user = c.user;
      acc.is_author = acc.is_author || c.is_author;
      acc.is_mentioned = acc.is_mentioned || c.is_mentioned;
      acc.tweets_on_topic += c.tweets_on_topic;
      acc.mentions_on_topic += c.mentions_on_topic;
      acc.retweets_on_topic += c.retweets_on_topic;
      acc.conversational_on_topic += c.conversational_on_topic;
      acc.hashtag_on_topic += c.hashtag_on_topic;
    }
  }
  std::vector<CandidateEvidence> out;
  out.reserve(by_user.size());
  for (auto& [user, c] : by_user) out.push_back(c);
  std::sort(out.begin(), out.end(),
            [](const CandidateEvidence& a, const CandidateEvidence& b) {
              return a.user < b.user;
            });
  return out;
}

CandidateEvidence RandomEvidence(Rng& rng, microblog::UserId user) {
  CandidateEvidence c;
  c.user = user;
  c.is_author = rng.Uniform(2) == 0;
  c.is_mentioned = rng.Uniform(2) == 0;
  c.tweets_on_topic = rng.Uniform(20);
  c.mentions_on_topic = rng.Uniform(10);
  c.retweets_on_topic = rng.Uniform(50);
  c.conversational_on_topic = rng.Uniform(5);
  c.hashtag_on_topic = rng.Uniform(5);
  return c;
}

TEST(OnlineFastPathTest, MergeEvidenceMatchesHashOracle) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::vector<std::vector<CandidateEvidence>> lists(rng.Uniform(6));
    for (auto& list : lists) {
      size_t n = rng.Uniform(12);
      for (size_t i = 0; i < n; ++i) {
        list.push_back(RandomEvidence(
            rng, static_cast<microblog::UserId>(rng.Uniform(16))));
      }
      // Half the lists honor the sorted-unique invariant (the
      // CollectCandidates shape), half stay arbitrary — duplicates and
      // random order — to pin the historical any-order contract.
      if (rng.Uniform(2) == 0) {
        std::sort(list.begin(), list.end(),
                  [](const CandidateEvidence& a, const CandidateEvidence& b) {
                    return a.user < b.user;
                  });
        list.erase(std::unique(list.begin(), list.end(),
                               [](const CandidateEvidence& a,
                                  const CandidateEvidence& b) {
                                 return a.user == b.user;
                               }),
                   list.end());
      }
    }
    ExpectSameEvidence(expert::MergeEvidence(lists), HashMergeOracle(lists),
                       "merge");
  }
}

TEST(OnlineFastPathTest, MergeEvidenceViewsSkipsNullAndEmpty) {
  Rng rng(11);
  std::vector<CandidateEvidence> a, b, empty;
  for (microblog::UserId u = 0; u < 8; u += 2) a.push_back(RandomEvidence(rng, u));
  for (microblog::UserId u = 1; u < 8; u += 3) b.push_back(RandomEvidence(rng, u));
  std::vector<const std::vector<CandidateEvidence>*> views = {
      &a, nullptr, &empty, &b, nullptr};
  ExpectSameEvidence(expert::MergeEvidenceViews(views),
                     HashMergeOracle({a, b}), "views");
  EXPECT_TRUE(expert::MergeEvidenceViews({}).empty());
  EXPECT_TRUE(expert::MergeEvidenceViews({nullptr, &empty}).empty());
}

// -------------------------------------------- cooperative cancellation ----

TEST(OnlineFastPathTest, DeadlineCancelsInsideLiveCollection) {
  World world = MakeWorld({601, 2, 8, 200, 20});
  serving::SnapshotManager manager(&world.corpus);
  manager.set_build_evidence_on_publish(false);  // force live collection
  manager.Publish(std::make_shared<const community::CommunityStore>(
      world.artifacts.store));

  serving::ServingOptions options = ReferenceOptions();
  options.parallel_detect = true;  // cancellation must also cover the fan-out
  // Burn the whole deadline before collection starts: the stage-boundary
  // check has already passed, so only the poll *inside* CollectCandidates
  // (entry + every kCollectCancelStride tweets) can stop the request.
  options.execution_hook = [](const std::string&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  serving::ServingEngine engine(&manager, options);

  std::string query = world.universe.domains().front().terms.front();
  serving::QueryRequest request;
  request.query = query;
  request.deadline_ms = 10;
  auto response = engine.Query(std::move(request));
  ASSERT_TRUE(response.status().IsDeadlineExceeded())
      << response.status().ToString();
  EXPECT_GE(engine.metrics().Report().timeouts, 1u);

  // Same query, no deadline: completes fine on the same engine.
  auto ok = engine.Query({query});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

// ------------------------------------------------------------- TSan stress --

TEST(OnlineFastPathTest, ConcurrentClientsAndPublishesStayConsistent) {
  World world = MakeWorld({901, 2, 4, 300, 40});
  auto store = std::make_shared<const community::CommunityStore>(
      world.artifacts.store);
  serving::SnapshotManager manager(&world.corpus);
  manager.Publish(store);

  serving::ServingOptions options = FastOptions();
  options.num_threads = 4;
  serving::ServingEngine engine(&manager, options);

  std::vector<std::string> queries = QueryMix(world);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 40 && !stop.load(std::memory_order_relaxed); ++i) {
        const std::string& q = queries[rng.Uniform(queries.size())];
        auto r = engine.Query({q});
        // Shedding is legal under load; anything else must succeed.
        if (!r.ok() && !r.status().IsUnavailable()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Hot-swap generations while the clients hammer the engine; each publish
  // rebuilds the evidence index, so swapped-in pools are fresh allocations.
  for (int swap = 0; swap < 5; ++swap) {
    manager.Publish(store);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& c : clients) c.join();
  stop.store(true, std::memory_order_relaxed);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(manager.version(), 6u);
}

}  // namespace
}  // namespace esharp
