// Tests of the embedded debug HTTP server and the statusz endpoint family:
// lifecycle (ephemeral port, stop/restart), request parsing and dispatch
// (params, 400/404/405, inline 503 shedding), every mounted endpoint's
// content, readiness probe composition, and the SLO watchdog's multi-window
// burn-rate state machine under a manual clock.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/debugz.h"
#include "obs/event_log.h"
#include "obs/flightrecorder.h"
#include "obs/progress.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace esharp::obs {
namespace {

/// Sends raw bytes to the server and returns everything it answers — for
/// the malformed/non-GET cases HttpGet cannot produce.
std::string RawExchange(int port, const std::string& payload) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, payload.data(), payload.size(), 0);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

// ---- Server lifecycle and dispatch ----------------------------------------

TEST(DebugServerTest, StartsOnEphemeralPortServesAndStops) {
  DebugServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "pong\n";
    return r;
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  int port = server.port();
  ASSERT_GT(port, 0);

  auto response = HttpGet("127.0.0.1", port, "/ping");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "pong\n");

  // The index page links every registered path.
  auto index = HttpGet("127.0.0.1", port, "/");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->status, 200);
  EXPECT_NE(index->body.find("/ping"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  // Stop is idempotent, and the server restarts cleanly.
  server.Stop();
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  auto again = HttpGet("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 200);
}

TEST(DebugServerTest, DecodesQueryParameters) {
  DebugServer server;
  server.Handle("/echo", [](const HttpRequest& request) {
    HttpResponse r;
    r.body = request.Param("q", "<none>") + "|" + request.Param("missing", "d");
    return r;
  });
  ASSERT_TRUE(server.Start().ok());
  auto response =
      HttpGet("127.0.0.1", server.port(), "/echo?q=a+b%21&other=1");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "a b!|d");
}

TEST(DebugServerTest, RejectsUnknownPathsNonGetAndGarbage) {
  DebugServer server;
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  auto missing = HttpGet("127.0.0.1", port, "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  std::string post = RawExchange(
      port, "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos) << post;

  std::string garbage = RawExchange(port, "not-http at all\r\n\r\n");
  EXPECT_NE(garbage.find("400"), std::string::npos) << garbage;
}

TEST(DebugServerTest, ServesConcurrentClients) {
  DebugServer server;
  std::atomic<int> handled{0};
  server.Handle("/work", [&handled](const HttpRequest&) {
    handled.fetch_add(1, std::memory_order_relaxed);
    HttpResponse r;
    r.body = "done\n";
    return r;
  });
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();
  constexpr int kClients = 8;
  constexpr int kPerClient = 5;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([port, &ok] {
      for (int i = 0; i < kPerClient; ++i) {
        // A connect can bounce with a fast reset when the accept thread
        // is starved under machine load (same failure mode the shed test
        // below tolerates), so retry until the deadline — the assertion
        // is that every client gets served, not that the scheduler never
        // hiccups.
        auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (true) {
          auto r = HttpGet("127.0.0.1", port, "/work");
          if (r.ok() && r->status == 200) {
            ok.fetch_add(1);
            break;
          }
          if (std::chrono::steady_clock::now() >= deadline) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  // >= rather than ==: a retried request may have been handled once
  // already when only its response delivery failed.
  EXPECT_GE(handled.load(), kClients * kPerClient);
}

TEST(DebugServerTest, ShedsInlineWhenOverloaded) {
  DebugServerOptions options;
  options.num_workers = 1;
  options.max_in_flight = 1;
  DebugServer server(options);
  std::atomic<bool> release{false};
  server.Handle("/slow", [&release](const HttpRequest&) {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    HttpResponse r;
    r.body = "slow done\n";
    return r;
  });
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();
  // Pin the single worker on the slow handler...
  std::thread pinned([port] { (void)HttpGet("127.0.0.1", port, "/slow"); });
  // ...then hammer until a 503 arrives: the accept loop sheds inline once
  // the in-flight bound is hit, instead of queueing scrapes without limit.
  // Time-bounded rather than attempt-bounded: on a loaded machine the
  // accept thread can be starved long enough that early connects bounce
  // off the listen backlog (fast connection resets, not 503s), so a fixed
  // attempt count can burn out before the server ever gets to shed.
  bool saw_503 = false;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!saw_503 && std::chrono::steady_clock::now() < deadline) {
    auto r = HttpGet("127.0.0.1", port, "/slow", /*timeout_seconds=*/1.0);
    if (r.ok() && r->status == 503) {
      saw_503 = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  release.store(true, std::memory_order_release);
  pinned.join();
  EXPECT_TRUE(saw_503);
}

// ---- The statusz endpoint family ------------------------------------------

class StatuszTest : public ::testing::Test {
 protected:
  void Mount(StatuszOptions options) {
    options.registry = &registry_;
    options.events = &events_;
    options.progress = &progress_;
    MountStatusz(&server_, std::move(options));
    ASSERT_TRUE(server_.Start().ok());
    port_ = server_.port();
  }

  HttpResponseData Get(const std::string& path) {
    auto r = HttpGet("127.0.0.1", port_, path);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : HttpResponseData{};
  }

  MetricsRegistry registry_;
  EventLog events_;
  JobProgressRegistry progress_;
  DebugServer server_;
  int port_ = 0;
};

TEST_F(StatuszTest, MetricsAndVarzExposeTheRegistry) {
  registry_.GetCounter("statusz.requests", {{"kind", "test"}})->Increment(5);
  Mount({});
  HttpResponseData metrics = Get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("statusz_requests{kind=\"test\"} 5"),
            std::string::npos)
      << metrics.body;

  HttpResponseData varz = Get("/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_EQ(varz.content_type, "application/json");
  EXPECT_NE(varz.body.find("\"statusz.requests\""), std::string::npos);
}

TEST_F(StatuszTest, HealthzIsLivenessReadyzIsReadiness) {
  std::atomic<bool> ready{false};
  StatuszOptions options;
  options.readiness.emplace_back("snapshot", [&ready] {
    ProbeResult r;
    r.ok = ready.load(std::memory_order_acquire);
    if (!r.ok) r.detail = "no snapshot published yet";
    return r;
  });
  Mount(std::move(options));

  // Liveness answers 200 even while readiness fails — the distinction the
  // two endpoints exist to draw.
  EXPECT_EQ(Get("/healthz").status, 200);
  HttpResponseData not_ready = Get("/readyz");
  EXPECT_EQ(not_ready.status, 503);
  EXPECT_NE(not_ready.body.find("snapshot: no snapshot published yet"),
            std::string::npos)
      << not_ready.body;

  ready.store(true, std::memory_order_release);
  HttpResponseData now_ready = Get("/readyz");
  EXPECT_EQ(now_ready.status, 200);
  EXPECT_EQ(now_ready.body, "ready\n");
}

TEST_F(StatuszTest, EventzRendersTheLogBothWays) {
  events_.Add(LogLevel::kINFO, "serving", "snapshot published",
              {{"version", "7"}});
  Mount({});
  HttpResponseData html = Get("/eventz");
  EXPECT_EQ(html.status, 200);
  EXPECT_NE(html.body.find("snapshot published"), std::string::npos);
  HttpResponseData json = Get("/eventz?format=json");
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"version\""), std::string::npos);
  EXPECT_NE(json.body.find("snapshot published"), std::string::npos);
}

TEST_F(StatuszTest, EventzFiltersBySeverityAndCursor) {
  events_.Add(LogLevel::kDEBUG, "noise", "chatter");
  events_.Add(LogLevel::kERROR, "slo", "boom");
  uint64_t boom_seq = events_.Events().back().sequence;
  events_.Add(LogLevel::kWARN, "health", "wobbled");
  Mount({});

  HttpResponseData warnings = Get("/eventz?level=warn");
  EXPECT_EQ(warnings.status, 200);
  EXPECT_EQ(warnings.body.find("chatter"), std::string::npos)
      << warnings.body;
  EXPECT_NE(warnings.body.find("boom"), std::string::npos);
  EXPECT_NE(warnings.body.find("wobbled"), std::string::npos);

  HttpResponseData paged =
      Get("/eventz?format=json&after=" + std::to_string(boom_seq));
  EXPECT_EQ(paged.body.find("boom"), std::string::npos) << paged.body;
  EXPECT_NE(paged.body.find("wobbled"), std::string::npos);
  EXPECT_NE(paged.body.find("\"next_after\":"), std::string::npos);

  EXPECT_EQ(Get("/eventz?level=loud").status, 400);
}

TEST_F(StatuszTest, GraphzRendersSparklinesAndJson) {
  double now = 10;
  TimeSeriesOptions ts_options;
  ts_options.registry = &registry_;
  ts_options.clock = [&now] { return now; };
  TimeSeriesStore store(ts_options);
  registry_.GetGauge("graphz.depth")->Set(1);
  store.Sample();
  now = 11;
  registry_.GetGauge("graphz.depth")->Set(3);
  store.Sample();

  StatuszOptions options;
  options.timeseries = &store;
  Mount(std::move(options));

  HttpResponseData html = Get("/graphz");
  EXPECT_EQ(html.status, 200);
#if ESHARP_OBS_ENABLED
  EXPECT_NE(html.body.find("graphz.depth"), std::string::npos) << html.body;
  EXPECT_NE(html.body.find("<svg"), std::string::npos);
  HttpResponseData json = Get("/graphz?format=json&metric=graphz.depth");
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"id\":\"graphz.depth\""), std::string::npos)
      << json.body;
  EXPECT_NE(json.body.find("\"points\":[[10,1],[11,3]]"), std::string::npos)
      << json.body;
  // /statusz advertises the endpoint once a store is wired.
  EXPECT_NE(Get("/statusz").body.find("/graphz"), std::string::npos);
#endif
}

TEST_F(StatuszTest, GraphzAndIncidentzAre404WhenUnwired) {
  Mount({});
  EXPECT_EQ(Get("/graphz").status, 404);
  EXPECT_EQ(Get("/incidentz").status, 404);
}

#if ESHARP_OBS_ENABLED
TEST_F(StatuszTest, IncidentzTriggersAndListsBundles) {
  FlightRecorderOptions recorder_options;
  recorder_options.dir = ::testing::TempDir() + "debugz_incidents_" +
                         std::to_string(WallUnixMillis());
  recorder_options.min_interval_seconds = 0;
  recorder_options.events = &events_;
  FlightRecorder recorder(recorder_options);

  StatuszOptions options;
  options.recorder = &recorder;
  Mount(std::move(options));

  HttpResponseData triggered = Get("/incidentz?trigger=drill");
  EXPECT_EQ(triggered.status, 200);
  EXPECT_NE(triggered.body.find("bundle written:"), std::string::npos)
      << triggered.body;
  EXPECT_EQ(recorder.written(), 1u);

  HttpResponseData html = Get("/incidentz");
  EXPECT_NE(html.body.find("manual:drill"), std::string::npos) << html.body;
  HttpResponseData json = Get("/incidentz?format=json");
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"reason\":\"manual:drill\""), std::string::npos)
      << json.body;
}
#endif

TEST_F(StatuszTest, ProgresszShowsActiveAndFinishedJobs) {
  auto job = progress_.Start("offline_pipeline");
  job->SetStage("cluster");
  job->SetFraction(0.5);
  Mount({});
  HttpResponseData html = Get("/progressz");
  EXPECT_NE(html.body.find("offline_pipeline"), std::string::npos);
  EXPECT_NE(html.body.find("cluster"), std::string::npos);
  job->Finish("ok");
  job.reset();
  HttpResponseData json = Get("/progressz?format=json");
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"outcome\":\"ok\""), std::string::npos)
      << json.body;
}

TEST_F(StatuszTest, TracezRendersTablesAndChromeJson) {
  Tracer tracer;
  {
    Span s = tracer.StartSpan("request");
    s.Annotate("outcome", "ok");
  }
  StatuszOptions options;
  options.tracer = &tracer;
  options.active_requests = [] {
    std::vector<ActiveEntry> active(1);
    active[0].id = 42;
    active[0].name = "barack obama";
    active[0].stage = "detect";
    active[0].elapsed_ms = 12.5;
    return active;
  };
  options.request_samples = [] {
    std::vector<SampleEntry> samples(1);
    samples[0].name = "nba";
    samples[0].outcome = "cache_hit";
    samples[0].total_ms = 0.2;
    return samples;
  };
  Mount(std::move(options));
  HttpResponseData html = Get("/tracez");
  EXPECT_NE(html.body.find("barack obama"), std::string::npos);
  EXPECT_NE(html.body.find("detect"), std::string::npos);
  EXPECT_NE(html.body.find("cache_hit"), std::string::npos);
  HttpResponseData json = Get("/tracez?format=json");
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.body.find("\"name\":\"request\""), std::string::npos);
}

TEST_F(StatuszTest, StatuszAggregatesBuildInfoOverviewAndProbes) {
  StatuszOptions options;
  options.build_info = "esharp test build";
  options.overview = [] { return std::string("snapshot: v3\nqps: 120\n"); };
  options.readiness.emplace_back("always", [] { return ProbeResult{}; });
  Mount(std::move(options));
  HttpResponseData statusz = Get("/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("esharp test build"), std::string::npos);
  EXPECT_NE(statusz.body.find("snapshot: v3"), std::string::npos);
  EXPECT_NE(statusz.body.find("ready: <b>yes</b>"), std::string::npos)
      << statusz.body;
  // Every endpoint is linked.
  for (const char* path : {"/metrics", "/varz", "/healthz", "/readyz",
                           "/tracez", "/eventz", "/progressz"}) {
    EXPECT_NE(statusz.body.find(path), std::string::npos) << path;
  }
}

// ---- SloWatchdog ----------------------------------------------------------

/// Manual-clock fixture: `now` is advanced by hand; counters are plain
/// doubles the objectives read through lambdas.
class SloWatchdogTest : public ::testing::Test {
 protected:
  SloWatchdogTest() {
    SloWatchdog::Options options;
    options.events = &events_;
    options.clock = [this] { return now_; };
    watchdog_ = std::make_unique<SloWatchdog>(std::move(options));
  }

  /// Ticks once per simulated second up to `until`.
  void TickUntil(double until) {
    while (now_ < until) {
      now_ += 1.0;
      watchdog_->Tick();
    }
  }

  double now_ = 0;
  double bad_ = 0;
  double total_ = 0;
  EventLog events_;
  std::unique_ptr<SloWatchdog> watchdog_;
};

TEST_F(SloWatchdogTest, BreachesOnlyWhenBothWindowsBurn) {
  SloObjective objective;
  objective.name = "error_rate";
  objective.kind = SloObjective::Kind::kRatio;
  objective.bad = [this] { return bad_; };
  objective.total = [this] { return total_; };
  objective.target = 0.01;  // 1% error budget
  objective.short_window_seconds = 10;
  objective.long_window_seconds = 60;
  watchdog_->AddObjective(std::move(objective));

  std::vector<SloState> alerts;
  watchdog_->AddAlertCallback(
      [&alerts](const SloState& s) { alerts.push_back(s); });

  // Healthy traffic: 100 req/s, no errors.
  ASSERT_TRUE(watchdog_->healthy());
  for (int s = 0; s < 70; ++s) {
    total_ += 100;
    TickUntil(now_ + 1);
  }
  EXPECT_TRUE(watchdog_->healthy());
  EXPECT_TRUE(alerts.empty());

  // A short error spike (3 seconds at 10%) lights the short window but not
  // the 60s one — no alert yet. Multi-window evaluation exists exactly to
  // suppress this blip.
  for (int s = 0; s < 3; ++s) {
    total_ += 100;
    bad_ += 10;
    TickUntil(now_ + 1);
  }
  std::vector<SloState> snapshot = watchdog_->Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_GE(snapshot[0].short_burn, 1.0);
  EXPECT_LT(snapshot[0].long_burn, 1.0);
  EXPECT_TRUE(watchdog_->healthy());

  // Sustained 10% errors: the long window catches up and the objective
  // breaches — event logged, callback fired, healthy() flips.
  for (int s = 0; s < 60; ++s) {
    total_ += 100;
    bad_ += 10;
    TickUntil(now_ + 1);
  }
  EXPECT_FALSE(watchdog_->healthy());
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].breached);
  EXPECT_EQ(alerts[0].name, "error_rate");
  bool breach_logged = false;
  for (const Event& e : events_.Events()) {
    if (e.message.find("SLO breach: error_rate") != std::string::npos) {
      breach_logged = true;
      EXPECT_EQ(e.severity, LogLevel::kERROR);
    }
  }
  EXPECT_TRUE(breach_logged);

  // Recovery needs BOTH windows clearly under budget (hysteresis at 0.8x):
  // a clean short window alone is not enough while the long window still
  // remembers the incident.
  for (int s = 0; s < 12; ++s) {
    total_ += 100;
    TickUntil(now_ + 1);
  }
  EXPECT_FALSE(watchdog_->healthy());
  for (int s = 0; s < 70; ++s) {
    total_ += 100;
    TickUntil(now_ + 1);
  }
  EXPECT_TRUE(watchdog_->healthy());
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_FALSE(alerts[1].breached);
  bool recovery_logged = false;
  for (const Event& e : events_.Events()) {
    if (e.message.find("SLO recovered: error_rate") != std::string::npos) {
      recovery_logged = true;
    }
  }
  EXPECT_TRUE(recovery_logged);
}

TEST_F(SloWatchdogTest, ValueObjectiveBurnsOnWindowedMean) {
  double p99_seconds = 0.1;
  SloObjective objective;
  objective.name = "latency_p99";
  objective.kind = SloObjective::Kind::kValue;
  objective.value = [&p99_seconds] { return p99_seconds; };
  objective.target = 1.0;  // the paper's < 1 s online budget
  objective.short_window_seconds = 5;
  objective.long_window_seconds = 20;
  watchdog_->AddObjective(std::move(objective));

  TickUntil(30);
  std::vector<SloState> snapshot = watchdog_->Snapshot();
  EXPECT_NEAR(snapshot[0].short_burn, 0.1, 0.01);
  EXPECT_TRUE(watchdog_->healthy());

  p99_seconds = 2.5;  // sustained 2.5x over budget
  TickUntil(60);
  snapshot = watchdog_->Snapshot();
  EXPECT_GT(snapshot[0].short_burn, 2.0);
  EXPECT_GT(snapshot[0].long_burn, 1.0);
  EXPECT_FALSE(watchdog_->healthy());
}

TEST_F(SloWatchdogTest, ReadyzIncorporatesWatchdogHealth) {
  double value = 0;
  SloObjective objective;
  objective.name = "queue_depth";
  objective.kind = SloObjective::Kind::kValue;
  objective.value = [&value] { return value; };
  objective.target = 10;
  objective.short_window_seconds = 2;
  objective.long_window_seconds = 4;
  watchdog_->AddObjective(std::move(objective));
  TickUntil(10);

  DebugServer server;
  StatuszOptions options;
  options.watchdog = watchdog_.get();
  MountStatusz(&server, std::move(options));
  ASSERT_TRUE(server.Start().ok());
  auto ready = HttpGet("127.0.0.1", server.port(), "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status, 200);

  value = 100;  // 10x the tolerated depth, sustained
  TickUntil(20);
  ASSERT_FALSE(watchdog_->healthy());
  auto not_ready = HttpGet("127.0.0.1", server.port(), "/readyz");
  ASSERT_TRUE(not_ready.ok());
  EXPECT_EQ(not_ready->status, 503);
  EXPECT_NE(not_ready->body.find("slo: objective breached"),
            std::string::npos);
}

TEST(SloWatchdogPollTest, StartSpawnsTickingThread) {
  EventLog events;
  SloWatchdog::Options options;
  options.events = &events;
  SloWatchdog watchdog(std::move(options));
  // A reading 5x over target breaches on the very first Tick (both windows
  // see the same single sample) — so observing the breach proves the
  // polling thread is ticking without any manual Tick() call.
  SloObjective objective;
  objective.name = "poll";
  objective.kind = SloObjective::Kind::kValue;
  objective.value = [] { return 5.0; };
  objective.target = 1.0;
  watchdog.AddObjective(std::move(objective));
  watchdog.Start(/*period_seconds=*/0.01);
  bool breached = false;
  for (int i = 0; i < 400 && !breached; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    breached = !watchdog.healthy();
  }
  EXPECT_TRUE(breached);
  watchdog.Stop();
  watchdog.Stop();  // idempotent
}

}  // namespace
}  // namespace esharp::obs
