#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "sqlengine/catalog.h"
#include "sqlengine/parallel.h"
#include "sqlengine/plan.h"

namespace esharp::sql {
namespace {

// Random tables for the serial-vs-parallel equivalence properties.
Table RandomTable(size_t rows, size_t key_cardinality, uint64_t seed) {
  Rng rng(seed);
  TableBuilder b({{"k", DataType::kInt64},
                  {"s", DataType::kString},
                  {"x", DataType::kDouble}});
  for (size_t i = 0; i < rows; ++i) {
    int64_t k = static_cast<int64_t>(rng.Uniform(key_cardinality));
    b.AddRow({Value::Int(k), Value::String("s" + std::to_string(k % 7)),
              Value::Double(rng.NextDouble())});
  }
  return b.Build();
}

// Canonical multiset comparison.
void ExpectSameRows(Table a, Table b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  a.SortLexicographic();
  b.SortLexicographic();
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.row(i)[c].Compare(b.row(i)[c]), 0)
          << "row " << i << " col " << c;
    }
  }
}

// ----------------------------------------------------------- Partitioning --

TEST(HashPartitionTest, PartitionsAreDisjointAndComplete) {
  Table t = RandomTable(500, 40, 1);
  auto parts = *HashPartition(t, {"k"}, 7);
  size_t total = 0;
  for (const Table& p : parts) total += p.num_rows();
  EXPECT_EQ(total, t.num_rows());
}

TEST(HashPartitionTest, SameKeySamePartition) {
  Table t = RandomTable(500, 10, 2);
  auto parts = *HashPartition(t, {"k"}, 5);
  // Every key must appear in exactly one partition.
  std::map<int64_t, std::set<size_t>> where;
  for (size_t p = 0; p < parts.size(); ++p) {
    for (const Row& r : parts[p].rows()) {
      where[r[0].int_value()].insert(p);
    }
  }
  for (const auto& [k, ps] : where) EXPECT_EQ(ps.size(), 1u) << "key " << k;
}

TEST(HashPartitionTest, ZeroPartitionsRejected) {
  EXPECT_FALSE(HashPartition(RandomTable(5, 2, 3), {"k"}, 0).ok());
}

TEST(RoundRobinPartitionTest, CoversAllRows) {
  Table t = RandomTable(103, 5, 4);
  auto parts = RoundRobinPartition(t, 8);
  size_t total = 0;
  for (const Table& p : parts) total += p.num_rows();
  EXPECT_EQ(total, 103u);
  EXPECT_EQ(*ConcatTables(parts)->GetValue(0, "k"),
            *t.GetValue(0, "k"));  // order preserved
}

// ------------------------------------------ Parallel == serial properties --

struct ParallelCase {
  size_t partitions;
  JoinStrategy strategy;
};

class ParallelJoinTest
    : public ::testing::TestWithParam<std::tuple<size_t, JoinStrategy>> {};

TEST_P(ParallelJoinTest, MatchesSerialHashJoin) {
  auto [partitions, strategy] = GetParam();
  ThreadPool pool(4);
  ExecContext ctx{&pool, partitions, nullptr, "test"};
  Table left = RandomTable(400, 30, 5);
  Table right = RandomTable(300, 30, 6);
  Table serial = *HashJoin(left, right, {"k"}, {"k"});
  Table parallel = *ParallelHashJoin(ctx, left, right, {"k"}, {"k"},
                                     JoinType::kInner, strategy);
  ExpectSameRows(serial, parallel);
}

TEST_P(ParallelJoinTest, LeftOuterMatchesSerial) {
  auto [partitions, strategy] = GetParam();
  if (strategy == JoinStrategy::kReplicated) {
    // Left-outer works with both strategies; exercised for both.
  }
  ThreadPool pool(4);
  ExecContext ctx{&pool, partitions, nullptr, "test"};
  Table left = RandomTable(200, 60, 7);   // many unmatched keys
  Table right = RandomTable(50, 60, 8);
  Table serial = *HashJoin(left, right, {"k"}, {"k"}, JoinType::kLeftOuter);
  Table parallel = *ParallelHashJoin(ctx, left, right, {"k"}, {"k"},
                                     JoinType::kLeftOuter, strategy);
  ExpectSameRows(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ParallelJoinTest,
    ::testing::Combine(::testing::Values(1, 2, 8, 17),
                       ::testing::Values(JoinStrategy::kReplicated,
                                         JoinStrategy::kPartitioned)));

class ParallelAggTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelAggTest, MatchesSerialAggregate) {
  ThreadPool pool(4);
  ExecContext ctx{&pool, GetParam(), nullptr, "test"};
  Table t = RandomTable(1000, 25, 9);
  std::vector<AggSpec> aggs = {CountStar("n"), SumOf(Col("x"), "sx"),
                               MaxOf(Col("x"), "mx"),
                               ArgMaxOf(Col("x"), Col("s"), "best")};
  Table serial = *HashAggregate(t, {"k"}, aggs);
  Table parallel = *ParallelHashAggregate(ctx, t, {"k"}, aggs);
  ExpectSameRows(serial, parallel);
}

TEST_P(ParallelAggTest, FilterAndProjectMatchSerial) {
  ThreadPool pool(4);
  ExecContext ctx{&pool, GetParam(), nullptr, "test"};
  Table t = RandomTable(777, 25, 10);
  ExprPtr pred = Gt(Col("x"), LitDouble(0.5));
  ExpectSameRows(*Filter(t, pred), *ParallelFilter(ctx, t, pred));
  std::vector<ProjectedColumn> cols = {{Col("k"), "k"},
                                       {Mul(Col("x"), LitDouble(2)), "x2"}};
  ExpectSameRows(*Project(t, cols), *ParallelProject(ctx, t, cols));
}

INSTANTIATE_TEST_SUITE_P(Fanouts, ParallelAggTest,
                         ::testing::Values(1, 3, 8, 16));

TEST(ParallelTest, MeterRecordsRows) {
  ThreadPool pool(2);
  ResourceMeter meter;
  ExecContext ctx{&pool, 4, &meter, "stage_x"};
  Table t = RandomTable(100, 5, 11);
  ASSERT_TRUE(ParallelFilter(ctx, t, Gt(Col("x"), LitDouble(-1))).ok());
  EXPECT_EQ(meter.Get("stage_x").rows_read, 100u);
  EXPECT_EQ(meter.Get("stage_x").rows_written, 100u);
}

// ----------------------------------------------------------------- Plans --

TEST(CatalogTest, RegisterGetDrop) {
  Catalog cat;
  cat.Register("t", RandomTable(5, 2, 12));
  EXPECT_TRUE(cat.Contains("t"));
  EXPECT_EQ((*cat.Get("t"))->num_rows(), 5u);
  EXPECT_FALSE(cat.Get("missing").ok());
  cat.Drop("t");
  EXPECT_FALSE(cat.Contains("t"));
  EXPECT_TRUE(cat.Names().empty());
}

TEST(PlanTest, ScanFilterProjectPipeline) {
  Catalog cat;
  cat.Register("t", RandomTable(100, 10, 13));
  Plan plan = Plan::Scan("t")
                  .Where(Eq(Col("k"), LitInt(3)))
                  .Select({{Col("x"), "x"}});
  Executor exec;
  Table out = *exec.Execute(plan, cat);
  const Table& source = **cat.Get("t");
  Table expected = *Project(*Filter(source, Eq(Col("k"), LitInt(3))),
                            {{Col("x"), "x"}});
  EXPECT_EQ(out.num_rows(), expected.num_rows());
}

TEST(PlanTest, JoinAggregateOrderLimit) {
  Catalog cat;
  cat.Register("l", RandomTable(200, 20, 14));
  cat.Register("r", RandomTable(100, 20, 15));
  Plan plan = Plan::Scan("l")
                  .Join(Plan::Scan("r"), {"k"}, {"k"})
                  .GroupBy({"k"}, {CountStar("n")})
                  .OrderBy({"n", "k"}, {false, true})
                  .Take(5);
  Executor exec;
  Table out = *exec.Execute(plan, cat);
  EXPECT_LE(out.num_rows(), 5u);
  // Counts are non-increasing.
  for (size_t i = 1; i < out.num_rows(); ++i) {
    EXPECT_GE(out.row(i - 1)[1].int_value(), out.row(i)[1].int_value());
  }
}

TEST(PlanTest, ParallelExecutorMatchesSerial) {
  Catalog cat;
  cat.Register("l", RandomTable(300, 12, 16));
  cat.Register("r", RandomTable(200, 12, 17));
  Plan plan = Plan::Scan("l")
                  .Join(Plan::Scan("r"), {"k"}, {"k"})
                  .Where(Gt(Col("x"), LitDouble(0.2)))
                  .GroupBy({"k"}, {CountStar("n"), SumOf(Col("x"), "sx")});
  Executor serial;
  ThreadPool pool(4);
  ExecutorOptions par_options;
  par_options.pool = &pool;
  par_options.num_partitions = 6;
  Executor parallel(par_options);
  ExpectSameRows(*serial.Execute(plan, cat), *parallel.Execute(plan, cat));
}

TEST(PlanTest, ValuesDistinctUnion) {
  TableBuilder b({{"a", DataType::kInt64}});
  b.AddRow({Value::Int(1)});
  b.AddRow({Value::Int(1)});
  Plan values = Plan::Values(b.Build());
  Plan plan = values.Distinct().Union(values);
  Executor exec;
  Catalog cat;
  Table out = *exec.Execute(plan, cat);
  EXPECT_EQ(out.num_rows(), 3u);  // 1 distinct + 2 original
}

TEST(PlanTest, ExplainRendersTree) {
  Plan plan = Plan::Scan("graph")
                  .Join(Plan::Scan("communities"), {"query1"}, {"query"})
                  .Where(Gt(Col("distance"), LitDouble(0)))
                  .GroupBy({"query2"}, {CountStar("n")});
  std::string text = plan.Explain();
  EXPECT_NE(text.find("Scan(graph)"), std::string::npos);
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
}

TEST(PlanTest, MissingTableSurfacesNotFound) {
  Executor exec;
  Catalog cat;
  EXPECT_TRUE(exec.Execute(Plan::Scan("ghost"), cat).status().IsNotFound());
}

// ---------------------------------------------------------- EXPLAIN ANALYZE --

// A table with exactly known operator cardinalities: 100 rows, 40 of them
// with x > 0 spread over all 10 key values.
Table DeterministicTable() {
  TableBuilder b({{"k", DataType::kInt64}, {"x", DataType::kDouble}});
  for (int64_t i = 0; i < 100; ++i) {
    b.AddRow({Value::Int(i % 10), Value::Double(i < 40 ? 1.0 : -1.0)});
  }
  return b.Build();
}

TEST(ExplainAnalyzeTest, RowCountsAreExactUnderParallelExecution) {
  Catalog cat;
  cat.Register("t", DeterministicTable());
  Plan plan = Plan::Scan("t")
                  .Where(Gt(Col("x"), LitDouble(0)))
                  .GroupBy({"k"}, {CountStar("n")});

  ThreadPool pool(4);
  ExecutorOptions options;
  options.pool = &pool;
  options.num_partitions = 6;
  Executor parallel(options);
  ExplainStats stats;
  Table out = *parallel.Execute(plan, cat, &stats);
  EXPECT_EQ(out.num_rows(), 10u);

  // Tree shape mirrors the plan: Aggregate -> Filter -> Scan.
  ASSERT_EQ(stats.NodeCount(), 3u);
  EXPECT_NE(stats.op.find("Aggregate"), std::string::npos) << stats.op;
  ASSERT_EQ(stats.children.size(), 1u);
  const ExplainStats& filter = *stats.children[0];
  EXPECT_NE(filter.op.find("Filter"), std::string::npos) << filter.op;
  ASSERT_EQ(filter.children.size(), 1u);
  const ExplainStats& scan = *filter.children[0];
  EXPECT_NE(scan.op.find("Scan(t)"), std::string::npos) << scan.op;

  // Exact cardinalities even though filter and aggregate ran partitioned
  // across the pool: rows are metered on the coordinating thread over the
  // materialized inputs/outputs, not accumulated racily by workers.
  EXPECT_EQ(scan.rows_in, 100u);
  EXPECT_EQ(scan.rows_out, 100u);
  EXPECT_EQ(scan.batches, 1u);  // scans are not partitioned
  EXPECT_EQ(filter.rows_in, 100u);
  EXPECT_EQ(filter.rows_out, 40u);
  EXPECT_EQ(filter.batches, 6u);  // one batch per partition
  EXPECT_EQ(stats.rows_in, 40u);
  EXPECT_EQ(stats.rows_out, 10u);
  EXPECT_EQ(stats.batches, 6u);

  // And they agree with a serial run of the same plan.
  Executor serial;
  ExplainStats serial_stats;
  (void)*serial.Execute(plan, cat, &serial_stats);
  EXPECT_EQ(serial_stats.children[0]->rows_out, filter.rows_out);
  EXPECT_EQ(serial_stats.rows_in, stats.rows_in);
  EXPECT_EQ(serial_stats.rows_out, stats.rows_out);
  EXPECT_EQ(serial_stats.children[0]->batches, 1u);

  // The rendered report carries the numbers (EXPLAIN ANALYZE style).
  std::string report = stats.ToString();
  EXPECT_NE(report.find("rows_in=100"), std::string::npos) << report;
  EXPECT_NE(report.find("rows_out=40"), std::string::npos) << report;
  EXPECT_NE(report.find("batches=6"), std::string::npos) << report;

  // Execute() with stats clears previous contents before profiling.
  Table again = *parallel.Execute(plan, cat, &stats);
  EXPECT_EQ(again.num_rows(), 10u);
  EXPECT_EQ(stats.NodeCount(), 3u);
}

TEST(ExplainAnalyzeTest, RowCountsIdenticalAcrossRowAndColumnarPaths) {
  // The columnar kernels hash keys bit-identically to the row kernels, so
  // partition routing — and with it every exact rows_in/rows_out/batches
  // figure — must match between the two execution paths.
  Catalog cat;
  cat.Register("t", DeterministicTable());
  Plan plan = Plan::Scan("t")
                  .Where(Gt(Col("x"), LitDouble(0)))
                  .GroupBy({"k"}, {CountStar("n")});

  ThreadPool pool(4);
  ExecutorOptions options;
  options.pool = &pool;
  options.num_partitions = 6;

  options.use_columnar = true;
  ExplainStats columnar;
  Table cout_table = *Executor(options).Execute(plan, cat, &columnar);

  options.use_columnar = false;
  ExplainStats rowwise;
  Table rout_table = *Executor(options).Execute(plan, cat, &rowwise);

  EXPECT_EQ(cout_table.num_rows(), rout_table.num_rows());
  ASSERT_EQ(columnar.NodeCount(), rowwise.NodeCount());
  const ExplainStats& cfilter = *columnar.children[0];
  const ExplainStats& rfilter = *rowwise.children[0];
  EXPECT_EQ(columnar.rows_in, rowwise.rows_in);
  EXPECT_EQ(columnar.rows_out, rowwise.rows_out);
  EXPECT_EQ(columnar.batches, rowwise.batches);
  EXPECT_EQ(cfilter.rows_in, rfilter.rows_in);
  EXPECT_EQ(cfilter.rows_out, rfilter.rows_out);
  EXPECT_EQ(cfilter.batches, rfilter.batches);
  // And the absolute numbers are the known exact cardinalities.
  EXPECT_EQ(cfilter.rows_in, 100u);
  EXPECT_EQ(cfilter.rows_out, 40u);
  EXPECT_EQ(cfilter.batches, 6u);
  EXPECT_EQ(columnar.rows_out, 10u);
}

TEST(ExplainAnalyzeTest, JoinCountsIdenticalAcrossRowAndColumnarPaths) {
  Catalog cat;
  cat.Register("l", RandomTable(300, 12, 23));
  cat.Register("r", RandomTable(200, 12, 24));
  Plan plan = Plan::Scan("l").Join(Plan::Scan("r"), {"k"}, {"k"});
  ThreadPool pool(4);
  ExecutorOptions options;
  options.pool = &pool;
  options.num_partitions = 5;
  options.join_strategy = JoinStrategy::kPartitioned;

  options.use_columnar = true;
  ExplainStats columnar;
  Table ctab = *Executor(options).Execute(plan, cat, &columnar);
  options.use_columnar = false;
  ExplainStats rowwise;
  Table rtab = *Executor(options).Execute(plan, cat, &rowwise);

  EXPECT_EQ(ctab.num_rows(), rtab.num_rows());
  EXPECT_EQ(columnar.rows_in, rowwise.rows_in);
  EXPECT_EQ(columnar.rows_out, rowwise.rows_out);
  EXPECT_EQ(columnar.batches, rowwise.batches);
  EXPECT_EQ(columnar.rows_in, 500u);
  EXPECT_EQ(columnar.batches, 5u);
}

TEST(ExplainAnalyzeTest, JoinRecordsBothInputs) {
  Catalog cat;
  cat.Register("l", RandomTable(300, 12, 21));
  cat.Register("r", RandomTable(200, 12, 22));
  Plan plan = Plan::Scan("l").Join(Plan::Scan("r"), {"k"}, {"k"});
  ThreadPool pool(4);
  ExecutorOptions options;
  options.pool = &pool;
  options.num_partitions = 5;
  Executor parallel(options);
  ExplainStats stats;
  Table out = *parallel.Execute(plan, cat, &stats);
  EXPECT_EQ(stats.rows_in, 500u);  // left + right
  EXPECT_EQ(stats.rows_out, out.num_rows());
  EXPECT_EQ(stats.batches, 5u);
  ASSERT_EQ(stats.children.size(), 2u);
  EXPECT_EQ(stats.children[0]->rows_out, 300u);
  EXPECT_EQ(stats.children[1]->rows_out, 200u);
}

}  // namespace
}  // namespace esharp::sql
