#include <gtest/gtest.h>

#include "common/rng.h"
#include "sqlengine/operators.h"

namespace esharp::sql {
namespace {

Table People() {
  TableBuilder b({{"name", DataType::kString},
                  {"age", DataType::kInt64},
                  {"score", DataType::kDouble}});
  b.AddRow({Value::String("ann"), Value::Int(30), Value::Double(1.5)});
  b.AddRow({Value::String("bob"), Value::Int(25), Value::Double(2.5)});
  b.AddRow({Value::String("cat"), Value::Int(30), Value::Double(0.5)});
  b.AddRow({Value::String("dan"), Value::Int(40), Value::Double(4.0)});
  return b.Build();
}

// ----------------------------------------------------------- Expressions --

TEST(ExpressionTest, ArithmeticAndComparison) {
  Table t = People();
  ExprPtr e = Gt(Add(Col("age"), LitInt(5)), LitInt(34));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_FALSE(e->Eval(t.row(1))->bool_value());  // 25+5 > 34 ? no
  EXPECT_TRUE(e->Eval(t.row(3))->bool_value());   // 40+5 > 34 ? yes
}

TEST(ExpressionTest, IntegerArithmeticStaysExact) {
  Table t = People();
  ExprPtr e = Mul(Col("age"), LitInt(2));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  Value v = *e->Eval(t.row(0));
  EXPECT_EQ(v.type(), DataType::kInt64);
  EXPECT_EQ(v.int_value(), 60);
}

TEST(ExpressionTest, DivisionIsDoubleAndChecksZero) {
  Table t = People();
  ExprPtr e = Div(Col("age"), LitInt(4));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_DOUBLE_EQ(e->Eval(t.row(0))->double_value(), 7.5);
  ExprPtr bad = Div(Col("age"), LitInt(0));
  ASSERT_TRUE(bad->Bind(t.schema()).ok());
  EXPECT_FALSE(bad->Eval(t.row(0)).ok());
}

TEST(ExpressionTest, BooleanShortCircuit) {
  Table t = People();
  // Right side would divide by zero; AND must not evaluate it when the
  // left side is already false.
  ExprPtr e = And(Lt(Col("age"), LitInt(0)),
                  Gt(Div(Col("age"), LitInt(0)), LitInt(1)));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_FALSE(e->Eval(t.row(0))->bool_value());
  ExprPtr o = Or(Gt(Col("age"), LitInt(0)),
                 Gt(Div(Col("age"), LitInt(0)), LitInt(1)));
  ASSERT_TRUE(o->Bind(t.schema()).ok());
  EXPECT_TRUE(o->Eval(t.row(0))->bool_value());
}

TEST(ExpressionTest, NotAndNeg) {
  Table t = People();
  ExprPtr e = Not(Eq(Col("name"), LitString("ann")));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_FALSE(e->Eval(t.row(0))->bool_value());
  ExprPtr n = UnaryExpr(Expr::UnaryOp::kNeg, Col("age"));
  ASSERT_TRUE(n->Bind(t.schema()).ok());
  EXPECT_EQ(n->Eval(t.row(0))->int_value(), -30);
}

TEST(ExpressionTest, UdfReceivesArguments) {
  Table t = People();
  ScalarUdf twice = [](const std::vector<Value>& args) -> Result<Value> {
    return Value::Int(args[0].int_value() * 2);
  };
  ExprPtr e = Udf("twice", twice, {Col("age")});
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_EQ(e->Eval(t.row(1))->int_value(), 50);
  EXPECT_EQ(e->ToString(), "twice(age)");
}

TEST(ExpressionTest, UnboundColumnFails) {
  ExprPtr e = Col("missing");
  Table t = People();
  EXPECT_TRUE(e->Bind(t.schema()).IsNotFound());
}

// ---------------------------------------------------------------- Filter --

TEST(FilterTest, KeepsMatchingRows) {
  Table t = People();
  Table out = *Filter(t, Eq(Col("age"), LitInt(30)));
  EXPECT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.row(0)[0].string_value(), "ann");
  EXPECT_EQ(out.row(1)[0].string_value(), "cat");
}

TEST(FilterTest, NonBoolPredicateRejected) {
  Table t = People();
  EXPECT_FALSE(Filter(t, Add(Col("age"), LitInt(1))).ok());
}

// --------------------------------------------------------------- Project --

TEST(ProjectTest, ComputesAndRenames) {
  Table t = People();
  Table out = *Project(
      t, {{Col("name"), "who"}, {Mul(Col("age"), LitInt(10)), "decades"}});
  EXPECT_EQ(out.schema().ToString(), "who:STRING, decades:INT64");
  EXPECT_EQ(out.row(2)[1].int_value(), 300);
}

TEST(ProjectTest, EmptyInputYieldsNullTypes) {
  Table t(Schema({{"a", DataType::kInt64}}));
  Table out = *Project(t, {{Col("a"), "a2"}});
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(out.schema().column(0).type, DataType::kNull);
}

// -------------------------------------------------------------- HashJoin --

Table Orders() {
  TableBuilder b({{"who", DataType::kString}, {"item", DataType::kString}});
  b.AddRow({Value::String("ann"), Value::String("book")});
  b.AddRow({Value::String("ann"), Value::String("pen")});
  b.AddRow({Value::String("dan"), Value::String("mug")});
  b.AddRow({Value::String("zed"), Value::String("hat")});
  return b.Build();
}

TEST(HashJoinTest, InnerJoinMatchesKeys) {
  Table out = *HashJoin(People(), Orders(), {"name"}, {"who"});
  EXPECT_EQ(out.num_rows(), 3u);  // ann x2, dan x1
  // All output rows agree on the key columns.
  size_t name_idx = *out.schema().IndexOf("name");
  size_t who_idx = *out.schema().IndexOf("who");
  for (const Row& r : out.rows()) {
    EXPECT_EQ(r[name_idx].string_value(), r[who_idx].string_value());
  }
}

TEST(HashJoinTest, LeftOuterPadsWithNulls) {
  Table out = *HashJoin(People(), Orders(), {"name"}, {"who"},
                        JoinType::kLeftOuter);
  EXPECT_EQ(out.num_rows(), 5u);  // ann x2, bob NULL, cat NULL, dan x1
  size_t item_idx = *out.schema().IndexOf("item");
  size_t nulls = 0;
  for (const Row& r : out.rows()) {
    if (r[item_idx].is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 2u);
}

TEST(HashJoinTest, ClashingColumnNamesArePrefixed) {
  Table a = People(), b = People();
  Table out = *HashJoin(a, b, {"name"}, {"name"});
  EXPECT_TRUE(out.schema().Contains("r_name"));
  EXPECT_TRUE(out.schema().Contains("r_age"));
  EXPECT_EQ(out.num_rows(), 4u);
}

TEST(HashJoinTest, MultiKeyJoin) {
  TableBuilder l({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  l.AddRow({Value::Int(1), Value::Int(1)});
  l.AddRow({Value::Int(1), Value::Int(2)});
  TableBuilder r({{"x", DataType::kInt64}, {"y", DataType::kInt64}});
  r.AddRow({Value::Int(1), Value::Int(2)});
  Table out = *HashJoin(l.Build(), r.Build(), {"a", "b"}, {"x", "y"});
  EXPECT_EQ(out.num_rows(), 1u);
}

TEST(HashJoinTest, KeyArityMismatchRejected) {
  EXPECT_FALSE(HashJoin(People(), Orders(), {"name"}, {}).ok());
}

TEST(HashJoinTest, EmptySidesProduceEmpty) {
  Table empty(Orders().schema());
  EXPECT_EQ(HashJoin(People(), empty, {"name"}, {"who"})->num_rows(), 0u);
  Table empty_left(People().schema());
  EXPECT_EQ(HashJoin(empty_left, Orders(), {"name"}, {"who"})->num_rows(), 0u);
}

// --------------------------------------------------------- HashAggregate --

TEST(HashAggregateTest, CountSumMinMaxAvgPerGroup) {
  Table out = *HashAggregate(
      People(), {"age"},
      {CountStar("n"), SumOf(Col("score"), "total"),
       MinOf(Col("score"), "lo"), MaxOf(Col("score"), "hi"),
       AvgOf(Col("score"), "avg")});
  Table sorted = *SortBy(out, {"age"});
  ASSERT_EQ(sorted.num_rows(), 3u);
  // age=30 group: ann (1.5), cat (0.5).
  EXPECT_EQ(sorted.row(1)[0].int_value(), 30);
  EXPECT_EQ(sorted.row(1)[1].int_value(), 2);
  EXPECT_DOUBLE_EQ(sorted.row(1)[2].double_value(), 2.0);
  EXPECT_DOUBLE_EQ(sorted.row(1)[3].double_value(), 0.5);
  EXPECT_DOUBLE_EQ(sorted.row(1)[4].double_value(), 1.5);
  EXPECT_DOUBLE_EQ(sorted.row(1)[5].double_value(), 1.0);
}

TEST(HashAggregateTest, GlobalAggregateAlwaysOneRow) {
  Table out = *HashAggregate(People(), {}, {CountStar("n")});
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.row(0)[0].int_value(), 4);
  // Empty input too.
  Table empty(People().schema());
  Table out2 = *HashAggregate(empty, {}, {CountStar("n")});
  ASSERT_EQ(out2.num_rows(), 1u);
  EXPECT_EQ(out2.row(0)[0].int_value(), 0);
}

TEST(HashAggregateTest, ArgMaxReturnsOutputAtMaxOrderKey) {
  // argmax(score, name): within each age group, the name with top score.
  Table out = *HashAggregate(People(), {"age"},
                             {ArgMaxOf(Col("score"), Col("name"), "best")});
  Table sorted = *SortBy(out, {"age"});
  EXPECT_EQ(sorted.row(0)[1].string_value(), "bob");  // age 25
  EXPECT_EQ(sorted.row(1)[1].string_value(), "ann");  // 1.5 > 0.5
  EXPECT_EQ(sorted.row(2)[1].string_value(), "dan");
}

TEST(HashAggregateTest, ArgMaxTieBreaksTowardSmallerOutput) {
  TableBuilder b({{"g", DataType::kInt64},
                  {"k", DataType::kDouble},
                  {"v", DataType::kString}});
  b.AddRow({Value::Int(1), Value::Double(5.0), Value::String("zz")});
  b.AddRow({Value::Int(1), Value::Double(5.0), Value::String("aa")});
  Table out = *HashAggregate(b.Build(), {"g"},
                             {ArgMaxOf(Col("k"), Col("v"), "best")});
  EXPECT_EQ(out.row(0)[1].string_value(), "aa");
}

TEST(HashAggregateTest, ArgMinMirrorsArgMax) {
  Table out = *HashAggregate(People(), {"age"},
                             {ArgMinOf(Col("score"), Col("name"), "worst")});
  Table sorted = *SortBy(out, {"age"});
  EXPECT_EQ(sorted.row(1)[1].string_value(), "cat");  // 0.5 < 1.5
}

TEST(HashAggregateTest, SumOverIntsStaysInt) {
  Table out = *HashAggregate(People(), {}, {SumOf(Col("age"), "total")});
  EXPECT_EQ(out.row(0)[0].type(), DataType::kInt64);
  EXPECT_EQ(out.row(0)[0].int_value(), 125);
}

TEST(AggAccumulatorTest, MergeMatchesSequential) {
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                       AggKind::kMax, AggKind::kArgMax, AggKind::kArgMin}) {
    AggAccumulator whole(kind), left(kind), right(kind);
    Rng rng(55);
    for (int i = 0; i < 100; ++i) {
      Value arg = Value::Double(rng.NextDouble());
      Value output = Value::Int(static_cast<int64_t>(rng.Uniform(1000)));
      whole.Add(arg, output);
      (i % 2 == 0 ? left : right).Add(arg, output);
    }
    left.Merge(right);
    Value expected = *whole.Finish();
    Value merged = *left.Finish();
    if (expected.type() == DataType::kDouble) {
      // Double sums may differ in the last bits depending on association.
      EXPECT_NEAR(expected.double_value(), merged.double_value(), 1e-9)
          << "kind=" << static_cast<int>(kind);
    } else {
      EXPECT_EQ(expected.Compare(merged), 0)
          << "kind=" << static_cast<int>(kind);
    }
  }
}

TEST(AggAccumulatorTest, EmptyFinishes) {
  EXPECT_EQ(AggAccumulator(AggKind::kCount).Finish()->int_value(), 0);
  EXPECT_TRUE(AggAccumulator(AggKind::kSum).Finish()->is_null());
  EXPECT_TRUE(AggAccumulator(AggKind::kMax).Finish()->is_null());
  EXPECT_TRUE(AggAccumulator(AggKind::kArgMax).Finish()->is_null());
}

// ------------------------------------------------------ Union & Distinct --

TEST(UnionAllTest, ConcatenatesAndChecksArity) {
  Table out = *UnionAll(People(), People());
  EXPECT_EQ(out.num_rows(), 8u);
  EXPECT_FALSE(UnionAll(People(), Orders()).ok());
}

TEST(DistinctTest, RemovesDuplicateRows) {
  TableBuilder b({{"a", DataType::kInt64}});
  b.AddRow({Value::Int(1)});
  b.AddRow({Value::Int(2)});
  b.AddRow({Value::Int(1)});
  Table out = *Distinct(b.Build());
  EXPECT_EQ(out.num_rows(), 2u);
  // First occurrence order preserved.
  EXPECT_EQ(out.row(0)[0].int_value(), 1);
  EXPECT_EQ(out.row(1)[0].int_value(), 2);
}

// ---------------------------------------------------------- Sort & Limit --

TEST(SortByTest, MultiKeyMixedDirections) {
  Table out = *SortBy(People(), {"age", "score"}, {true, false});
  EXPECT_EQ(out.row(0)[0].string_value(), "bob");
  EXPECT_EQ(out.row(1)[0].string_value(), "ann");  // 30, score desc: 1.5 first
  EXPECT_EQ(out.row(2)[0].string_value(), "cat");
  EXPECT_EQ(out.row(3)[0].string_value(), "dan");
}

TEST(SortByTest, UnknownKeyRejected) {
  EXPECT_FALSE(SortBy(People(), {"nope"}).ok());
}

TEST(LimitTest, TruncatesAndClamps) {
  EXPECT_EQ(Limit(People(), 2)->num_rows(), 2u);
  EXPECT_EQ(Limit(People(), 100)->num_rows(), 4u);
  EXPECT_EQ(Limit(People(), 0)->num_rows(), 0u);
}

}  // namespace
}  // namespace esharp::sql
