#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "community/modularity.h"
#include "community/newman.h"
#include "community/parallel_cd.h"
#include "community/sql_cd.h"
#include "community/store.h"
#include "common/rng.h"

namespace esharp::community {
namespace {

// Two 4-cliques joined by one weak bridge: the canonical two-community graph.
graph::Graph TwoCliques() {
  graph::Graph g;
  for (int i = 0; i < 8; ++i) g.AddVertex("v" + std::to_string(i));
  auto edge = [&](int a, int b, double w) {
    ASSERT_TRUE(g.AddEdge(a, b, w).ok());
  };
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) edge(a, b, 1.0);
  }
  for (int a = 4; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) edge(a, b, 1.0);
  }
  edge(3, 4, 0.1);  // bridge
  g.Finalize();
  return g;
}

// Planted-partition random graph: k groups, dense inside, sparse across.
graph::Graph PlantedPartition(size_t k, size_t group_size, double p_in,
                              double p_out, uint64_t seed) {
  Rng rng(seed);
  graph::Graph g;
  size_t n = k * group_size;
  for (size_t i = 0; i < n; ++i) g.AddVertex("v" + std::to_string(i));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      bool same = (a / group_size) == (b / group_size);
      double p = same ? p_in : p_out;
      if (rng.Bernoulli(p)) {
        double w = 0.2 + 0.8 * rng.NextDouble();
        EXPECT_TRUE(g.AddEdge(static_cast<graph::VertexId>(a),
                              static_cast<graph::VertexId>(b), w)
                        .ok());
      }
    }
  }
  g.Finalize();
  return g;
}

// Partition as a canonical set-of-sets, independent of community naming.
std::set<std::set<graph::VertexId>> AsPartition(
    const std::vector<CommunityId>& assignment) {
  std::map<CommunityId, std::set<graph::VertexId>> groups;
  for (graph::VertexId v = 0; v < assignment.size(); ++v) {
    groups[assignment[v]].insert(v);
  }
  std::set<std::set<graph::VertexId>> out;
  for (auto& [c, members] : groups) out.insert(std::move(members));
  return out;
}

// ------------------------------------------------------------ Modularity --

TEST(ModularityTest, MergeGainMatchesEq8ByHand) {
  // Graph: a-b (w=2), b-c (w=1). m_G = 3.
  graph::Graph g;
  g.AddVertex("a");
  g.AddVertex("b");
  g.AddVertex("c");
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  g.Finalize();
  ModularityContext ctx(g);
  EXPECT_DOUBLE_EQ(ctx.total_weight(), 3.0);
  // Merge {a} and {b}: D_a = 2, D_b = 3, w_ab = 2.
  // DeltaMod = 2 - 2*3/(2*3) = 1.
  EXPECT_DOUBLE_EQ(ctx.MergeGain(2.0, 3.0, 2.0), 1.0);
  // Merge {a} and {c}: no edge: w = 0, gain negative.
  EXPECT_LT(ctx.MergeGain(2.0, 1.0, 0.0), 0.0);
}

TEST(ModularityTest, CommunityModularityMatchesEq6) {
  graph::Graph g = TwoCliques();
  ModularityContext ctx(g);
  // A 4-clique community: internal weight 6, degree sum: vertices 0,1,2
  // have degree 3, vertex 3 has 3 + 0.1.
  double internal = 6.0, degree_sum = 3 * 3 + 3.1;
  double m = g.TotalWeight();
  double expected = internal - m * std::pow(degree_sum / (2 * m), 2);
  EXPECT_NEAR(ctx.CommunityModularity(internal, degree_sum), expected, 1e-12);
}

TEST(ModularityTest, DiscretizedGainConvergesToWeightedGain) {
  graph::Graph g = TwoCliques();
  ModularityContext ctx(g);
  double weighted = ctx.MergeGain(3.0, 3.1, 1.0);
  double prev_err = 1e9;
  for (double scale : {10.0, 100.0, 1000.0, 100000.0}) {
    double approx = DiscretizedGain(3.0, 3.1, 1.0, g.TotalWeight(), scale);
    double err = std::abs(approx - weighted);
    EXPECT_LE(err, prev_err + 1e-12);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-3);
}

TEST(PartitionTest, SingletonBookkeeping) {
  graph::Graph g = TwoCliques();
  Partition p(g);
  EXPECT_EQ(p.NumCommunities(), 8u);
  EXPECT_DOUBLE_EQ(p.DegreeSum(0), 3.0);
  EXPECT_DOUBLE_EQ(p.DegreeSum(3), 3.1);
  EXPECT_DOUBLE_EQ(p.InternalWeight(0), 0.0);
  EXPECT_EQ(p.InterCommunityWeights().size(), g.num_edges());
}

TEST(PartitionTest, RelabelUpdatesBookkeeping) {
  graph::Graph g = TwoCliques();
  Partition p(g);
  // Merge the first clique into community 0.
  std::unordered_map<CommunityId, CommunityId> relabel = {
      {1, 0}, {2, 0}, {3, 0}};
  p.Relabel(relabel);
  EXPECT_EQ(p.NumCommunities(), 5u);
  EXPECT_DOUBLE_EQ(p.InternalWeight(0), 6.0);
  EXPECT_DOUBLE_EQ(p.DegreeSum(0), 12.1);
  EXPECT_EQ(p.Members(0).size(), 4u);
  // Bridge is now the only inter-community edge touching community 0.
  auto between = p.InterCommunityWeights();
  EXPECT_DOUBLE_EQ(between.at(Partition::PairKey(0, 4)), 0.1);
}

TEST(PartitionTest, TotalModularityImprovesWithGoodPartition) {
  graph::Graph g = TwoCliques();
  ModularityContext ctx(g);
  Partition singleton(g);
  Partition good(g);
  good.Relabel({{1, 0}, {2, 0}, {3, 0}, {5, 4}, {6, 4}, {7, 4}});
  EXPECT_GT(good.TotalModularity(ctx), singleton.TotalModularity(ctx));
}

// ----------------------------------------------------- Parallel detection --

TEST(ParallelCdTest, TwoCliquesSplitCorrectly) {
  graph::Graph g = TwoCliques();
  DetectionResult r = *DetectCommunitiesParallel(g);
  EXPECT_TRUE(r.converged);
  auto partition = AsPartition(r.assignment);
  std::set<std::set<graph::VertexId>> expected = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  EXPECT_EQ(partition, expected);
}

TEST(ParallelCdTest, CommunityCountMonotonicallyDecreases) {
  graph::Graph g = PlantedPartition(6, 8, 0.8, 0.03, 31);
  DetectionResult r = *DetectCommunitiesParallel(g);
  for (size_t i = 1; i < r.communities_per_iteration.size(); ++i) {
    EXPECT_LE(r.communities_per_iteration[i],
              r.communities_per_iteration[i - 1]);
  }
  EXPECT_LT(r.communities_per_iteration.back(),
            r.communities_per_iteration.front());
}

TEST(ParallelCdTest, ModularityNeverDecreases) {
  graph::Graph g = PlantedPartition(5, 6, 0.8, 0.05, 37);
  DetectionResult r = *DetectCommunitiesParallel(g);
  for (size_t i = 1; i < r.modularity_per_iteration.size(); ++i) {
    EXPECT_GE(r.modularity_per_iteration[i],
              r.modularity_per_iteration[i - 1] - 1e-9);
  }
}

TEST(ParallelCdTest, RecoversPlantedPartition) {
  graph::Graph g = PlantedPartition(4, 10, 0.9, 0.01, 41);
  DetectionResult r = *DetectCommunitiesParallel(g);
  // The planted groups should be recovered (possibly with a stray vertex).
  auto partition = AsPartition(r.assignment);
  EXPECT_GE(partition.size(), 4u);
  EXPECT_LE(partition.size(), 6u);
  // Most pairs within a planted group share a community.
  size_t agree = 0, total = 0;
  for (graph::VertexId a = 0; a < 40; ++a) {
    for (graph::VertexId b = a + 1; b < 40; ++b) {
      if (a / 10 != b / 10) continue;
      ++total;
      if (r.assignment[a] == r.assignment[b]) ++agree;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.9);
}

TEST(ParallelCdTest, EdgelessGraphIsAllOrphans) {
  graph::Graph g;
  g.AddVertex("a");
  g.AddVertex("b");
  g.Finalize();
  DetectionResult r = *DetectCommunitiesParallel(g);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(AsPartition(r.assignment).size(), 2u);
}

TEST(ParallelCdTest, EmptyGraphRejected) {
  graph::Graph g;
  EXPECT_FALSE(DetectCommunitiesParallel(g).ok());
}

TEST(ParallelCdTest, MaxIterationsCapsWork) {
  graph::Graph g = PlantedPartition(6, 8, 0.8, 0.03, 43);
  ParallelCdOptions options;
  options.max_iterations = 1;
  DetectionResult r = *DetectCommunitiesParallel(g, options);
  EXPECT_LE(r.iterations, 1u);
}

TEST(ParallelCdTest, PoolDoesNotChangeResult) {
  graph::Graph g = PlantedPartition(5, 8, 0.8, 0.04, 47);
  DetectionResult serial = *DetectCommunitiesParallel(g);
  ThreadPool pool(4);
  ParallelCdOptions options;
  options.pool = &pool;
  options.num_partitions = 5;
  DetectionResult parallel = *DetectCommunitiesParallel(g, options);
  EXPECT_EQ(AsPartition(serial.assignment), AsPartition(parallel.assignment));
  EXPECT_EQ(serial.communities_per_iteration,
            parallel.communities_per_iteration);
}

TEST(BestMergeTargetsTest, MutualBestPairCollapsesOntoSmallerId) {
  // Single edge a-b: both pick each other; b must move to a.
  graph::Graph g;
  g.AddVertex("a");
  g.AddVertex("b");
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  g.Finalize();
  Partition p(g);
  ModularityContext ctx(g);
  auto moves = BestMergeTargets(p, ctx, nullptr, 1);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].first, 1u);
  EXPECT_EQ(moves[0].second, 0u);
}

// -------------------------------------------------------------- Newman ---

TEST(NewmanTest, TwoCliquesSplitCorrectly) {
  graph::Graph g = TwoCliques();
  DetectionResult r = *DetectCommunitiesNewman(g);
  auto partition = AsPartition(r.assignment);
  std::set<std::set<graph::VertexId>> expected = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  EXPECT_EQ(partition, expected);
}

TEST(NewmanTest, ModularityTraceMatchesPartitionScore) {
  graph::Graph g = PlantedPartition(4, 6, 0.8, 0.05, 53);
  DetectionResult r = *DetectCommunitiesNewman(g);
  ModularityContext ctx(g);
  Partition p(g);
  std::unordered_map<CommunityId, CommunityId> relabel;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    relabel[static_cast<CommunityId>(v)] = r.assignment[v];
  }
  p.Relabel(relabel);
  EXPECT_NEAR(r.modularity_per_iteration.back(), p.TotalModularity(ctx),
              1e-9);
}

TEST(NewmanTest, OneMergePerIteration) {
  graph::Graph g = TwoCliques();
  DetectionResult r = *DetectCommunitiesNewman(g);
  for (size_t i = 1; i < r.communities_per_iteration.size(); ++i) {
    EXPECT_EQ(r.communities_per_iteration[i - 1] -
                  r.communities_per_iteration[i],
              1u);
  }
}

TEST(NewmanTest, TargetCommunitiesStopsEarly) {
  graph::Graph g = PlantedPartition(6, 6, 0.9, 0.02, 59);
  NewmanOptions options;
  options.target_communities = 30;
  DetectionResult r = *DetectCommunitiesNewman(g, options);
  EXPECT_LE(r.communities_per_iteration.back(), 36u);
  EXPECT_GE(r.communities_per_iteration.back(), 30u);
}

TEST(NewmanTest, NewmanModularityAtLeastParallel) {
  // The sequential greedy is the quality reference; the parallel variant
  // trades a little modularity for parallelism. Allow small slack.
  for (uint64_t seed : {61, 67, 71}) {
    graph::Graph g = PlantedPartition(5, 8, 0.7, 0.05, seed);
    DetectionResult newman = *DetectCommunitiesNewman(g);
    DetectionResult par = *DetectCommunitiesParallel(g);
    EXPECT_GE(newman.modularity_per_iteration.back(),
              par.modularity_per_iteration.back() - 0.35)
        << "seed " << seed;
  }
}

// ------------------------------------------------- SQL == native equality --

class SqlEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlEquivalenceTest, SqlAndNativeProduceIdenticalPartitions) {
  graph::Graph g = PlantedPartition(4, 6, 0.75, 0.06, GetParam());
  DetectionResult native = *DetectCommunitiesParallel(g);
  DetectionResult sql = *DetectCommunitiesSql(g);
  EXPECT_EQ(AsPartition(native.assignment), AsPartition(sql.assignment));
  EXPECT_EQ(native.communities_per_iteration, sql.communities_per_iteration);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlEquivalenceTest,
                         ::testing::Values(101, 103, 107, 109, 113));

TEST(SqlCdTest, TwoCliquesSplitCorrectly) {
  graph::Graph g = TwoCliques();
  DetectionResult r = *DetectCommunitiesSql(g);
  auto partition = AsPartition(r.assignment);
  std::set<std::set<graph::VertexId>> expected = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  EXPECT_EQ(partition, expected);
}

TEST(SqlCdTest, ParallelEngineMatchesSerialEngine) {
  graph::Graph g = PlantedPartition(3, 6, 0.8, 0.05, 127);
  DetectionResult serial = *DetectCommunitiesSql(g);
  ThreadPool pool(4);
  for (sql::JoinStrategy strategy :
       {sql::JoinStrategy::kReplicated, sql::JoinStrategy::kPartitioned}) {
    SqlCdOptions options;
    options.pool = &pool;
    options.num_partitions = 4;
    options.join_strategy = strategy;
    DetectionResult parallel = *DetectCommunitiesSql(g, options);
    EXPECT_EQ(AsPartition(serial.assignment),
              AsPartition(parallel.assignment));
  }
}

TEST(SqlCdTest, ModularityTraceIsConsistentWithNative) {
  graph::Graph g = PlantedPartition(3, 8, 0.8, 0.04, 131);
  DetectionResult native = *DetectCommunitiesParallel(g);
  DetectionResult sql = *DetectCommunitiesSql(g);
  ASSERT_EQ(native.modularity_per_iteration.size(),
            sql.modularity_per_iteration.size());
  for (size_t i = 0; i < native.modularity_per_iteration.size(); ++i) {
    EXPECT_NEAR(native.modularity_per_iteration[i],
                sql.modularity_per_iteration[i], 1e-6);
  }
}

class SqlTextEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlTextEquivalenceTest, LiteralSqlMatchesNativeAndPlanBased) {
  graph::Graph g = PlantedPartition(3, 6, 0.75, 0.06, GetParam());
  DetectionResult native = *DetectCommunitiesParallel(g);
  DetectionResult sql_text = *DetectCommunitiesSqlText(g);
  EXPECT_EQ(AsPartition(native.assignment), AsPartition(sql_text.assignment));
  EXPECT_EQ(native.communities_per_iteration,
            sql_text.communities_per_iteration);
  ASSERT_EQ(native.modularity_per_iteration.size(),
            sql_text.modularity_per_iteration.size());
  for (size_t i = 0; i < native.modularity_per_iteration.size(); ++i) {
    EXPECT_NEAR(native.modularity_per_iteration[i],
                sql_text.modularity_per_iteration[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlTextEquivalenceTest,
                         ::testing::Values(211, 223, 227));

TEST(SqlTextCdTest, TwoCliquesSplitCorrectly) {
  graph::Graph g = TwoCliques();
  DetectionResult r = *DetectCommunitiesSqlText(g);
  auto partition = AsPartition(r.assignment);
  std::set<std::set<graph::VertexId>> expected = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  EXPECT_EQ(partition, expected);
  EXPECT_TRUE(r.converged);
}

TEST(SqlTextCdTest, ParallelEngineMatchesSerial) {
  graph::Graph g = PlantedPartition(3, 5, 0.8, 0.05, 229);
  DetectionResult serial = *DetectCommunitiesSqlText(g);
  ThreadPool pool(4);
  SqlCdOptions options;
  options.pool = &pool;
  options.num_partitions = 4;
  DetectionResult parallel = *DetectCommunitiesSqlText(g, options);
  EXPECT_EQ(AsPartition(serial.assignment), AsPartition(parallel.assignment));
}

TEST(SqlVertexNameTest, PaddedNamesOrderNumerically) {
  EXPECT_LT(SqlVertexName(2), SqlVertexName(10));
  EXPECT_LT(SqlVertexName(99), SqlVertexName(100));
}

// ----------------------------------------------------------------- Store --

TEST(StoreTest, BuildGroupsTermsByCommunity) {
  graph::Graph g = TwoCliques();
  DetectionResult r = *DetectCommunitiesParallel(g);
  CommunityStore store = CommunityStore::Build(g, r.assignment);
  EXPECT_EQ(store.num_communities(), 2u);
  const Community& c = **store.Find("v0");
  EXPECT_EQ(c.terms.size(), 4u);
  // Lookup is case-insensitive exact match.
  EXPECT_TRUE(store.Find("V0").ok());
  EXPECT_FALSE(store.Find("v99").ok());
}

TEST(StoreTest, SizeHistogramBuckets) {
  graph::Graph g;
  // 1 orphan, one community of 3, one of 12, one of 60.
  std::vector<CommunityId> assignment;
  int v = 0;
  auto add_group = [&](int size, CommunityId c) {
    for (int i = 0; i < size; ++i) {
      g.AddVertex("t" + std::to_string(v++));
      assignment.push_back(c);
    }
  };
  add_group(1, 0);
  add_group(3, 1);
  add_group(12, 2);
  add_group(60, 3);
  g.Finalize();
  CommunityStore store = CommunityStore::Build(g, assignment);
  SizeHistogram h = store.ComputeSizeHistogram();
  EXPECT_EQ(h.orphans, 1u);
  EXPECT_EQ(h.small, 1u);
  EXPECT_EQ(h.medium, 1u);
  EXPECT_EQ(h.large, 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(StoreTest, ClosestCommunitiesOrderedByInterWeight) {
  graph::Graph g;
  for (int i = 0; i < 6; ++i) g.AddVertex("v" + std::to_string(i));
  // Communities {0,1}, {2,3}, {4,5}; strong link c0-c1, weak c0-c2.
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(4, 5, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 4, 0.2).ok());
  g.Finalize();
  std::vector<CommunityId> assignment = {0, 0, 1, 1, 2, 2};
  CommunityStore store = CommunityStore::Build(g, assignment);
  auto closest = store.ClosestCommunities(0, 3);
  ASSERT_EQ(closest.size(), 2u);
  EXPECT_EQ(closest[0].first, 1u);
  EXPECT_DOUBLE_EQ(closest[0].second, 0.9);
  EXPECT_EQ(closest[1].first, 2u);
}

TEST(StoreTest, SizeBytesPositive) {
  graph::Graph g = TwoCliques();
  DetectionResult r = *DetectCommunitiesParallel(g);
  CommunityStore store = CommunityStore::Build(g, r.assignment);
  EXPECT_GT(store.SizeBytes(), 0u);
}

}  // namespace
}  // namespace esharp::community
