#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/strings.h"
#include "querylog/generator.h"
#include "querylog/log.h"
#include "querylog/universe.h"
#include "querylog/variants.h"

namespace esharp::querylog {
namespace {

UniverseOptions SmallUniverse() {
  UniverseOptions o;
  o.num_categories = 3;
  o.domains_per_category = 10;
  o.seed = 5;
  return o;
}

// -------------------------------------------------------------- Universe --

TEST(UniverseTest, GeneratesRequestedShape) {
  TopicUniverse u = *TopicUniverse::Generate(SmallUniverse());
  EXPECT_EQ(u.num_domains(), 30u);
  EXPECT_EQ(u.num_categories(), 3u);
  for (const TopicDomain& d : u.domains()) {
    EXPECT_FALSE(d.terms.empty());
    EXPECT_GE(d.urls.size(), SmallUniverse().min_urls_per_domain);
    EXPECT_LE(d.urls.size(), SmallUniverse().max_urls_per_domain);
    EXPECT_LT(d.category, 3u);
  }
}

TEST(UniverseTest, DeterministicForSeed) {
  TopicUniverse a = *TopicUniverse::Generate(SmallUniverse());
  TopicUniverse b = *TopicUniverse::Generate(SmallUniverse());
  ASSERT_EQ(a.num_domains(), b.num_domains());
  for (size_t i = 0; i < a.num_domains(); ++i) {
    EXPECT_EQ(a.domain(i).terms, b.domain(i).terms);
    EXPECT_EQ(a.domain(i).urls, b.domain(i).urls);
  }
}

TEST(UniverseTest, TermsAreUniqueAcrossDomains) {
  TopicUniverse u = *TopicUniverse::Generate(SmallUniverse());
  std::unordered_set<std::string> seen;
  for (const TopicDomain& d : u.domains()) {
    for (const std::string& t : d.terms) {
      EXPECT_TRUE(seen.insert(t).second) << "duplicate term " << t;
    }
  }
}

TEST(UniverseTest, UrlsAreDisjointAcrossDomains) {
  TopicUniverse u = *TopicUniverse::Generate(SmallUniverse());
  std::unordered_set<uint32_t> seen;
  for (const TopicDomain& d : u.domains()) {
    for (uint32_t url : d.urls) {
      EXPECT_TRUE(seen.insert(url).second) << "duplicate url " << url;
    }
  }
  // Category and noise URLs are separate id spaces.
  for (size_t c = 0; c < u.num_categories(); ++c) {
    for (uint32_t url : u.category_urls(static_cast<uint32_t>(c))) {
      EXPECT_TRUE(seen.insert(url).second);
    }
  }
}

TEST(UniverseTest, SeedTermsAppear) {
  TopicUniverse u = *TopicUniverse::Generate(SmallUniverse());
  EXPECT_TRUE(u.DomainOfTerm("49ers").ok());
  EXPECT_TRUE(u.DomainOfTerm("nasdaq").ok());
  EXPECT_FALSE(u.DomainOfTerm("not a term").ok());
}

TEST(UniverseTest, RelatedDomainsStayInCategory) {
  TopicUniverse u = *TopicUniverse::Generate(SmallUniverse());
  for (const TopicDomain& d : u.domains()) {
    EXPECT_LE(d.related.size(), SmallUniverse().related_per_domain);
    for (DomainId r : d.related) {
      EXPECT_EQ(u.CategoryOf(r), d.category);
      EXPECT_NE(r, d.id);
    }
  }
}

TEST(UniverseTest, InvalidOptionsRejected) {
  UniverseOptions o = SmallUniverse();
  o.num_categories = 0;
  EXPECT_FALSE(TopicUniverse::Generate(o).ok());
  o = SmallUniverse();
  o.min_terms_per_domain = 5;
  o.max_terms_per_domain = 2;
  EXPECT_FALSE(TopicUniverse::Generate(o).ok());
}

TEST(UniverseTest, CategoryNames) {
  auto names = DefaultCategoryNames(7);
  EXPECT_EQ(names[0], "sports");
  EXPECT_EQ(names[5], "top250");
  EXPECT_EQ(names[6], "category6");
}

// -------------------------------------------------------------- Variants --

TEST(VariantsTest, HashtagAndNoSpace) {
  Rng rng(1);
  EXPECT_EQ(ApplyVariant("san francisco", VariantKind::kHashtag, &rng),
            "#sanfrancisco");
  EXPECT_EQ(ApplyVariant("san francisco", VariantKind::kNoSpace, &rng),
            "sanfrancisco");
}

TEST(VariantsTest, AbbreviationNeedsMultipleWords) {
  Rng rng(1);
  EXPECT_EQ(ApplyVariant("san francisco", VariantKind::kAbbreviation, &rng),
            "sf");
  EXPECT_EQ(ApplyVariant("nasdaq", VariantKind::kAbbreviation, &rng),
            "nasdaq");  // single word: unchanged
}

TEST(VariantsTest, TyposAreSmallEdits) {
  Rng rng(2);
  for (VariantKind kind : {VariantKind::kTypoSwap, VariantKind::kTypoDrop,
                           VariantKind::kTypoDouble}) {
    for (int i = 0; i < 50; ++i) {
      std::string v = ApplyVariant("bluetooth", kind, &rng);
      EXPECT_LE(EditDistance("bluetooth", v), 2u)
          << "kind=" << static_cast<int>(kind) << " v=" << v;
    }
  }
}

TEST(VariantsTest, DeriveVariantsCanonicalFirstAndUnique) {
  Rng rng(3);
  VariantOptions options;
  options.mean_variants_per_term = 4;
  for (int i = 0; i < 20; ++i) {
    auto variants = DeriveVariants("baltimore ravens", options, &rng);
    ASSERT_FALSE(variants.empty());
    EXPECT_EQ(variants[0].text, "baltimore ravens");
    EXPECT_EQ(variants[0].kind, VariantKind::kCanonical);
    std::set<std::string> texts;
    for (const auto& v : variants) {
      EXPECT_TRUE(texts.insert(v.text).second) << "duplicate " << v.text;
    }
    EXPECT_LE(variants.size(), options.max_variants_per_term + 1);
  }
}

// ------------------------------------------------------------------- Log --

TEST(QueryLogTest, AddQueryDedupes) {
  QueryLog log;
  uint32_t a = log.AddQuery("nfl", 1, false);
  uint32_t b = log.AddQuery("nfl", 1, false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(log.num_queries(), 1u);
  EXPECT_EQ(*log.FindQuery("nfl"), a);
  EXPECT_FALSE(log.FindQuery("nba").ok());
}

TEST(QueryLogTest, ClicksAccumulate) {
  QueryLog log;
  uint32_t q = log.AddQuery("nfl", 1, false);
  log.AddClicks(q, 10, 5);
  log.AddClicks(q, 10, 3);
  log.AddClicks(q, 11, 1);
  log.AddClicks(q, 12, 0);  // zero ignored
  EXPECT_EQ(log.num_records(), 2u);
  auto vectors = log.BuildClickVectors();
  EXPECT_DOUBLE_EQ(vectors[q].Sum(), 9.0);
}

TEST(QueryLogTest, FilterByMinCountKeepsPopular) {
  QueryLog log;
  uint32_t a = log.AddQuery("head", 1, false);
  uint32_t b = log.AddQuery("tail", 2, false);
  log.AddSearches(a, 100);
  log.AddSearches(b, 10);
  log.AddClicks(a, 1, 50);
  log.AddClicks(b, 2, 5);
  QueryLog filtered = log.FilterByMinCount(50);
  EXPECT_EQ(filtered.num_queries(), 1u);
  EXPECT_EQ(filtered.query(0).text, "head");
  EXPECT_EQ(filtered.num_records(), 1u);
  // Ids are re-assigned densely.
  EXPECT_EQ(*filtered.FindQuery("head"), 0u);
}

TEST(QueryLogTest, TsvRoundTrip) {
  QueryLog log;
  uint32_t a = log.AddQuery("dow futures", 1, false);
  log.AddClicks(a, 7, 12);
  log.AddSearches(a, 12);
  std::string tsv = log.SerializeTsv();
  EXPECT_EQ(tsv, "dow futures\t7\t12\n");
  QueryLog parsed = *QueryLog::ParseTsv(tsv);
  EXPECT_EQ(parsed.num_queries(), 1u);
  EXPECT_EQ(parsed.num_records(), 1u);
  EXPECT_EQ(parsed.query(0).text, "dow futures");
}

TEST(QueryLogTest, ParseTsvRejectsGarbage) {
  EXPECT_FALSE(QueryLog::ParseTsv("only\ttwo").ok());
  EXPECT_FALSE(QueryLog::ParseTsv("a\tx\t1").ok());
  EXPECT_TRUE(QueryLog::ParseTsv("").ok());
}

TEST(QueryLogTest, ToClickTableSchema) {
  QueryLog log;
  uint32_t a = log.AddQuery("xbox", 1, false);
  log.AddClicks(a, 3, 4);
  sql::Table t = log.ToClickTable();
  EXPECT_EQ(t.schema().ToString(), "query:STRING, url:INT64, clicks:INT64");
  EXPECT_EQ(t.num_rows(), 1u);
}

// -------------------------------------------------------------- Generator --

class GeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    universe_ = std::make_unique<TopicUniverse>(
        *TopicUniverse::Generate(SmallUniverse()));
    GeneratorOptions options;
    options.seed = 11;
    options.head_impressions = 20000;
    generated_ = std::make_unique<GeneratedLog>(
        *GenerateQueryLog(*universe_, options));
  }

  std::unique_ptr<TopicUniverse> universe_;
  std::unique_ptr<GeneratedLog> generated_;
};

TEST_F(GeneratorTest, EveryDomainHeadTermIsLogged) {
  for (const TopicDomain& d : universe_->domains()) {
    EXPECT_TRUE(generated_->log.FindQuery(d.terms[0]).ok())
        << "missing head term " << d.terms[0];
  }
}

TEST_F(GeneratorTest, HeadTermOutranksSiblings) {
  const QueryLog& log = generated_->log;
  for (const TopicDomain& d : universe_->domains()) {
    auto head = log.FindQuery(d.terms[0]);
    if (!head.ok()) continue;
    for (size_t t = 1; t < d.terms.size(); ++t) {
      auto sib = log.FindQuery(d.terms[t]);
      if (!sib.ok()) continue;  // tail siblings may round to zero
      EXPECT_GE(log.query(*head).total_count, log.query(*sib).total_count);
    }
  }
}

TEST_F(GeneratorTest, VariantsAreLessPopularThanCanonical) {
  const QueryLog& log = generated_->log;
  std::unordered_map<DomainId, uint64_t> canonical_max;
  for (const QueryInfo& q : log.queries()) {
    if (q.true_domain == kNoDomain || q.is_variant) continue;
    canonical_max[q.true_domain] =
        std::max(canonical_max[q.true_domain], q.total_count);
  }
  for (const QueryInfo& q : log.queries()) {
    if (q.true_domain == kNoDomain || !q.is_variant) continue;
    EXPECT_LE(q.total_count, canonical_max[q.true_domain])
        << "variant " << q.text;
  }
}

TEST_F(GeneratorTest, SameDomainQueriesClickCloserThanCrossDomain) {
  // The core property extraction relies on: cosine within a domain beats
  // cosine across unrelated domains.
  const QueryLog& log = generated_->log;
  auto vectors = log.BuildClickVectors();
  const TopicDomain& d0 = universe_->domain(0);
  const TopicDomain& far = universe_->domain(universe_->num_domains() - 1);
  auto q_head = log.FindQuery(d0.terms[0]);
  ASSERT_TRUE(q_head.ok());
  // Within: head vs its own hashtag/sibling variants.
  double within_best = 0;
  for (const QueryInfo& q : log.queries()) {
    if (q.true_domain == d0.id && q.id != *q_head) {
      within_best =
          std::max(within_best, vectors[*q_head].Cosine(vectors[q.id]));
    }
  }
  auto q_far = log.FindQuery(far.terms[0]);
  ASSERT_TRUE(q_far.ok());
  double across = vectors[*q_head].Cosine(vectors[*q_far]);
  EXPECT_GT(within_best, across);
  EXPECT_GT(within_best, 0.3);
}

TEST_F(GeneratorTest, NoiseQueriesMostlyBelowFilter) {
  const QueryLog& log = generated_->log;
  size_t noise_total = 0, noise_below_50 = 0;
  for (const QueryInfo& q : log.queries()) {
    if (q.true_domain != kNoDomain) continue;
    ++noise_total;
    if (q.total_count < 50) ++noise_below_50;
  }
  ASSERT_GT(noise_total, 0u);
  EXPECT_GT(static_cast<double>(noise_below_50) /
                static_cast<double>(noise_total),
            0.5);
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions options;
  options.seed = 11;
  options.head_impressions = 20000;
  GeneratedLog again = *GenerateQueryLog(*universe_, options);
  EXPECT_EQ(again.log.num_queries(), generated_->log.num_queries());
  EXPECT_EQ(again.log.num_records(), generated_->log.num_records());
  EXPECT_EQ(again.log.SerializeTsv(), generated_->log.SerializeTsv());
}

TEST(GeneratorOptionsTest, InvalidSharesRejected) {
  TopicUniverse u = *TopicUniverse::Generate(SmallUniverse());
  GeneratorOptions o;
  o.domain_click_share = 0.8;
  o.category_click_share = 0.4;
  EXPECT_FALSE(GenerateQueryLog(u, o).ok());
  GeneratorOptions o2;
  o2.head_impressions = 0;
  EXPECT_FALSE(GenerateQueryLog(u, o2).ok());
}

}  // namespace
}  // namespace esharp::querylog
