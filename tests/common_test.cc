#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/hash.h"
#include "common/partitioner.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sparse_vector.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace esharp {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k: ", 42);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad k: 42");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad k: 42");
}

TEST(StatusTest, AllFactoriesMapToTheirCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto inner = []() { return Status::NotFound("gone"); };
  auto outer = [&]() -> Status {
    ESHARP_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto fetch = [](bool fail) -> Result<std::string> {
    if (fail) return Status::IOError("disk");
    return std::string("payload");
  };
  auto use = [&](bool fail) -> Result<size_t> {
    ESHARP_ASSIGN_OR_RETURN(std::string s, fetch(fail));
    return s.size();
  };
  ASSERT_TRUE(use(false).ok());
  EXPECT_EQ(*use(false), 7u);
  EXPECT_TRUE(use(true).status().IsIOError());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gaussian());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.StdDev(), 1.0, 0.03);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(17);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.Poisson(4.5));
  EXPECT_NEAR(total / n, 4.5, 0.15);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(19);
  double total = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(total / n, 200.0, 2.0);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Split();
  // The child stream must not replay the parent stream.
  Rng b(31);
  b.Split();
  EXPECT_NE(child.Next(), b.Next());
}

// ------------------------------------------------------------------ Zipf --

class ZipfParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfParamTest, PmfSumsToOneAndDecreases) {
  ZipfSampler zipf(100, GetParam());
  double sum = 0;
  for (size_t k = 0; k < zipf.size(); ++k) {
    sum += zipf.Pmf(k);
    if (k > 0) {
      EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ZipfParamTest, EmpiricalFrequenciesTrackPmf) {
  ZipfSampler zipf(20, GetParam());
  Rng rng(37);
  std::vector<int> counts(20, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), zipf.Pmf(k), 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfParamTest,
                         ::testing::Values(0.8, 1.0, 1.2, 2.0));

TEST(ZipfTest, SingleRankAlwaysSampled) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("49ers DRAFT"), "49ers draft");
  EXPECT_EQ(ToLowerAscii(""), "");
  EXPECT_EQ(ToLowerAscii("#SanFrancisco"), "#sanfrancisco");
}

TEST(StringsTest, SplitWhitespaceSkipsRuns) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringsTest, SplitCharKeepsEmptyFields) {
  EXPECT_EQ(SplitChar("a\t\tb", '\t'),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitChar("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"dow", "futures"};
  EXPECT_EQ(Join(parts, " "), "dow futures");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StripAscii) {
  EXPECT_EQ(StripAscii("  x y  "), "x y");
  EXPECT_EQ(StripAscii(""), "");
  EXPECT_EQ(StripAscii(" \t\n"), "");
}

TEST(StringsTest, ContainsAllTokensIsTheSection3Predicate) {
  // "a tweet matches a query if it contains all of its terms after
  // lower-casing" — whole-word containment, any order.
  EXPECT_TRUE(ContainsAllTokens("The 49ers DRAFT looks strong",
                                {"49ers", "draft"}));
  EXPECT_TRUE(ContainsAllTokens("draft news for the 49ers today",
                                {"49ers", "draft"}));
  EXPECT_FALSE(ContainsAllTokens("the 49ers game", {"49ers", "draft"}));
  // Whole-word: "draft" inside "drafting" must not match.
  EXPECT_FALSE(ContainsAllTokens("the 49ers drafting", {"draft"}));
  EXPECT_TRUE(ContainsAllTokens("anything", {}));
}

TEST(StringsTest, ContainsPhraseRequiresOrder) {
  // §5: the community must contain the query "exactly and in order".
  EXPECT_TRUE(ContainsPhrase({"san", "francisco", "giants"},
                             {"san", "francisco"}));
  EXPECT_FALSE(ContainsPhrase({"francisco", "san"}, {"san", "francisco"}));
  EXPECT_TRUE(ContainsPhrase({"A", "b"}, {"a"}));
  EXPECT_FALSE(ContainsPhrase({"a"}, {"a", "b"}));
}

TEST(StringsTest, EditDistance) {
  EXPECT_EQ(EditDistance("49ers", "49ers"), 0u);
  EXPECT_EQ(EditDistance("49ers", "49res"), 2u);  // transposition = 2 edits
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// ----------------------------------------------------------------- Stats --

TEST(StatsTest, WelfordMatchesClosedForm) {
  OnlineStats s;
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(s.ZScore(9.0), 2.0);
}

TEST(StatsTest, EmptyAndDegenerate) {
  OnlineStats s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
  EXPECT_EQ(s.ZScore(5.0), 0.0);  // zero stddev -> 0, not inf
  s.Add(3.0);
  EXPECT_EQ(s.ZScore(10.0), 0.0);
}

TEST(StatsTest, MergeEqualsSequential) {
  Rng rng(43);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Gaussian() * 3 + 1;
    whole.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-9);
}

TEST(StatsTest, MergeWithEmptySides) {
  OnlineStats a, b;
  a.Add(1);
  a.Add(3);
  OnlineStats a_copy = a;
  a.Merge(b);  // merging empty is a no-op
  EXPECT_EQ(a.Mean(), a_copy.Mean());
  b.Merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(StatsTest, VectorHelpers) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_EQ(PearsonCorrelation({1, 1}, {2, 3}), 0.0);  // degenerate
}

// ---------------------------------------------------------- SparseVector --

TEST(SparseVectorTest, AccumulatesDuplicates) {
  SparseVector v;
  v.Add(3, 2.0);
  v.Add(3, 5.0);
  v.Add(1, 1.0);
  EXPECT_EQ(v.NumNonZero(), 2u);
  EXPECT_DOUBLE_EQ(v.Sum(), 8.0);
  EXPECT_EQ(v.entries()[0].first, 1u);  // sorted by dim
  EXPECT_EQ(v.entries()[1].second, 7.0);
}

TEST(SparseVectorTest, CosineMatchesPaperFigure2) {
  // Fig. 2: 49ers -> {49ers.com: 25, espn.com: 10};
  //         nfl   -> {nfl.com: 20, espn.com: 15}. Cosine ~ 0.22.
  SparseVector niners, nfl;
  niners.Add(0, 25);  // 49ers.com
  niners.Add(1, 10);  // espn.com
  nfl.Add(2, 20);     // nfl.com
  nfl.Add(1, 15);
  double expected = (10.0 * 15.0) /
                    (std::sqrt(25. * 25 + 10. * 10) *
                     std::sqrt(20. * 20 + 15. * 15));
  EXPECT_NEAR(niners.Cosine(nfl), expected, 1e-12);
  EXPECT_GT(niners.Cosine(nfl), 0.2);
}

TEST(SparseVectorTest, CosineIdenticalIsOne) {
  SparseVector a;
  a.Add(1, 3);
  a.Add(9, 4);
  EXPECT_NEAR(a.Cosine(a), 1.0, 1e-12);
}

TEST(SparseVectorTest, CosineDisjointIsZeroAndEmptyIsZero) {
  SparseVector a, b, empty;
  a.Add(1, 1);
  b.Add(2, 1);
  EXPECT_EQ(a.Cosine(b), 0.0);
  EXPECT_EQ(a.Cosine(empty), 0.0);
  EXPECT_EQ(empty.Cosine(empty), 0.0);
}

TEST(SparseVectorTest, DotIsSymmetric) {
  Rng rng(47);
  SparseVector a, b;
  for (int i = 0; i < 50; ++i) {
    a.Add(static_cast<uint32_t>(rng.Uniform(100)), rng.NextDouble());
    b.Add(static_cast<uint32_t>(rng.Uniform(100)), rng.NextDouble());
  }
  EXPECT_NEAR(a.Dot(b), b.Dot(a), 1e-12);
}

TEST(SparseVectorTest, ZeroValueAddsIgnored) {
  SparseVector v;
  v.Add(5, 0.0);
  EXPECT_EQ(v.NumNonZero(), 0u);
  EXPECT_EQ(v.Norm(), 0.0);
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(500, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

// --------------------------------------------------------- ResourceMeter --

TEST(ResourceMeterTest, AccumulatesPerStage) {
  ResourceMeter meter;
  meter.AddTime("Extraction", 1.5);
  meter.AddTime("Extraction", 0.5);
  meter.AddIO("Extraction", 1000, 100);
  meter.AddRows("Extraction", 10, 5);
  meter.SetParallelism("Extraction", 65);
  auto s = meter.Get("Extraction");
  EXPECT_DOUBLE_EQ(s.seconds, 2.0);
  EXPECT_EQ(s.bytes_read, 1000u);
  EXPECT_EQ(s.bytes_written, 100u);
  EXPECT_EQ(s.rows_read, 10u);
  EXPECT_EQ(s.parallelism, 65u);
}

TEST(ResourceMeterTest, StageOrderIsInsertionOrder) {
  ResourceMeter meter;
  meter.AddTime("Clustering", 1);
  meter.AddTime("Extraction", 1);
  meter.AddTime("Clustering", 1);
  EXPECT_EQ(meter.StageNames(),
            (std::vector<std::string>{"Clustering", "Extraction"}));
}

TEST(ResourceMeterTest, MissingStageIsZero) {
  ResourceMeter meter;
  EXPECT_EQ(meter.Get("nope").seconds, 0.0);
}

TEST(HumanBytesTest, Formats) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(998ull * 1024 * 1024 * 1024), "998.0 GB");
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.ElapsedMillis(), 15.0);
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 15.0);
}

// ----------------------------------------------------------- Partitioner --

TEST(PartitionerTest, GoldenValuesPinCrossPlatformStability) {
  // Changing Mix64/Fnv1a64 (or the modulus) silently re-partitions every
  // sharded corpus; these goldens turn that into a loud test failure.
  EXPECT_EQ(Mix64(0), 0ULL);
  EXPECT_EQ(Mix64(1), 12994781566227106604ULL);
  EXPECT_EQ(Mix64(42), 9297814886316923340ULL);
  EXPECT_EQ(Mix64(123456789), 10339184063621167238ULL);
  EXPECT_EQ(Fnv1a64("tennis"), 3635498634972789058ULL);
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);

  EXPECT_EQ(Partitioner(1).ShardOfId(42), 0u);
  EXPECT_EQ(Partitioner(2).ShardOfId(42), 0u);
  EXPECT_EQ(Partitioner(8).ShardOfId(42), 4u);
  EXPECT_EQ(Partitioner(2).ShardOfKey("tennis"), 1u);
  EXPECT_EQ(Partitioner(4).ShardOfKey("tennis"), 1u);
  EXPECT_EQ(Partitioner(8).ShardOfKey("tennis"), 1u);
}

TEST(PartitionerTest, IsDeterministicAndInRange) {
  Partitioner p(7);
  for (uint64_t id = 0; id < 1000; ++id) {
    uint32_t shard = p.ShardOfId(id);
    EXPECT_LT(shard, 7u);
    EXPECT_EQ(shard, p.ShardOfId(id));  // stable across calls
  }
  EXPECT_EQ(p.ShardOfKey("alpha"), p.ShardOfKey(std::string("alpha")));
}

TEST(PartitionerTest, SpreadsDenseIdsEvenly) {
  // The whole point of mixing before the modulus: dense ids (insertion
  // order) must not stripe. Expect every shard within 2x of fair share.
  constexpr uint32_t kShards = 8;
  constexpr uint64_t kIds = 8000;
  Partitioner p(kShards);
  size_t counts[kShards] = {0};
  for (uint64_t id = 0; id < kIds; ++id) ++counts[p.ShardOfId(id)];
  for (size_t c : counts) {
    EXPECT_GT(c, kIds / kShards / 2);
    EXPECT_LT(c, kIds / kShards * 2);
  }
}

TEST(PartitionerTest, SingleShardTakesEverything) {
  Partitioner p(1);
  for (uint64_t id = 0; id < 100; ++id) EXPECT_EQ(p.ShardOfId(id), 0u);
  EXPECT_EQ(p.ShardOfKey("anything"), 0u);
}

}  // namespace
}  // namespace esharp
