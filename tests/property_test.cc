// Property-based tests: invariants that must hold for ANY input, exercised
// over seeded random instances (TEST_P sweeps).

#include <gtest/gtest.h>

#include <numeric>

#include "community/modularity.h"
#include "community/parallel_cd.h"
#include "common/rng.h"
#include "graph/builder.h"
#include "querylog/generator.h"
#include "sqlengine/operators.h"

namespace esharp {
namespace {

// ------------------------------------------------------- Random builders --

graph::Graph RandomGraph(uint64_t seed, size_t n, double p) {
  Rng rng(seed);
  graph::Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex("v" + std::to_string(i));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(p)) {
        EXPECT_TRUE(g.AddEdge(static_cast<graph::VertexId>(a),
                              static_cast<graph::VertexId>(b),
                              0.05 + rng.NextDouble())
                        .ok());
      }
    }
  }
  g.Finalize();
  return g;
}

sql::Table RandomSqlTable(uint64_t seed, size_t rows) {
  Rng rng(seed);
  sql::TableBuilder b({{"k", sql::DataType::kInt64},
                       {"s", sql::DataType::kString},
                       {"x", sql::DataType::kDouble}});
  for (size_t i = 0; i < rows; ++i) {
    b.AddRow({sql::Value::Int(static_cast<int64_t>(rng.Uniform(20))),
              sql::Value::String("s" + std::to_string(rng.Uniform(5))),
              sql::Value::Double(rng.NextDouble())});
  }
  return b.Build();
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

// ----------------------------------------------- Modularity bookkeeping ---

TEST_P(SeededProperty, DegreeSumsAccountForEveryEdgeTwice) {
  graph::Graph g = RandomGraph(GetParam(), 40, 0.15);
  if (g.num_edges() == 0) return;
  community::Partition p(g);
  double degree_total = 0;
  for (community::CommunityId c : p.CommunityIds()) {
    degree_total += p.DegreeSum(c);
  }
  EXPECT_NEAR(degree_total, 2.0 * g.TotalWeight(), 1e-9);
}

TEST_P(SeededProperty, InternalPlusInterWeightsEqualTotal) {
  graph::Graph g = RandomGraph(GetParam() + 1, 40, 0.15);
  if (g.num_edges() == 0) return;
  // Random partition into 5 groups.
  Rng rng(GetParam() + 2);
  community::Partition p(g);
  std::unordered_map<community::CommunityId, community::CommunityId> relabel;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    relabel[static_cast<community::CommunityId>(v)] =
        static_cast<community::CommunityId>(rng.Uniform(5));
  }
  p.Relabel(relabel);
  double internal = 0;
  for (community::CommunityId c : p.CommunityIds()) {
    internal += p.InternalWeight(c);
  }
  double inter = 0;
  for (const auto& [key, w] : p.InterCommunityWeights()) inter += w;
  EXPECT_NEAR(internal + inter, g.TotalWeight(), 1e-9);
}

TEST_P(SeededProperty, SingletonModularityIsNonPositive) {
  graph::Graph g = RandomGraph(GetParam() + 3, 30, 0.2);
  if (g.num_edges() == 0) return;
  community::ModularityContext ctx(g);
  community::Partition p(g);
  EXPECT_LE(p.TotalModularity(ctx), 1e-9);
}

TEST_P(SeededProperty, GroupingEverythingScoresZero) {
  // One community holding the whole graph: Mod = m - m*(2m/2m)^2 = 0.
  graph::Graph g = RandomGraph(GetParam() + 4, 30, 0.2);
  if (g.num_edges() == 0) return;
  community::ModularityContext ctx(g);
  community::Partition p(g);
  std::unordered_map<community::CommunityId, community::CommunityId> relabel;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    relabel[static_cast<community::CommunityId>(v)] = 0;
  }
  p.Relabel(relabel);
  EXPECT_NEAR(p.TotalModularity(ctx), 0.0, 1e-9);
}

// --------------------------------------------------- Detection invariants --

TEST_P(SeededProperty, DetectionImprovesModularityAndShrinksCommunities) {
  graph::Graph g = RandomGraph(GetParam() + 5, 40, 0.12);
  if (g.num_edges() == 0) return;
  community::DetectionResult r = *community::DetectCommunitiesParallel(g);
  EXPECT_GE(r.modularity_per_iteration.back(),
            r.modularity_per_iteration.front() - 1e-9);
  EXPECT_LE(r.communities_per_iteration.back(),
            r.communities_per_iteration.front());
  // Labels are valid vertex ids and the partition covers every vertex.
  for (community::CommunityId c : r.assignment) {
    EXPECT_LT(c, g.num_vertices());
  }
}

TEST_P(SeededProperty, DetectionIsIdempotentAtTheFixpoint) {
  graph::Graph g = RandomGraph(GetParam() + 6, 35, 0.12);
  if (g.num_edges() == 0) return;
  community::DetectionResult first = *community::DetectCommunitiesParallel(g);
  community::ParallelCdOptions options;
  options.warm_start = &first.assignment;
  community::DetectionResult second =
      *community::DetectCommunitiesParallel(g, options);
  EXPECT_EQ(second.iterations, 0u);
  EXPECT_EQ(second.assignment, first.assignment);
}

// -------------------------------------------------- Relational identities --

TEST_P(SeededProperty, FilterPartitionsTheTable) {
  sql::Table t = RandomSqlTable(GetParam() + 7, 300);
  sql::ExprPtr pred = sql::Gt(sql::Col("x"), sql::LitDouble(0.5));
  sql::Table yes = *Filter(t, pred);
  sql::Table no = *Filter(t, sql::Not(pred));
  EXPECT_EQ(yes.num_rows() + no.num_rows(), t.num_rows());
}

TEST_P(SeededProperty, DistinctAndSortAreIdempotent) {
  sql::Table t = RandomSqlTable(GetParam() + 8, 200);
  sql::Table d1 = *Distinct(t);
  sql::Table d2 = *Distinct(d1);
  EXPECT_EQ(d1.num_rows(), d2.num_rows());
  sql::Table s1 = *SortBy(t, {"k", "x"});
  sql::Table s2 = *SortBy(s1, {"k", "x"});
  for (size_t i = 0; i < s1.num_rows(); ++i) {
    for (size_t c = 0; c < s1.num_columns(); ++c) {
      EXPECT_EQ(s1.row(i)[c].Compare(s2.row(i)[c]), 0);
    }
  }
}

TEST_P(SeededProperty, GroupCountsSumToRowCount) {
  sql::Table t = RandomSqlTable(GetParam() + 9, 400);
  sql::Table grouped = *HashAggregate(t, {"k"}, {sql::CountStar("n")});
  int64_t total = 0;
  for (const sql::Row& r : grouped.rows()) total += r[1].int_value();
  EXPECT_EQ(static_cast<size_t>(total), t.num_rows());
}

TEST_P(SeededProperty, JoinOnDistinctKeyPreservesRows) {
  // Build a right side with unique keys; inner join keeps exactly the left
  // rows whose key exists on the right.
  sql::Table left = RandomSqlTable(GetParam() + 10, 250);
  sql::TableBuilder rb({{"k2", sql::DataType::kInt64},
                        {"tag", sql::DataType::kString}});
  for (int64_t k = 0; k < 20; ++k) {
    rb.AddRow({sql::Value::Int(k), sql::Value::String("t")});
  }
  sql::Table right = rb.Build();
  sql::Table joined = *HashJoin(left, right, {"k"}, {"k2"});
  EXPECT_EQ(joined.num_rows(), left.num_rows());  // every key 0..19 covered
}

// -------------------------------------------------- Extraction invariants --

TEST_P(SeededProperty, SimilarityGraphEdgesWithinBounds) {
  querylog::UniverseOptions uo;
  uo.num_categories = 2;
  uo.domains_per_category = 6;
  uo.seed = GetParam() + 11;
  querylog::TopicUniverse universe =
      *querylog::TopicUniverse::Generate(uo);
  querylog::GeneratorOptions go;
  go.seed = GetParam() + 12;
  querylog::GeneratedLog gen = *GenerateQueryLog(universe, go);
  graph::SimilarityGraphOptions options;
  options.min_similarity = 0.2;
  graph::Graph g = *BuildSimilarityGraph(gen.log, options);
  for (const graph::Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 0.2);
    EXPECT_LE(e.weight, 1.0 + 1e-9);
    EXPECT_NE(e.u, e.v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1000, 2000, 3000, 4000, 5000));

}  // namespace
}  // namespace esharp
