// Binary snapshot format suite: randomized round-trip property (save ->
// load -> bit-identical query results against the pipeline-built
// artifacts) plus the corruption battery — truncation, flipped magic,
// flipped payload bytes, version skew — all of which must fail
// LoadSnapshotFile with a clean Status, never a crash.

#include "serving/snapshot_file.h"

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/coldstart.h"
#include "common/rng.h"
#include "ingest/ingest.h"
#include "ingest/verify.h"
#include "cluster/partition.h"
#include "common/file_io.h"
#include "esharp/pipeline.h"
#include "microblog/generator.h"
#include "querylog/generator.h"
#include "querylog/universe.h"
#include "serving/engine.h"
#include "serving/snapshot.h"
#include "gtest/gtest.h"

namespace esharp {
namespace {

/// One randomized world, small enough that a test builds several: universe
/// -> query log -> offline pipeline (store + evidence) -> corpus.
struct World {
  querylog::TopicUniverse universe;
  core::OfflineArtifacts artifacts;
  microblog::TweetCorpus corpus;
};

World MakeWorld(uint64_t seed) {
  querylog::UniverseOptions uo;
  uo.num_categories = 2;
  uo.domains_per_category = 4;
  uo.seed = seed;
  querylog::TopicUniverse universe = *querylog::TopicUniverse::Generate(uo);

  querylog::GeneratorOptions go;
  go.seed = seed + 1;
  go.head_impressions = 6000;
  querylog::GeneratedLog generated = *GenerateQueryLog(universe, go);

  microblog::CorpusOptions co;
  co.seed = seed + 2;
  co.casual_users = 90;
  co.spam_users = 8;
  microblog::TweetCorpus corpus = *GenerateCorpus(universe, co);

  core::OfflineOptions offline;
  offline.extraction.min_similarity = 0.15;
  offline.corpus = &corpus;
  core::OfflineArtifacts artifacts =
      *RunOfflinePipeline(generated.log, offline);

  return World{std::move(universe), std::move(artifacts), std::move(corpus)};
}

std::vector<std::string> QueryMix(const World& world) {
  std::vector<std::string> queries;
  for (const querylog::TopicDomain& dom : world.universe.domains()) {
    if (!dom.terms.empty()) queries.push_back(dom.terms[0]);
    if (dom.terms.size() > 2) queries.push_back(dom.terms[2]);
  }
  queries.push_back("no such topic anywhere");
  return queries;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// SerializeTsv equality modulo line order: the `w` (inter-weight) lines
/// follow unordered-map iteration order, which a rebuilt map is free to
/// permute; the content must still match exactly.
std::vector<std::string> SortedTsvLines(const std::string& tsv) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < tsv.size()) {
    size_t end = tsv.find('\n', start);
    if (end == std::string::npos) end = tsv.size();
    lines.push_back(tsv.substr(start, end - start));
    start = end + 1;
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

serving::ServingOptions EngineOptions() {
  serving::ServingOptions o;
  o.num_threads = 2;
  o.enable_cache = false;
  o.enable_single_flight = false;
  return o;
}

void ExpectSameEvidence(const std::vector<expert::CandidateEvidence>& a,
                        const std::vector<expert::CandidateEvidence>& b,
                        const std::string& query) {
  ASSERT_EQ(a.size(), b.size()) << "query '" << query << "'";
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].user, b[i].user) << "query '" << query << "' slot " << i;
    EXPECT_EQ(a[i].is_author, b[i].is_author);
    EXPECT_EQ(a[i].is_mentioned, b[i].is_mentioned);
    EXPECT_EQ(a[i].tweets_on_topic, b[i].tweets_on_topic);
    EXPECT_EQ(a[i].mentions_on_topic, b[i].mentions_on_topic);
    EXPECT_EQ(a[i].retweets_on_topic, b[i].retweets_on_topic);
    EXPECT_EQ(a[i].conversational_on_topic, b[i].conversational_on_topic);
    EXPECT_EQ(a[i].hashtag_on_topic, b[i].hashtag_on_topic);
  }
}

/// The round-trip property: a cold-started engine answers every query of
/// the mix with evidence bit-identical to an engine over the original
/// pipeline-built artifacts.
TEST(SnapshotRoundTripTest, ColdStartAnswersBitIdentically) {
  for (uint64_t seed : {101u, 202u, 303u}) {
    World world = MakeWorld(seed);
    serving::SnapshotManager original(&world.corpus);
    original.Publish(world.artifacts.store, {},
                     world.artifacts.evidence_index);
    const std::string path = TempPath("roundtrip.esnap");
    ASSERT_TRUE(original.SaveSnapshot(path).ok());

    Result<serving::SnapshotManager::ColdStartArtifacts> cold =
        serving::SnapshotManager::LoadSnapshot(path);
    ASSERT_TRUE(cold.ok()) << cold.status().message();
    ASSERT_TRUE(cold->info.has_evidence);
    EXPECT_EQ(cold->info.format_version, serving::kSnapshotFormatVersion);
    ASSERT_NE(cold->manager->Acquire(), nullptr);
    EXPECT_EQ(cold->manager->version(), 1u);

    // Corpus reconstruction invariants.
    ASSERT_EQ(cold->corpus->num_users(), world.corpus.num_users());
    ASSERT_EQ(cold->corpus->num_tweets(), world.corpus.num_tweets());
    ASSERT_EQ(cold->corpus->num_tokens(), world.corpus.num_tokens());
    for (microblog::UserId u = 0; u < world.corpus.num_users(); ++u) {
      ASSERT_EQ(cold->corpus->TweetsByUser(u), world.corpus.TweetsByUser(u));
      ASSERT_EQ(cold->corpus->MentionsOfUser(u),
                world.corpus.MentionsOfUser(u));
      ASSERT_EQ(cold->corpus->RetweetsOfUser(u),
                world.corpus.RetweetsOfUser(u));
    }
    // The store round-trips to the same serialized artifact (modulo the
    // unordered-map line order SerializeTsv inherits).
    EXPECT_EQ(SortedTsvLines(cold->manager->Acquire()->store().SerializeTsv()),
              SortedTsvLines(world.artifacts.store.SerializeTsv()));

    serving::ServingEngine original_engine(&original, EngineOptions());
    serving::ServingEngine cold_engine(cold->manager.get(), EngineOptions());
    for (const std::string& query : QueryMix(world)) {
      serving::QueryRequest a, b;
      a.query = query;
      b.query = query;
      Result<serving::EvidenceResponse> ra =
          original_engine.QueryEvidence(std::move(a));
      Result<serving::EvidenceResponse> rb =
          cold_engine.QueryEvidence(std::move(b));
      ASSERT_EQ(ra.ok(), rb.ok()) << "query '" << query << "'";
      if (!ra.ok()) continue;
      EXPECT_EQ(ra->terms, rb->terms);
      ExpectSameEvidence(ra->evidence, rb->evidence, query);
    }
  }
}

TEST(SnapshotRoundTripTest, WithoutEvidenceServesLiveCollection) {
  World world = MakeWorld(404);
  const std::string path = TempPath("no_evidence.esnap");
  ASSERT_TRUE(serving::SaveSnapshotFile(path, world.corpus,
                                        world.artifacts.store, nullptr)
                  .ok());
  Result<serving::SnapshotManager::ColdStartArtifacts> cold =
      serving::SnapshotManager::LoadSnapshot(path);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  EXPECT_FALSE(cold->info.has_evidence);
  // The cold-start publish must NOT have rebuilt the index.
  EXPECT_EQ(cold->manager->Acquire()->evidence(), nullptr);

  // Live collection still answers identically to a reference engine.
  serving::SnapshotManager reference(&world.corpus);
  reference.set_build_evidence_on_publish(false);
  reference.Publish(world.artifacts.store);
  serving::ServingEngine reference_engine(&reference, EngineOptions());
  serving::ServingEngine cold_engine(cold->manager.get(), EngineOptions());
  for (const std::string& query : QueryMix(world)) {
    serving::QueryRequest a, b;
    a.query = query;
    b.query = query;
    Result<serving::EvidenceResponse> ra =
        reference_engine.QueryEvidence(std::move(a));
    Result<serving::EvidenceResponse> rb =
        cold_engine.QueryEvidence(std::move(b));
    ASSERT_EQ(ra.ok(), rb.ok()) << "query '" << query << "'";
    if (ra.ok()) ExpectSameEvidence(ra->evidence, rb->evidence, query);
  }
}

TEST(SnapshotRoundTripTest, SaveBeforePublishFails) {
  World world = MakeWorld(505);
  serving::SnapshotManager manager(&world.corpus);
  Status status = manager.SaveSnapshot(TempPath("never.esnap"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

// ---- corruption battery ---------------------------------------------------

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    World world = MakeWorld(606);
    path_ = TempPath("corruption.esnap");
    ASSERT_TRUE(serving::SaveSnapshotFile(
                    path_, world.corpus, world.artifacts.store,
                    world.artifacts.evidence_index.get())
                    .ok());
    Result<std::string> bytes = ReadFileToString(path_);
    ASSERT_TRUE(bytes.ok());
    bytes_ = bytes.MoveValueUnsafe();
    ASSERT_GT(bytes_.size(), 64u);
  }

  /// Writes `mutated` to a scratch path and expects LoadSnapshotFile to
  /// fail with a Status (and in particular not to crash).
  void ExpectLoadFails(const std::string& mutated, const char* what) {
    const std::string path = TempPath("corrupt_case.esnap");
    ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
    Result<serving::SnapshotArtifacts> loaded =
        serving::LoadSnapshotFile(path);
    EXPECT_FALSE(loaded.ok()) << what;
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruptionTest, IntactFileLoads) {
  Result<serving::SnapshotArtifacts> loaded = serving::LoadSnapshotFile(path_);
  EXPECT_TRUE(loaded.ok()) << loaded.status().message();
}

TEST_F(SnapshotCorruptionTest, MissingFileFailsWithPathAndCause) {
  Result<serving::SnapshotArtifacts> loaded =
      serving::LoadSnapshotFile(TempPath("does_not_exist.esnap"));
  ASSERT_FALSE(loaded.ok());
  // The errno-detailed file_io Status must surface the cause.
  EXPECT_NE(loaded.status().message().find("does_not_exist"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("errno"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, EmptyAndTinyFilesFail) {
  ExpectLoadFails("", "empty file");
  ExpectLoadFails(bytes_.substr(0, 7), "7-byte file");
  ExpectLoadFails(bytes_.substr(0, 23), "header cut mid-checksum");
}

TEST_F(SnapshotCorruptionTest, TruncationsFail) {
  ExpectLoadFails(bytes_.substr(0, bytes_.size() / 2), "half the file");
  ExpectLoadFails(bytes_.substr(0, bytes_.size() - 1), "one byte short");
  ExpectLoadFails(bytes_.substr(0, 40), "table cut mid-entry");
}

TEST_F(SnapshotCorruptionTest, FlippedMagicFails) {
  std::string mutated = bytes_;
  mutated[0] ^= 0x01;
  ExpectLoadFails(mutated, "flipped magic byte");
}

TEST_F(SnapshotCorruptionTest, VersionSkewFails) {
  std::string mutated = bytes_;
  mutated[8] = static_cast<char>(serving::kSnapshotFormatVersion + 1);
  ExpectLoadFails(mutated, "future format version");
  const std::string path = TempPath("corrupt_case.esnap");
  ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
  Result<serving::SnapshotArtifacts> loaded = serving::LoadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition)
      << "version skew must be distinguishable from corruption";
}

TEST_F(SnapshotCorruptionTest, FlippedTableByteFails) {
  std::string mutated = bytes_;
  mutated[24 + 9] ^= 0x10;  // inside the first section entry's offset
  ExpectLoadFails(mutated, "flipped section-table byte");
}

TEST_F(SnapshotCorruptionTest, FlippedPayloadBytesFail) {
  // A flip anywhere in any section must trip that section's checksum.
  for (size_t pos = bytes_.size() / 4; pos < bytes_.size();
       pos += bytes_.size() / 7) {
    std::string mutated = bytes_;
    mutated[pos] ^= 0x20;
    ExpectLoadFails(mutated, "flipped payload byte");
  }
}

TEST_F(SnapshotCorruptionTest, ImplausibleSectionCountFails) {
  std::string mutated = bytes_;
  mutated[12] = static_cast<char>(0xFF);  // section_count low byte
  mutated[13] = static_cast<char>(0xFF);
  ExpectLoadFails(mutated, "implausible section count");
}

// ---- per-shard cold start -------------------------------------------------

TEST(ShardColdStartTest, SaveLoadRoundTripsEveryShard) {
  World world = MakeWorld(707);
  const uint32_t kShards = 3;
  cluster::PartitionedCorpus partition =
      cluster::PartitionCorpus(world.corpus, kShards);
  const std::string prefix = TempPath("cluster_snap");
  ASSERT_TRUE(cluster::SaveShardSnapshots(partition, world.artifacts.store,
                                          {}, prefix)
                  .ok());

  Result<std::vector<cluster::ColdShard>> cold =
      cluster::LoadShardSnapshots(prefix, kShards);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  ASSERT_EQ(cold->size(), kShards);

  // The partition invariants survive the round trip: users replicate,
  // per-user totals sum to the union corpus exactly.
  for (microblog::UserId u = 0; u < world.corpus.num_users(); ++u) {
    uint64_t tweets = 0, mentions = 0, retweets = 0;
    for (const cluster::ColdShard& shard : *cold) {
      ASSERT_EQ(shard.corpus->num_users(), world.corpus.num_users());
      tweets += shard.corpus->TweetsByUser(u);
      mentions += shard.corpus->MentionsOfUser(u);
      retweets += shard.corpus->RetweetsOfUser(u);
    }
    ASSERT_EQ(tweets, world.corpus.TweetsByUser(u));
    ASSERT_EQ(mentions, world.corpus.MentionsOfUser(u));
    ASSERT_EQ(retweets, world.corpus.RetweetsOfUser(u));
  }

  // And each cold shard answers queries (generation 1 published).
  for (const cluster::ColdShard& shard : *cold) {
    EXPECT_EQ(shard.manager->version(), 1u);
    ASSERT_NE(shard.manager->Acquire(), nullptr);
  }

  // A missing shard file fails naming the shard: with the wrong shard
  // count every name is wrong, so shard 0 is the first to fail.
  Result<std::vector<cluster::ColdShard>> missing =
      cluster::LoadShardSnapshots(prefix, kShards + 1);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("shard 0 cold start failed"),
            std::string::npos);
  // And corrupting one shard's file fails naming that shard.
  const std::string victim = cluster::ShardSnapshotPath(prefix, 2, kShards);
  Result<std::string> bytes = ReadFileToString(victim);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = bytes.MoveValueUnsafe();
  mutated[mutated.size() / 2] ^= 0x04;
  ASSERT_TRUE(WriteStringToFile(victim, mutated).ok());
  Result<std::vector<cluster::ColdShard>> corrupt =
      cluster::LoadShardSnapshots(prefix, kShards);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("shard 2 cold start failed"),
            std::string::npos);
}

// ---- Incrementally-built snapshots ----------------------------------------

// A generation assembled by N delta publishes (COW corpus tail, shared
// evidence pools, reused store) must save and cold-start exactly like one
// built offline: the file format sees only the logical artifacts, never
// the structural sharing behind them.
TEST(IngestSnapshotRoundTripTest, DeltaBuiltGenerationColdStartsBitIdentically) {
  serving::SnapshotManager manager;
  ingest::IngestOptions options;
  options.extraction.min_query_count = 2;
  options.extraction.min_similarity = 0.05;
  ingest::IngestPipeline pipeline(&manager, options);

  const char* kTerms[] = {"solar", "panels", "hockey", "sushi"};
  for (microblog::UserId u = 0; u < 6; ++u) {
    microblog::UserProfile profile;
    profile.id = u;
    profile.screen_name = "u" + std::to_string(u);
    pipeline.AppendUser(profile);
  }
  Rng rng(7);
  for (size_t batch = 0; batch < 4; ++batch) {
    for (size_t i = 0; i < 40; ++i) {
      const char* a = kTerms[rng.Uniform(4)];
      const char* b = kTerms[rng.Uniform(4)];
      switch (rng.Uniform(4)) {
        case 0:
          pipeline.AppendSearches(std::string(a) + " " + b, 1);
          break;
        case 1:
          pipeline.AppendClicks(std::string(a), rng.Uniform(6), 1 + rng.Uniform(3));
          break;
        default:
          pipeline.AppendTweet(rng.Uniform(6),
                               std::string("about ") + a + " " + b,
                               {rng.Uniform(6)}, rng.Uniform(3));
      }
    }
    ASSERT_TRUE(pipeline.Publish().ok());
  }

  const std::string path = TempPath("ingest_roundtrip.esnap");
  ASSERT_TRUE(manager.SaveSnapshot(path).ok());
  Result<serving::SnapshotManager::ColdStartArtifacts> cold =
      serving::SnapshotManager::LoadSnapshot(path);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  std::shared_ptr<const serving::ServingSnapshot> snapshot =
      cold->manager->Acquire();
  ASSERT_NE(snapshot, nullptr);

  // The decoded world equals the live delta world, surface by surface.
  Status corpus_ok =
      ingest::CompareCorpora(*cold->corpus, *pipeline.published_corpus());
  EXPECT_TRUE(corpus_ok.ok()) << corpus_ok.message();
  ASSERT_NE(snapshot->evidence(), nullptr);
  Status evidence_ok = ingest::CompareEvidence(
      *snapshot->evidence(), *pipeline.published_evidence());
  EXPECT_TRUE(evidence_ok.ok()) << evidence_ok.message();
  EXPECT_EQ(SortedTsvLines(snapshot->store().SerializeTsv()),
            SortedTsvLines(pipeline.published_store()->SerializeTsv()));

  // And it answers like the live one, end to end.
  std::shared_ptr<const serving::ServingSnapshot> live = manager.Acquire();
  ASSERT_NE(live, nullptr);
  for (const char* term : kTerms) {
    Result<std::vector<expert::RankedExpert>> got =
        snapshot->esharp().FindExperts(term);
    Result<std::vector<expert::RankedExpert>> want =
        live->esharp().FindExperts(term);
    ASSERT_EQ(got.ok(), want.ok()) << term;
    if (!got.ok()) continue;
    Status ranked_ok = ingest::CompareRanked(*got, *want, term);
    EXPECT_TRUE(ranked_ok.ok()) << ranked_ok.message();
  }
}

}  // namespace
}  // namespace esharp
