// Tests for the paper's optional/extension features: the Pal & Counts
// cluster-analysis filter (§3, deliberately dropped by e#), the alternative
// community-detection paradigm (label propagation, §8 future work) and the
// Q&A substrate (§8: "expanding into other social networks such as Quora").

#include <gtest/gtest.h>

#include <set>

#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/parallel_cd.h"
#include "community/store.h"
#include "esharp/pipeline.h"
#include "expert/cluster_filter.h"
#include "expert/detector.h"
#include "qna/detector.h"
#include "querylog/generator.h"

namespace esharp {
namespace {

// ----------------------------------------------------- Cluster filtering --

expert::RankedExpert MakeRanked(microblog::UserId id, double ts, double mi,
                                double ri) {
  expert::RankedExpert e;
  e.user = id;
  e.z_topical_signal = ts;
  e.z_mention_impact = mi;
  e.z_retweet_impact = ri;
  e.score = 0.4 * ts + 0.4 * mi + 0.2 * ri;
  return e;
}

TEST(ClusterFilterTest, KeepsTheAuthorityCluster) {
  // Two clear clusters in feature space: authorities near (2,2,2), the
  // rest near (-1,-1,-1).
  std::vector<expert::RankedExpert> ranked;
  for (int i = 0; i < 3; ++i) {
    ranked.push_back(MakeRanked(i, 2.0 + 0.1 * i, 2.0, 2.0));
  }
  for (int i = 3; i < 10; ++i) {
    ranked.push_back(MakeRanked(i, -1.0, -1.0 - 0.05 * i, -1.0));
  }
  auto kept = expert::ClusterFilter(ranked);
  ASSERT_EQ(kept.size(), 3u);
  for (const auto& e : kept) EXPECT_LT(e.user, 3u);
}

TEST(ClusterFilterTest, TinyPoolsPassThrough) {
  std::vector<expert::RankedExpert> ranked = {MakeRanked(0, 1, 1, 1),
                                              MakeRanked(1, -1, -1, -1)};
  EXPECT_EQ(expert::ClusterFilter(ranked).size(), 2u);
  EXPECT_TRUE(expert::ClusterFilter({}).empty());
}

TEST(ClusterFilterTest, FilterReducesRecallInTheDetector) {
  // The precise reason e# drops the stage: with the filter on, fewer
  // candidates survive (never more).
  microblog::TweetCorpus corpus;
  for (microblog::UserId id = 0; id < 8; ++id) {
    microblog::UserProfile u;
    u.id = id;
    u.screen_name = "u" + std::to_string(id);
    corpus.AddUser(u);
  }
  Rng rng(3);
  for (microblog::UserId id = 0; id < 8; ++id) {
    // Users 0-1 are concentrated authorities; the rest dabble.
    size_t topical = id < 2 ? 8 : 1;
    size_t off = id < 2 ? 1 : 6;
    for (size_t t = 0; t < topical; ++t) {
      corpus.AddTweet(id, "chess openings", {},
                      id < 2 ? 4 + static_cast<uint32_t>(rng.Uniform(5)) : 0);
    }
    for (size_t t = 0; t < off; ++t) corpus.AddTweet(id, "lunch break", {}, 0);
  }
  expert::DetectorOptions base;
  base.min_z_score = -100;
  expert::ExpertDetector plain(&corpus, base);
  expert::DetectorOptions filtered_options = base;
  filtered_options.enable_cluster_filter = true;
  expert::ExpertDetector filtered(&corpus, filtered_options);

  auto all = *plain.FindExperts("chess");
  auto kept = *filtered.FindExperts("chess");
  EXPECT_EQ(all.size(), 8u);
  EXPECT_LT(kept.size(), all.size());
  // The authorities survive the filter.
  std::set<microblog::UserId> kept_ids;
  for (const auto& e : kept) kept_ids.insert(e.user);
  EXPECT_TRUE(kept_ids.count(0));
  EXPECT_TRUE(kept_ids.count(1));
}

// --------------------------------------------------- Label propagation ----

graph::Graph TwoCliquesLp() {
  graph::Graph g;
  for (int i = 0; i < 8; ++i) g.AddVertex("v" + std::to_string(i));
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) EXPECT_TRUE(g.AddEdge(a, b, 1.0).ok());
  }
  for (int a = 4; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) EXPECT_TRUE(g.AddEdge(a, b, 1.0).ok());
  }
  EXPECT_TRUE(g.AddEdge(3, 4, 0.1).ok());
  g.Finalize();
  return g;
}

TEST(LabelPropagationTest, TwoCliquesSplit) {
  graph::Graph g = TwoCliquesLp();
  community::DetectionResult r =
      *community::DetectCommunitiesLabelPropagation(g);
  EXPECT_TRUE(r.converged);
  std::set<community::CommunityId> labels(r.assignment.begin(),
                                          r.assignment.end());
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_EQ(r.assignment[0], r.assignment[3]);
  EXPECT_EQ(r.assignment[4], r.assignment[7]);
  EXPECT_NE(r.assignment[0], r.assignment[4]);
}

TEST(LabelPropagationTest, DeterministicAndEdgelessSafe) {
  graph::Graph g = TwoCliquesLp();
  auto a = *community::DetectCommunitiesLabelPropagation(g);
  auto b = *community::DetectCommunitiesLabelPropagation(g);
  EXPECT_EQ(a.assignment, b.assignment);

  graph::Graph lonely;
  lonely.AddVertex("x");
  lonely.AddVertex("y");
  lonely.Finalize();
  auto r = *community::DetectCommunitiesLabelPropagation(lonely);
  EXPECT_TRUE(r.converged);
  EXPECT_NE(r.assignment[0], r.assignment[1]);
}

TEST(LabelPropagationTest, ComparableModularityToParallelCd) {
  // LPA has no objective, but on well-separated graphs its partitions score
  // within range of modularity maximization.
  graph::Graph g = TwoCliquesLp();
  auto lpa = *community::DetectCommunitiesLabelPropagation(g);
  auto cd = *community::DetectCommunitiesParallel(g);
  EXPECT_GT(lpa.modularity_per_iteration.back(),
            0.5 * cd.modularity_per_iteration.back());
}

// -------------------------------------------------------------- Louvain ---

TEST(LouvainTest, TwoCliquesSplit) {
  graph::Graph g = TwoCliquesLp();
  community::DetectionResult r = *community::DetectCommunitiesLouvain(g);
  std::set<community::CommunityId> labels(r.assignment.begin(),
                                          r.assignment.end());
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_EQ(r.assignment[0], r.assignment[3]);
  EXPECT_EQ(r.assignment[4], r.assignment[7]);
  EXPECT_NE(r.assignment[0], r.assignment[4]);
}

TEST(LouvainTest, ModularityNeverDecreasesAcrossLevels) {
  graph::Graph g = TwoCliquesLp();
  community::DetectionResult r = *community::DetectCommunitiesLouvain(g);
  for (size_t i = 1; i < r.modularity_per_iteration.size(); ++i) {
    EXPECT_GE(r.modularity_per_iteration[i],
              r.modularity_per_iteration[i - 1] - 1e-9);
  }
}

TEST(LouvainTest, MatchesOrBeatsParallelModularity) {
  // Louvain's vertex-level refinement should reach at least the bulk-merge
  // algorithm's modularity on small planted graphs.
  Rng rng(999);
  graph::Graph g;
  for (int i = 0; i < 36; ++i) g.AddVertex("v" + std::to_string(i));
  for (int a = 0; a < 36; ++a) {
    for (int b = a + 1; b < 36; ++b) {
      bool same = (a / 12) == (b / 12);
      if (rng.Bernoulli(same ? 0.7 : 0.04)) {
        EXPECT_TRUE(g.AddEdge(a, b, 0.3 + 0.7 * rng.NextDouble()).ok());
      }
    }
  }
  g.Finalize();
  auto louvain = *community::DetectCommunitiesLouvain(g);
  auto parallel = *community::DetectCommunitiesParallel(g);
  EXPECT_GE(louvain.modularity_per_iteration.back(),
            parallel.modularity_per_iteration.back() - 1e-6);
}

TEST(LouvainTest, EdgelessAndEmptyHandled) {
  graph::Graph g;
  EXPECT_FALSE(community::DetectCommunitiesLouvain(g).ok());
  g.AddVertex("a");
  g.Finalize();
  auto r = *community::DetectCommunitiesLouvain(g);
  EXPECT_TRUE(r.converged);
}

// ------------------------------------------------------- Q&A substrate ----

class QnaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    querylog::UniverseOptions uo;
    uo.num_categories = 2;
    uo.domains_per_category = 10;
    uo.seed = 801;
    universe_ = std::make_unique<querylog::TopicUniverse>(
        *querylog::TopicUniverse::Generate(uo));
    qna::QnaOptions qo;
    qo.seed = 802;
    qo.casual_users = 200;
    corpus_ = std::make_unique<qna::QnaCorpus>(
        *GenerateQnaCorpus(*universe_, qo));
  }

  std::unique_ptr<querylog::TopicUniverse> universe_;
  std::unique_ptr<qna::QnaCorpus> corpus_;
};

TEST_F(QnaTest, CorpusHasQuestionsAndAnswers) {
  EXPECT_GT(corpus_->num_questions(), 100u);
  EXPECT_GT(corpus_->num_answers(), 100u);
}

TEST_F(QnaTest, MatchQuestionsFindsTopicalTitles) {
  const querylog::TopicDomain& dom = universe_->domain(0);
  auto hits = corpus_->MatchQuestions({dom.terms[0]});
  for (uint32_t qid : hits) {
    EXPECT_NE(corpus_->question(qid).title.find(dom.terms[0]),
              std::string::npos);
  }
}

TEST_F(QnaTest, DetectorRanksDomainExpertsOnTop) {
  qna::QnaDetectorOptions options;
  options.min_z_score = -100;
  qna::QnaExpertDetector detector(corpus_.get(), options);
  // Use a popular head term; the top answerers should be experts of the
  // right domain.
  const querylog::TopicDomain& dom = universe_->domain(0);
  auto experts = *detector.FindExperts(dom.terms[0]);
  ASSERT_FALSE(experts.empty());
  const qna::UserProfile& top = corpus_->user(experts[0].user);
  EXPECT_EQ(top.kind, qna::AccountKind::kExpert);
  EXPECT_EQ(top.domain, dom.id);
}

TEST_F(QnaTest, ExpansionImprovesQnaRecallToo) {
  // Build the community store from the (shared-universe) query log, then
  // compare plain vs expanded Q&A search over all canonical terms.
  querylog::GeneratorOptions go;
  go.seed = 803;
  querylog::GeneratedLog gen = *GenerateQueryLog(*universe_, go);
  core::OfflineOptions offline;
  core::OfflineArtifacts artifacts = *RunOfflinePipeline(gen.log, offline);

  qna::QnaDetectorOptions options;
  options.min_z_score = -1e9;
  options.max_experts = 100000;
  qna::QnaExpertDetector detector(corpus_.get(), options);

  size_t wins = 0, total = 0;
  for (const querylog::TopicDomain& dom : universe_->domains()) {
    for (const std::string& term : dom.terms) {
      ++total;
      auto plain = *detector.FindExperts(term);
      auto expanded = *detector.FindExpertsExpanded(artifacts.store, term);
      EXPECT_GE(expanded.size(), plain.size()) << term;
      if (expanded.size() > plain.size()) ++wins;
    }
  }
  EXPECT_GT(total, 20u);
  EXPECT_GT(wins, 0u);
}

TEST_F(QnaTest, MergeQnaEvidenceSums) {
  qna::AnswererEvidence a;
  a.user = 3;
  a.answers_on_topic = 2;
  a.upvotes_on_topic = 10;
  qna::AnswererEvidence b;
  b.user = 3;
  b.answers_on_topic = 1;
  b.accepts_on_topic = 1;
  auto merged = qna::MergeQnaEvidence({{a}, {b}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].answers_on_topic, 3u);
  EXPECT_EQ(merged[0].upvotes_on_topic, 10u);
  EXPECT_EQ(merged[0].accepts_on_topic, 1u);
}

// ----------------------------------------------- Extended features (§3) ---

TEST(ExtendedFeaturesTest, DisabledByDefaultAndZeroed) {
  microblog::TweetCorpus corpus;
  microblog::UserProfile u;
  u.id = 0;
  u.followers = 1000;
  corpus.AddUser(u);
  microblog::UserProfile v;
  v.id = 1;
  corpus.AddUser(v);
  corpus.AddTweet(0, "golf tips #golf", {1}, 2);
  corpus.AddTweet(1, "golf weekend", {}, 0);
  expert::DetectorOptions options;
  options.min_z_score = -100;
  expert::ExpertDetector detector(&corpus, options);
  auto experts = *detector.FindExperts("golf");
  ASSERT_EQ(experts.size(), 2u);
  for (const auto& e : experts) {
    EXPECT_EQ(e.z_conversation, 0);
    EXPECT_EQ(e.z_hashtag, 0);
    EXPECT_EQ(e.z_followers, 0);
  }
}

TEST(ExtendedFeaturesTest, FollowerWeightPrefersInfluencers) {
  microblog::TweetCorpus corpus;
  for (microblog::UserId id = 0; id < 2; ++id) {
    microblog::UserProfile u;
    u.id = id;
    u.followers = id == 0 ? 5 : 500000;
    corpus.AddUser(u);
    corpus.AddTweet(id, "golf tips", {}, 1);  // otherwise identical
  }
  expert::DetectorOptions options;
  options.min_z_score = -100;
  options.weight_followers = 1.0;
  expert::ExpertDetector detector(&corpus, options);
  auto experts = *detector.FindExperts("golf");
  ASSERT_EQ(experts.size(), 2u);
  EXPECT_EQ(experts[0].user, 1u);  // the influencer ranks first
  EXPECT_GT(experts[0].z_followers, experts[1].z_followers);
}

TEST(ExtendedFeaturesTest, HashtagAndConversationEvidenceCounted) {
  microblog::TweetCorpus corpus;
  microblog::UserProfile u;
  u.id = 0;
  corpus.AddUser(u);
  microblog::UserProfile v;
  v.id = 1;
  corpus.AddUser(v);
  corpus.AddTweet(0, "golf tips #golfing today", {1}, 0);
  corpus.AddTweet(0, "golf swing", {}, 0);
  expert::ExpertDetector detector(&corpus);
  auto candidates = detector.CollectCandidates("golf");
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].hashtag_on_topic, 1u);
  EXPECT_EQ(candidates[0].conversational_on_topic, 1u);
}

// ------------------------------------------------ Warm-start refresh ------

TEST(WarmStartTest, PartitionFromAssignmentBookkeepsCorrectly) {
  graph::Graph g = TwoCliquesLp();
  std::vector<community::CommunityId> warm = {0, 0, 0, 0, 4, 4, 4, 4};
  community::Partition p(g, warm);
  EXPECT_EQ(p.NumCommunities(), 2u);
  EXPECT_DOUBLE_EQ(p.InternalWeight(0), 6.0);
}

TEST(WarmStartTest, WarmStartConvergesInFewerIterations) {
  graph::Graph g = TwoCliquesLp();
  community::DetectionResult cold = *community::DetectCommunitiesParallel(g);
  community::ParallelCdOptions options;
  options.warm_start = &cold.assignment;
  community::DetectionResult warm =
      *community::DetectCommunitiesParallel(g, options);
  EXPECT_LE(warm.iterations, cold.iterations);
  EXPECT_EQ(warm.iterations, 0u);  // already at the fixpoint
  EXPECT_EQ(warm.assignment, cold.assignment);
}

TEST(WarmStartTest, ArityMismatchRejected) {
  graph::Graph g = TwoCliquesLp();
  std::vector<community::CommunityId> short_warm = {0, 0};
  community::ParallelCdOptions options;
  options.warm_start = &short_warm;
  EXPECT_FALSE(community::DetectCommunitiesParallel(g, options).ok());
}

TEST(WarmStartTest, WarmStartFromStoreMapsPersistingQueries) {
  // Old store: {a, b} together, {c} alone.
  graph::Graph old_graph;
  old_graph.AddVertex("a");
  old_graph.AddVertex("b");
  old_graph.AddVertex("c");
  old_graph.Finalize();
  community::CommunityStore previous =
      community::CommunityStore::Build(old_graph, {0, 0, 2});

  // New graph: b and c persist (new ids), d is new.
  graph::Graph new_graph;
  new_graph.AddVertex("b");  // id 0
  new_graph.AddVertex("d");  // id 1
  new_graph.AddVertex("a");  // id 2
  new_graph.AddVertex("c");  // id 3
  new_graph.Finalize();

  auto warm = core::WarmStartFromStore(new_graph, previous);
  ASSERT_EQ(warm.size(), 4u);
  EXPECT_EQ(warm[0], warm[2]);  // a and b still share a community
  EXPECT_EQ(warm[0], 0u);       // named by the smallest member id
  EXPECT_EQ(warm[1], 1u);       // new query: singleton named by itself
  EXPECT_EQ(warm[3], 3u);       // c alone
}

TEST(WarmStartTest, IncrementalPipelineMatchesColdResultShape) {
  querylog::UniverseOptions uo;
  uo.num_categories = 2;
  uo.domains_per_category = 10;
  uo.seed = 871;
  querylog::TopicUniverse universe =
      *querylog::TopicUniverse::Generate(uo);
  querylog::GeneratorOptions week1;
  week1.seed = 872;
  querylog::GeneratedLog log1 = *GenerateQueryLog(universe, week1);
  querylog::GeneratorOptions week2;
  week2.seed = 873;  // a different week: same universe, fresh noise
  querylog::GeneratedLog log2 = *GenerateQueryLog(universe, week2);

  core::OfflineOptions cold;
  core::OfflineArtifacts week1_artifacts = *RunOfflinePipeline(log1.log, cold);
  core::OfflineArtifacts cold2 = *RunOfflinePipeline(log2.log, cold);

  core::OfflineOptions incremental;
  incremental.previous_store = &week1_artifacts.store;
  core::OfflineArtifacts warm2 = *RunOfflinePipeline(log2.log, incremental);

  // The warm run needs no more iterations than the cold run and produces a
  // comparable number of communities.
  EXPECT_LE(warm2.communities_per_iteration.size(),
            cold2.communities_per_iteration.size());
  double cold_count = static_cast<double>(cold2.store.num_communities());
  double warm_count = static_cast<double>(warm2.store.num_communities());
  EXPECT_LT(std::abs(cold_count - warm_count), 0.35 * cold_count);
}

}  // namespace
}  // namespace esharp
