// Tests for the crowdsourcing task protocol (§6.2.1) and for persistence
// (store serialization, file IO, phrase-fallback matching).

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/file_io.h"
#include "community/store.h"
#include "esharp/esharp.h"
#include "eval/tasks.h"

namespace esharp {
namespace {

std::vector<expert::RankedExpert> MakeList(
    std::initializer_list<microblog::UserId> ids) {
  std::vector<expert::RankedExpert> out;
  double score = 10;
  for (microblog::UserId id : ids) {
    expert::RankedExpert e;
    e.user = id;
    e.score = score;
    score -= 1;
    out.push_back(e);
  }
  return out;
}

// ------------------------------------------------------------ Interleave --

TEST(InterleaveTest, ContainsBothListsWithoutDuplicates) {
  Rng rng(1);
  auto merged = eval::TeamDraftInterleave(MakeList({1, 2, 3}),
                                          MakeList({3, 4, 5}), 15, &rng);
  std::set<microblog::UserId> unique(merged.begin(), merged.end());
  EXPECT_EQ(unique.size(), merged.size());
  EXPECT_EQ(unique, (std::set<microblog::UserId>{1, 2, 3, 4, 5}));
}

TEST(InterleaveTest, RespectsPerListCap) {
  Rng rng(2);
  auto merged = eval::TeamDraftInterleave(
      MakeList({1, 2, 3, 4, 5, 6}), MakeList({11, 12, 13, 14, 15, 16}), 2,
      &rng);
  EXPECT_EQ(merged.size(), 4u);
}

TEST(InterleaveTest, HandlesEmptySides) {
  Rng rng(3);
  auto merged = eval::TeamDraftInterleave(MakeList({}), MakeList({7, 8}), 15,
                                          &rng);
  EXPECT_EQ(merged.size(), 2u);
  auto both_empty =
      eval::TeamDraftInterleave(MakeList({}), MakeList({}), 15, &rng);
  EXPECT_TRUE(both_empty.empty());
}

TEST(InterleaveTest, TopResultsDraftEarly) {
  // The head of each list must appear in the first two positions.
  Rng rng(4);
  auto merged = eval::TeamDraftInterleave(MakeList({1, 2, 3}),
                                          MakeList({9, 8, 7}), 15, &rng);
  std::set<microblog::UserId> head = {merged[0], merged[1]};
  EXPECT_TRUE(head.count(1));
  EXPECT_TRUE(head.count(9));
}

// ----------------------------------------------------------------- Tasks --

TEST(BuildCrowdTasksTest, ChunksAreBoundedAndCoverEverything) {
  eval::TaskBuildOptions options;
  options.chunk_size = 6;
  auto tasks = eval::BuildCrowdTasks(
      "49ers", MakeList({1, 2, 3, 4, 5, 6, 7}),
      MakeList({11, 12, 13, 14, 15, 16, 17}), options);
  std::unordered_set<microblog::UserId> seen;
  for (const eval::CrowdTask& t : tasks) {
    EXPECT_LE(t.accounts.size(), 6u);
    EXPECT_EQ(t.query, "49ers");
    for (microblog::UserId u : t.accounts) {
      EXPECT_TRUE(seen.insert(u).second) << "account duplicated across tasks";
    }
  }
  EXPECT_EQ(seen.size(), 14u);
}

TEST(BuildCrowdTasksTest, DeterministicForSeed) {
  auto a = eval::BuildCrowdTasks("q", MakeList({1, 2, 3}), MakeList({4, 5}));
  auto b = eval::BuildCrowdTasks("q", MakeList({1, 2, 3}), MakeList({4, 5}));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].accounts, b[i].accounts);
  }
}

// ------------------------------------------------------------ WorkerPool --

TEST(WorkerPoolTest, ScreeningRemovesMostSpammers) {
  eval::WorkerPool::PoolOptions options;
  options.num_workers = 200;
  options.spammer_rate = 0.3;
  options.seed = 21;
  eval::WorkerPool pool(options);

  Rng rng(22);
  auto passed = pool.ScreenWorkers(/*gold_questions=*/5, /*max_wrong=*/1,
                                   &rng);
  size_t spammers_passed = 0, honest_passed = 0;
  for (size_t id : passed) {
    if (pool.workers()[id].spammer) {
      ++spammers_passed;
    } else {
      ++honest_passed;
    }
  }
  size_t spammers_total = 0;
  for (const auto& w : pool.workers()) spammers_total += w.spammer;
  ASSERT_GT(spammers_total, 20u);
  // The gate passes most honest workers and rejects most spammers.
  EXPECT_GT(honest_passed, (options.num_workers - spammers_total) / 2);
  EXPECT_LT(static_cast<double>(spammers_passed),
            0.5 * static_cast<double>(spammers_total));
}

// ---------------------------------------------------------- Persistence ---

community::CommunityStore SmallStore() {
  graph::Graph g;
  g.AddVertex("49ers");
  g.AddVertex("49ers draft");
  g.AddVertex("nfl");
  (void)g.AddEdge(0, 1, 0.9);
  (void)g.AddEdge(1, 2, 0.2);
  g.Finalize();
  return community::CommunityStore::Build(g, {0, 0, 2});
}

TEST(StorePersistenceTest, TsvRoundTrip) {
  community::CommunityStore store = SmallStore();
  std::string tsv = store.SerializeTsv();
  community::CommunityStore parsed = *community::CommunityStore::ParseTsv(tsv);
  EXPECT_EQ(parsed.num_communities(), store.num_communities());
  EXPECT_EQ((*parsed.Find("49ers"))->terms, (*store.Find("49ers"))->terms);
  // Inter-community weights survive (ClosestCommunities still works).
  auto closest = parsed.ClosestCommunities(0, 1);
  ASSERT_EQ(closest.size(), 1u);
  EXPECT_DOUBLE_EQ(closest[0].second, 0.2);
}

TEST(StorePersistenceTest, ParseRejectsGarbage) {
  EXPECT_FALSE(community::CommunityStore::ParseTsv("x\t1\ty").ok());
  EXPECT_FALSE(community::CommunityStore::ParseTsv("t\tnotanumber\tterm").ok());
  EXPECT_FALSE(community::CommunityStore::ParseTsv("w\t1\t2").ok());
}

TEST(FileIoTest, WriteReadRoundTrip) {
  std::string path = ::testing::TempDir() + "/esharp_file_io_test.tsv";
  ASSERT_TRUE(WriteStringToFile(path, "hello\tworld\n").ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_EQ(*ReadFileToString(path), "hello\tworld\n");
  EXPECT_FALSE(ReadFileToString(path + ".missing").ok());
  EXPECT_FALSE(FileExists(path + ".missing"));
}

TEST(FileIoTest, StoreSurvivesDisk) {
  community::CommunityStore store = SmallStore();
  std::string path = ::testing::TempDir() + "/esharp_store_test.tsv";
  ASSERT_TRUE(WriteStringToFile(path, store.SerializeTsv()).ok());
  community::CommunityStore loaded =
      *community::CommunityStore::ParseTsv(*ReadFileToString(path));
  EXPECT_EQ(loaded.num_communities(), store.num_communities());
}

// ------------------------------------------------------ Phrase fallback ---

TEST(PhraseFallbackTest, FindPhraseMatchesOrderedSubsequence) {
  community::CommunityStore store = SmallStore();
  // "draft" appears inside "49ers draft": phrase match finds it.
  auto found = store.FindPhrase("draft");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->terms[0], "49ers");
  // Out-of-order phrases do not match.
  EXPECT_FALSE(store.FindPhrase("draft 49ers").ok());
  EXPECT_FALSE(store.FindPhrase("").ok());
}

TEST(PhraseFallbackTest, ESharpUsesFallbackOnlyWhenConfigured) {
  community::CommunityStore store = SmallStore();
  microblog::TweetCorpus corpus;
  microblog::UserProfile u;
  u.id = 0;
  corpus.AddUser(u);
  corpus.AddTweet(0, "49ers draft talk", {}, 1);

  core::ESharpOptions exact;
  core::ESharp conservative(&store, &corpus, exact);
  EXPECT_FALSE(conservative.Expand("draft").matched);

  core::ESharpOptions fallback;
  fallback.match_mode = core::MatchMode::kPhraseFallback;
  core::ESharp extended(&store, &corpus, fallback);
  core::QueryExpansion expansion = extended.Expand("draft");
  EXPECT_TRUE(expansion.matched);
  EXPECT_GT(expansion.terms.size(), 1u);
}

}  // namespace
}  // namespace esharp
