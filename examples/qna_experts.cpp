// Future-work demo (§8): "expanding into other social networks such as
// Quora and Facebook". The community store mined from the search log is
// platform-agnostic; this example reuses it, unchanged, to expand queries
// on a simulated Q&A network.

#include <cstdio>

#include "esharp/pipeline.h"
#include "qna/detector.h"
#include "querylog/generator.h"

using namespace esharp;

int main() {
  querylog::UniverseOptions universe_options;
  universe_options.seed = 12;
  auto universe = querylog::TopicUniverse::Generate(universe_options);
  if (!universe.ok()) return 1;

  querylog::GeneratorOptions log_options;
  log_options.seed = 13;
  auto generated = GenerateQueryLog(*universe, log_options);
  if (!generated.ok()) return 1;

  core::OfflineOptions offline_options;
  auto artifacts = RunOfflinePipeline(generated->log, offline_options);
  if (!artifacts.ok()) return 1;

  qna::QnaOptions qna_options;
  qna_options.seed = 14;
  auto corpus = GenerateQnaCorpus(*universe, qna_options);
  if (!corpus.ok()) return 1;
  std::printf("Q&A platform: %zu users, %zu questions, %zu answers\n",
              corpus->num_users(), corpus->num_questions(),
              corpus->num_answers());

  qna::QnaExpertDetector detector(&*corpus);

  for (const char* query : {"diabetes", "diabetes guide", "nasdaq",
                            "world war i"}) {
    auto plain = detector.FindExperts(query);
    auto expanded = detector.FindExpertsExpanded(artifacts->store, query);
    if (!plain.ok() || !expanded.ok()) continue;
    std::printf("\nQuery '%s': plain %zu answerers, expanded %zu\n", query,
                plain->size(), expanded->size());
    for (size_t i = 0; i < expanded->size() && i < 3; ++i) {
      const qna::UserProfile& profile = corpus->user((*expanded)[i].user);
      std::printf("  %-28s score=%.2f  %s\n", profile.display_name.c_str(),
                  (*expanded)[i].score, profile.bio.c_str());
    }
  }

  std::printf(
      "\nThe same community store drives expansion on both platforms —\n"
      "the offline stage is the reusable asset.\n");
  return 0;
}
