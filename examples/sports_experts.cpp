// Domain scenario from the paper's introduction: learning about American
// football from a microblog. Runs several sports queries — the head team
// name, a sibling phrase, a hashtag variant and an abbreviation — and shows
// side by side what the precision-oriented baseline finds versus e#.
//
// The point to observe: on the sibling/variant queries the baseline goes
// hungry (tweets are 140 characters; nobody writes every phrasing), while
// e# reaches the same domain experts through the community.

#include <cstdio>

#include "esharp/esharp.h"
#include "esharp/pipeline.h"
#include "microblog/generator.h"
#include "querylog/generator.h"

using namespace esharp;

namespace {

void RunQuery(const core::ESharp& system,
              const microblog::TweetCorpus& corpus, const char* query) {
  auto baseline = system.detector().FindExperts(query);
  auto expanded = system.FindExperts(query);
  if (!baseline.ok() || !expanded.ok()) {
    std::printf("query '%s' failed\n", query);
    return;
  }
  core::QueryExpansion expansion = system.Expand(query);
  std::printf("\nQuery: '%s'  (community match: %s, %zu search terms)\n",
              query, expansion.matched ? "yes" : "no",
              expansion.terms.size());
  std::printf("  baseline: %2zu experts | e#: %2zu experts\n",
              baseline->size(), expanded->size());
  for (size_t i = 0; i < expanded->size() && i < 3; ++i) {
    const auto& profile = corpus.user((*expanded)[i].user);
    bool baseline_found = false;
    for (const auto& b : *baseline) {
      if (b.user == (*expanded)[i].user) baseline_found = true;
    }
    std::printf("    e# #%zu: %-24s %s\n", i + 1,
                profile.screen_name.c_str(),
                baseline_found ? "" : "<- invisible to the baseline");
  }
}

}  // namespace

int main() {
  querylog::UniverseOptions universe_options;
  universe_options.seed = 2016;
  auto universe = querylog::TopicUniverse::Generate(universe_options);
  if (!universe.ok()) return 1;

  querylog::GeneratorOptions log_options;
  log_options.seed = 2017;
  auto generated = GenerateQueryLog(*universe, log_options);
  if (!generated.ok()) return 1;

  core::OfflineOptions offline_options;
  auto artifacts = RunOfflinePipeline(generated->log, offline_options);
  if (!artifacts.ok()) return 1;

  microblog::CorpusOptions corpus_options;
  corpus_options.seed = 2018;
  auto corpus = GenerateCorpus(*universe, corpus_options);
  if (!corpus.ok()) return 1;

  core::ESharp system(&artifacts->store, &*corpus);

  std::printf("Suppose we wish to learn about American football...\n");
  RunQuery(system, *corpus, "49ers");
  RunQuery(system, *corpus, "49ers review");
  RunQuery(system, *corpus, "#49ersreview");
  RunQuery(system, *corpus, "nfl");
  RunQuery(system, *corpus, "nfl score");

  std::printf(
      "\nNote how sibling phrases and hashtag variants reach the same pool\n"
      "of domain experts once the community expands the query.\n");
  return 0;
}
