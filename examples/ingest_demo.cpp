// Streaming-ingest demo: live appends under serving traffic, with the
// full freshness-observability loop wired up.
//
//  1. Build an IngestPipeline and publish an initial generation.
//  2. Fire reader threads at a ServingEngine while the writer streams
//     tweet batches and query-log triples, publishing a delta generation
//     after every batch — each publish hot-swaps under the readers and
//     must leave backlog == 0 and lag == 0 (self-asserted).
//  3. Incident drill: hold a batch unpublished so ingest lag burns
//     through a deliberately tight SLO. The SloWatchdog (objectives from
//     DefaultIngestObjectives) breaches, its alert callback fires the
//     FlightRecorder, and an incident bundle — ingest gauge trajectories
//     included, via the TimeSeriesStore sampling the pipeline's metrics
//     registry — lands on disk. Publishing drains the backlog and the
//     objective recovers.
//  4. Final self-assert: the delta-built world is bit-identical to a
//     from-scratch rebuild (ingest/verify.h), so everything the demo
//     served was exactly what the offline pipeline would have answered.
//
// Build and run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/ingest_demo [--incident_dir=/tmp/ingest_incidents]
//
// Exits non-zero if any self-assert fails.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "ingest/ingest.h"
#include "ingest/introspect.h"
#include "ingest/verify.h"
#include "obs/flightrecorder.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "serving/engine.h"
#include "serving/snapshot.h"

using namespace esharp;

namespace {

constexpr size_t kTopics = 40;

std::string TopicWord(size_t i) { return "topic" + std::to_string(i); }

void Check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  [ok] %s\n", what.c_str());
  } else {
    std::fprintf(stderr, "  [FAIL] %s\n", what.c_str());
    std::exit(1);
  }
}

std::string RandomTweet(Rng& rng) {
  std::string text = TopicWord(rng.Uniform(kTopics));
  for (int i = 0; i < 3; ++i) {
    text += " fill" + std::to_string(rng.Uniform(64));
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  std::string incident_dir = "/tmp/esharp_ingest_demo_incidents";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--incident_dir=", 15) == 0) {
      incident_dir = argv[i] + 15;
    }
  }

  // ---- The pipeline, its gauges and the sampler behind /graphz ------------
  obs::MetricsRegistry registry;
  obs::TimeSeriesOptions ts_options;
  ts_options.registry = &registry;
  obs::TimeSeriesStore timeseries(ts_options);

  ingest::IngestOptions options;
  options.extraction.min_query_count = 3;
  options.extraction.min_similarity = 0.10;
  options.metrics = &registry;
  serving::SnapshotManager manager;
  ingest::IngestPipeline pipeline(&manager, options);

  std::printf("== seed: users, query log, first tweets, first publish\n");
  Rng rng(2016);
  for (microblog::UserId u = 0; u < 80; ++u) {
    microblog::UserProfile user;
    user.id = u;
    user.screen_name = "user" + std::to_string(u);
    user.followers = 10 + u;
    pipeline.AppendUser(user);
  }
  for (size_t t = 0; t < kTopics; ++t) {
    pipeline.AppendSearches(TopicWord(t), 5);
    pipeline.AppendClicks(TopicWord(t), static_cast<uint32_t>(t / 4),
                          2 + t % 3);
  }
  for (int i = 0; i < 2000; ++i) {
    pipeline.AppendTweet(rng.Uniform(80), RandomTweet(rng));
  }
  Result<ingest::PublishStats> first = pipeline.Publish();
  if (!first.ok()) {
    std::fprintf(stderr, "publish: %s\n", first.status().ToString().c_str());
    return 1;
  }
  timeseries.Sample();
  std::printf("  generation v%llu: %zu communities, %zu vocabulary terms\n",
              static_cast<unsigned long long>(first->version),
              first->communities, pipeline.published_vocabulary().size());

  // ---- Live appends under traffic -----------------------------------------
  std::printf("== streaming: 12 delta publishes under reader traffic\n");
  serving::ServingOptions engine_options;
  engine_options.num_threads = 2;
  serving::ServingEngine engine(&manager, engine_options);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng reader_rng(100 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        serving::QueryRequest request;
        request.query = TopicWord(reader_rng.Uniform(kTopics));
        if (engine.Query(std::move(request)).ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  bool all_fresh = true;
  for (int batch = 0; batch < 12; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pipeline.AppendTweet(rng.Uniform(80), RandomTweet(rng));
    }
    if (batch % 4 == 3) {  // occasional query-log delta: re-cluster path
      pipeline.AppendClicks(TopicWord(rng.Uniform(kTopics)),
                            static_cast<uint32_t>(kTopics + rng.Uniform(4)),
                            1 + rng.Uniform(3));
    }
    Result<ingest::PublishStats> stats = pipeline.Publish();
    if (!stats.ok()) {
      std::fprintf(stderr, "publish: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    timeseries.Sample();
    all_fresh = all_fresh && pipeline.backlog() == 0 &&
                pipeline.lag_ms() == 0;
    std::printf("  v%llu: %zu appends, %zu dirty terms, graph %s, "
                "%.2f ms\n",
                static_cast<unsigned long long>(stats->version),
                stats->batch_appends, stats->dirty_terms,
                stats->graph_changed ? "re-clustered" : "reused",
                stats->publish_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  Check(all_fresh, "every publish drained the backlog (lag 0 after each)");
  std::printf("  readers answered %llu queries across the hot-swaps\n",
              static_cast<unsigned long long>(served.load()));

  // ---- Incident drill: lag SLO breach -> flight recorder bundle -----------
  std::printf("== incident drill: withhold a publish, burn the lag SLO\n");
  double fake_now = 1000;  // watchdog clock seam: windows pass instantly
  obs::FlightRecorderOptions recorder_options;
  recorder_options.dir = incident_dir;
  recorder_options.timeseries = &timeseries;
  recorder_options.min_interval_seconds = 0;
  obs::FlightRecorder recorder(std::move(recorder_options));
  obs::SloWatchdog::Options watchdog_options;
  watchdog_options.clock = [&fake_now] { return fake_now; };
  obs::SloWatchdog watchdog(watchdog_options);
  ingest::IngestSloThresholds thresholds;
  thresholds.lag_ms = 5;  // deliberately tight so the drill breaches fast
  for (obs::SloObjective& objective :
       ingest::DefaultIngestObjectives(&pipeline, thresholds)) {
    watchdog.AddObjective(std::move(objective));
  }
  watchdog.AddAlertCallback(recorder.SloAlertHook());

  for (int i = 0; i < 100; ++i) {
    pipeline.AppendTweet(rng.Uniform(80), RandomTweet(rng));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  pipeline.RefreshGauges();
  timeseries.Sample();
  for (int tick = 0; tick < 4; ++tick) {
    watchdog.Tick();
    fake_now += 90;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Check(!watchdog.healthy(), "ingest_lag objective breached while held");
#if ESHARP_OBS_ENABLED
  std::vector<obs::IncidentBundleInfo> bundles = recorder.Bundles();
  Check(!bundles.empty(), "flight recorder captured an incident bundle");
  std::printf("  bundle: %s (%s)\n", bundles.back().path.c_str(),
              bundles.back().reason.c_str());
#endif

  Result<ingest::PublishStats> drain = pipeline.Publish();
  if (!drain.ok()) {
    std::fprintf(stderr, "publish: %s\n", drain.status().ToString().c_str());
    return 1;
  }
  timeseries.Sample();
  for (int tick = 0; tick < 3; ++tick) {
    fake_now += 400;  // roll both burn windows clear of the breach samples
    watchdog.Tick();
  }
  Check(watchdog.healthy(), "objective recovered after the drain publish");

  // ---- The equivalence self-assert ----------------------------------------
  std::printf("== equivalence: delta world vs from-scratch rebuild\n");
  std::vector<std::string> probes;
  for (size_t t = 0; t < 10; ++t) probes.push_back(TopicWord(t));
  probes.push_back("no such topic");
  Status gate = ingest::VerifyAgainstRebuild(pipeline, probes);
  Check(gate.ok(), gate.ok()
                       ? "every published artifact and ranked answer "
                         "bit-identical to a from-scratch rebuild"
                       : gate.ToString());
  std::printf("\ningest demo: all self-asserts passed\n");
  return 0;
}
