// esharp_cli — command-line front end for the library.
//
//   esharp_cli build  [--seed N] [--out PATH]      build a collection of
//                                                  expertise domains from a
//                                                  simulated month of logs
//                                                  and save it as TSV
//   esharp_cli inspect --store PATH --term TERM    load a saved collection
//                                                  and show TERM's community
//                                                  and its closest neighbors
//   esharp_cli search [--seed N] --query "Q"       run baseline and e# over
//                                                  a simulated microblog
//
// Everything is deterministic in --seed, so results are reproducible.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/file_io.h"
#include "esharp/esharp.h"
#include "esharp/pipeline.h"
#include "microblog/generator.h"
#include "querylog/generator.h"

using namespace esharp;

namespace {

struct Args {
  std::string command;
  uint64_t seed = 2016;
  std::string out = "esharp_store.tsv";
  std::string store;
  std::string term;
  std::string query;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--seed") {
      args->seed = std::stoull(value);
    } else if (flag == "--out") {
      args->out = value;
    } else if (flag == "--store") {
      args->store = value;
    } else if (flag == "--term") {
      args->term = value;
    } else if (flag == "--query") {
      args->query = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

Result<core::OfflineArtifacts> BuildCollection(uint64_t seed) {
  querylog::UniverseOptions uo;
  uo.seed = seed;
  ESHARP_ASSIGN_OR_RETURN(querylog::TopicUniverse universe,
                          querylog::TopicUniverse::Generate(uo));
  querylog::GeneratorOptions go;
  go.seed = seed + 1;
  ESHARP_ASSIGN_OR_RETURN(querylog::GeneratedLog generated,
                          GenerateQueryLog(universe, go));
  core::OfflineOptions offline;
  return RunOfflinePipeline(generated.log, offline);
}

int RunBuild(const Args& args) {
  auto artifacts = BuildCollection(args.seed);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }
  community::SizeHistogram h = artifacts->store.ComputeSizeHistogram();
  std::printf("Built %zu communities over %zu queries "
              "(%zu orphans, %zu of size 2-10).\n",
              artifacts->store.num_communities(),
              artifacts->similarity_graph.num_vertices(), h.orphans, h.small);
  Status st = WriteStringToFile(args.out, artifacts->store.SerializeTsv());
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Saved to %s (%s).\n", args.out.c_str(),
              HumanBytes(artifacts->store.SizeBytes()).c_str());
  return 0;
}

int RunInspect(const Args& args) {
  if (args.store.empty() || args.term.empty()) {
    std::fprintf(stderr, "inspect requires --store and --term\n");
    return 2;
  }
  auto content = ReadFileToString(args.store);
  if (!content.ok()) {
    std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
    return 1;
  }
  auto store = community::CommunityStore::ParseTsv(*content);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  auto found = store->Find(args.term);
  if (!found.ok()) found = store->FindPhrase(args.term);
  if (!found.ok()) {
    std::printf("'%s' matches no community.\n", args.term.c_str());
    return 0;
  }
  std::printf("Community of '%s' (%zu terms):\n ", args.term.c_str(),
              (*found)->terms.size());
  for (const std::string& t : (*found)->terms) std::printf(" %s;", t.c_str());
  std::printf("\nClosest communities:\n");
  for (const auto& [index, weight] :
       store->ClosestCommunities((*found)->id, 3)) {
    const community::Community& c = store->community(index);
    std::printf("  w=%.3f  '%s' (+%zu more terms)\n", weight,
                c.terms.empty() ? "?" : c.terms[0].c_str(),
                c.terms.size() - 1);
  }
  return 0;
}

int RunSearch(const Args& args) {
  if (args.query.empty()) {
    std::fprintf(stderr, "search requires --query\n");
    return 2;
  }
  auto artifacts = BuildCollection(args.seed);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }
  querylog::UniverseOptions uo;
  uo.seed = args.seed;
  auto universe = querylog::TopicUniverse::Generate(uo);
  microblog::CorpusOptions co;
  co.seed = args.seed + 2;
  auto corpus = GenerateCorpus(*universe, co);
  if (!corpus.ok()) return 1;

  core::ESharp system(&artifacts->store, &*corpus);
  auto baseline = system.detector().FindExperts(args.query);
  auto expanded = system.FindExperts(args.query);
  if (!baseline.ok() || !expanded.ok()) return 1;

  std::printf("Query: '%s'\n", args.query.c_str());
  core::QueryExpansion expansion = system.Expand(args.query);
  std::printf("Expansion: %s (%zu terms)\n",
              expansion.matched ? "matched" : "no community",
              expansion.terms.size());
  std::printf("\n%-10s %-24s %-8s\n", "Algorithm", "Expert", "Score");
  for (size_t i = 0; i < baseline->size() && i < 5; ++i) {
    std::printf("%-10s %-24s %-8.2f\n", "baseline",
                corpus->user((*baseline)[i].user).screen_name.c_str(),
                (*baseline)[i].score);
  }
  for (size_t i = 0; i < expanded->size() && i < 5; ++i) {
    std::printf("%-10s %-24s %-8.2f\n", "e#",
                corpus->user((*expanded)[i].user).screen_name.c_str(),
                (*expanded)[i].score);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s build [--seed N] [--out PATH]\n"
                 "       %s inspect --store PATH --term TERM\n"
                 "       %s search [--seed N] --query QUERY\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  if (args.command == "build") return RunBuild(args);
  if (args.command == "inspect") return RunInspect(args);
  if (args.command == "search") return RunSearch(args);
  std::fprintf(stderr, "unknown command '%s'\n", args.command.c_str());
  return 2;
}
