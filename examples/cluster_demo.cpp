// Cluster demo: the e# serving tier sharded behind a scatter-gather router.
//
//  1. Build a world and run the offline pipeline (as in serving_demo).
//  2. Partition the tweet corpus across 4 shard engines — each a full
//     ServingEngine over its slice, with its own snapshot + evidence index.
//  3. Route traffic through a ClusterRouter: per-query scatter to every
//     shard, k-way evidence merge, one rank step over the union corpus.
//     The answer is bit-identical to an unsharded engine (checked live).
//  4. Kill one shard mid-traffic: queries keep succeeding as degraded
//     partial answers (shards_answered/N annotation), the health tracker
//     marks the shard down, and /readyz drops to degraded-quorum detail.
//  5. Revive the shard and print the shard table + router metrics.
//
// Build and run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/cluster_demo [--port=N] [--trace_out=PATH]
//
// --port=N additionally mounts the cluster debug endpoints (0 picks an
// ephemeral port):
//   curl localhost:N/statusz   # cluster summary + per-shard table
//   curl localhost:N/readyz    # quorum readiness
//   curl localhost:N/queryz    # slow-query log; ?trace=<id> = Chrome trace
//
// --trace_out=PATH dumps the slowest profiled query's stitched Chrome
// trace (one lane per shard, hedges and deadline attribution included) to
// PATH — load it in chrome://tracing or ui.perfetto.dev. With the outage
// below, the slowest query is usually one that lost shard-2.
//
// --incident_dir=PATH arms the full incident stack against the outage: a
// time-series sampler over the global registry, an SLO watchdog with
// demo-tight windows, and a flight recorder triggered both by the
// shard-down health transition and by the SLO breach. The demo then
// *asserts* on its own black box — a bundle landed, it names the dead
// shard, and its time series show the dead shard's completion rate
// dipping through the outage and recovering after revival — and exits
// non-zero if any of that is missing.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/introspect.h"
#include "cluster/partition.h"
#include "common/file_io.h"
#include "cluster/router.h"
#include "cluster/shard.h"
#include "esharp/pipeline.h"
#include "expert/detector.h"
#include "microblog/generator.h"
#include "obs/debugz.h"
#include "obs/flightrecorder.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "querylog/generator.h"
#include "serving/engine.h"

using namespace esharp;

namespace {

/// Demo transport: an in-process shard with a kill switch, so "a shard
/// process died" is one atomic store.
class KillableShard final : public cluster::ShardTransport {
 public:
  KillableShard(std::string name, serving::ServingEngine* engine)
      : name_(std::move(name)), inner_(name_, engine) {}

  const std::string& name() const override { return name_; }

  Result<cluster::ShardEvidence> Collect(
      const cluster::ShardRequest& request) override {
    if (dead_.load(std::memory_order_relaxed)) {
      return Status::Unavailable(name_, " is down");
    }
    return inner_.Collect(request);
  }

  uint64_t VersionHint() const override { return inner_.VersionHint(); }

  void set_dead(bool dead) {
    dead_.store(dead, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  cluster::InProcessShard inner_;
  std::atomic<bool> dead_{false};
};

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  std::string trace_out;
  std::string incident_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) port = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--trace_out=", 12) == 0) trace_out = argv[i] + 12;
    if (std::strncmp(argv[i], "--incident_dir=", 15) == 0) {
      incident_dir = argv[i] + 15;
    }
  }
  constexpr uint32_t kShards = 4;

  // ---- 1. Offline world ----------------------------------------------------
  querylog::UniverseOptions universe_options;
  universe_options.num_categories = 3;
  universe_options.domains_per_category = 10;
  universe_options.seed = 21;
  auto universe = querylog::TopicUniverse::Generate(universe_options);
  if (!universe.ok()) return 1;

  querylog::GeneratorOptions log_options;
  log_options.seed = 22;
  log_options.head_impressions = 25000;
  auto log = GenerateQueryLog(*universe, log_options);
  if (!log.ok()) return 1;

  core::OfflineOptions offline_options;
  offline_options.extraction.min_similarity = 0.15;
  auto artifacts = RunOfflinePipeline(log->log, offline_options);
  if (!artifacts.ok()) return 1;

  microblog::CorpusOptions corpus_options;
  corpus_options.seed = 23;
  corpus_options.casual_users = 300;
  auto corpus = GenerateCorpus(*universe, corpus_options);
  if (!corpus.ok()) return 1;

  // ---- 2. Partition + per-shard engines ------------------------------------
  cluster::PartitionedCorpus partition =
      cluster::PartitionCorpus(*corpus, kShards);
  auto store =
      std::make_shared<const community::CommunityStore>(artifacts->store);
  std::vector<std::unique_ptr<serving::SnapshotManager>> managers;
  std::vector<std::unique_ptr<serving::ServingEngine>> engines;
  std::vector<std::unique_ptr<cluster::ShardTransport>> transports;
  std::vector<KillableShard*> switches;
  for (uint32_t s = 0; s < kShards; ++s) {
    managers.push_back(std::make_unique<serving::SnapshotManager>(
        partition.shards[s].get()));
    managers.back()->Publish(store);
    serving::ServingOptions engine_options;
    engine_options.num_threads = 2;
    engine_options.enable_cache = false;  // the router caches final answers
    engine_options.enable_single_flight = false;
    engines.push_back(std::make_unique<serving::ServingEngine>(
        managers.back().get(), engine_options));
    auto shard = std::make_unique<KillableShard>("shard-" + std::to_string(s),
                                                 engines.back().get());
    switches.push_back(shard.get());
    transports.push_back(std::move(shard));
    std::printf("shard-%u: %zu tweets, snapshot v%llu\n", s,
                partition.shards[s]->num_tweets(),
                static_cast<unsigned long long>(
                    engines.back()->snapshot_version()));
  }

  // ---- 3. The router + an unsharded twin for the equivalence check ---------
  expert::ExpertDetector union_detector(&*corpus);
  cluster::RouterOptions router_options;
  router_options.num_threads = kShards + 2;
  // Cache off for the demo: every query scatters, so the outage below is
  // visible in the degraded counts and the health tracker (cached answers
  // never touch a shard and would mask the dead one).
  router_options.enable_cache = false;
  // The flight recorder is constructed after the router (it snapshots the
  // router's shard table), so the transition hook reaches it through a
  // slot filled in once both exist.
  auto recorder_slot =
      std::make_shared<std::atomic<obs::FlightRecorder*>>(nullptr);
  if (!incident_dir.empty()) {
    router_options.on_shard_transition =
        [recorder_slot](const cluster::ShardStatus& status,
                        cluster::ShardState /*previous*/) {
          obs::FlightRecorder* recorder = recorder_slot->load();
          if (recorder != nullptr &&
              status.state == cluster::ShardState::kDown) {
            (void)recorder->Trigger("shard_down:" + status.name,
                                    status.last_error);
          }
        };
  }
  cluster::ClusterRouter router(std::move(transports), &union_detector,
                                router_options);

  // ---- Incident stack (--incident_dir) -------------------------------------
  // Sampler at 20 Hz (the demo lives ~1 s; production would use the 1 Hz
  // default), watchdog with windows tightened to demo scale, recorder
  // armed on both the shard-down transition above and the SLO breach.
  std::unique_ptr<obs::TimeSeriesStore> sampler;
  std::unique_ptr<obs::SloWatchdog> watchdog;
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!incident_dir.empty()) {
    obs::TimeSeriesOptions sampler_options;
    sampler_options.capacity = 4096;
    sampler = std::make_unique<obs::TimeSeriesStore>(sampler_options);
    sampler->Start(0.05);

    cluster::ClusterSloThresholds thresholds;
    thresholds.shard_down_ratio = 0.1;  // one dead shard of 4 = breach
    watchdog = std::make_unique<obs::SloWatchdog>();
    for (obs::SloObjective& objective :
         cluster::DefaultClusterObjectives(&router, thresholds)) {
      objective.short_window_seconds = 0.3;
      objective.long_window_seconds = 0.6;
      objective.burn_threshold = 1.0;
      watchdog->AddObjective(std::move(objective));
    }

    obs::FlightRecorderOptions recorder_options;
    recorder_options.dir = incident_dir;
    recorder_options.min_interval_seconds = 0;  // demo: keep every trigger
    recorder_options.window_seconds = 60;
    recorder_options.timeseries = sampler.get();
    recorder_options.slow_queries = &router.slow_queries();
    recorder_options.statusz = [&router]() {
      return router.health().RenderTable();
    };
    recorder = std::make_unique<obs::FlightRecorder>(recorder_options);
    recorder_slot->store(recorder.get());
    watchdog->AddAlertCallback(recorder->SloAlertHook());
    watchdog->Start(0.05);
    std::printf("incident stack armed: bundles land in %s\n",
                incident_dir.c_str());
  }

  serving::SnapshotManager reference_manager(&*corpus);
  reference_manager.Publish(store);
  serving::ServingOptions reference_options;
  reference_options.num_threads = 2;
  reference_options.enable_cache = false;
  reference_options.enable_single_flight = false;
  serving::ServingEngine reference(&reference_manager, reference_options);

  std::unique_ptr<obs::DebugServer> server;
  if (port >= 0) {
    obs::DebugServerOptions server_options;
    server_options.port = port;
    server = std::make_unique<obs::DebugServer>(server_options);
    cluster::ClusterIntrospectionOptions wiring;
    wiring.build_info = "cluster_demo (e# reproduction)";
    wiring.timeseries = sampler.get();  // mounts /graphz when armed
    wiring.recorder = recorder.get();   // mounts /incidentz when armed
    cluster::MountClusterEndpoints(server.get(), &router, wiring);
    if (!server->Start().ok()) return 1;
    std::printf(
        "\ndebugz on http://127.0.0.1:%d (/statusz, /readyz, /queryz)\n",
        server->port());
  }

  std::vector<std::string> queries;
  for (const querylog::TopicDomain& dom : universe->domains()) {
    queries.push_back(dom.terms[0]);
  }

  size_t checked = 0, identical = 0;
  for (size_t i = 0; i < 8 && i < queries.size(); ++i) {
    auto routed = router.Query({queries[i]});
    auto direct = reference.Query({queries[i]});
    if (!routed.ok() || !direct.ok()) continue;
    ++checked;
    bool same = routed->experts.size() == direct->experts.size();
    for (size_t e = 0; same && e < routed->experts.size(); ++e) {
      same = routed->experts[e].user == direct->experts[e].user &&
             routed->experts[e].score == direct->experts[e].score;
    }
    identical += same;
  }
  std::printf("\nrank equivalence: %zu/%zu sampled queries bit-identical "
              "to the unsharded engine\n\n",
              identical, checked);

  // ---- 4. Kill shard-2 mid-traffic -----------------------------------------
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_count{0}, degraded_count{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      size_t i = t;
      while (!stop.load(std::memory_order_acquire)) {
        auto response = router.Query({queries[i++ % queries.size()]});
        if (response.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
          if (response->degraded)
            degraded_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::printf("killing shard-2 under live traffic...\n");
  double kill_t = obs::NowSeconds();
  switches[2]->set_dead(true);
  // With the incident stack armed the outage must outlast the watchdog's
  // long burn window (0.6 s) so the SLO breach fires, not just the
  // health transition.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(incident_dir.empty() ? 300 : 900));

  auto degraded = router.Query({queries[0], /*deadline_ms=*/-1,
                                /*bypass_cache=*/true});
  if (degraded.ok()) {
    std::printf("degraded answer: %zu experts from %zu/%zu shards "
                "(degraded=%s)\n",
                degraded->experts.size(), degraded->shards_answered,
                degraded->shards_total, degraded->degraded ? "yes" : "no");
  }
  obs::ProbeResult quorum = cluster::ClusterQuorumReadiness(&router)();
  std::printf("readyz: %s (%s)\n", quorum.ok ? "ok" : "NOT READY",
              quorum.detail.c_str());

  std::printf("\nreviving shard-2...\n");
  double revive_t = obs::NowSeconds();
  switches[2]->set_dead(false);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(incident_dir.empty() ? 150 : 400));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();

  auto healed = router.Query({queries[0], /*deadline_ms=*/-1,
                              /*bypass_cache=*/true});
  if (healed.ok()) {
    std::printf("healed answer: %zu/%zu shards, degraded=%s\n",
                healed->shards_answered, healed->shards_total,
                healed->degraded ? "yes" : "no");
  }

  // ---- 5. Dashboards -------------------------------------------------------
  std::printf("\n%llu queries served, %llu degraded during the outage\n\n",
              static_cast<unsigned long long>(ok_count.load()),
              static_cast<unsigned long long>(degraded_count.load()));
  std::printf("shard table:\n%s\n", router.health().RenderTable().c_str());
  std::printf("router metrics:\n%s", router.metrics().ToTable().c_str());

  // The slow-query log saw every scattered query above; dump the slowest
  // one's stitched per-shard trace on request.
  std::vector<std::shared_ptr<const obs::QueryProfile>> slowest =
      router.slow_queries().TopK();
  std::printf("\nslow-query log: %llu profiled, slowest %.3f ms\n",
              static_cast<unsigned long long>(router.slow_queries().recorded()),
              slowest.empty() ? 0.0 : slowest.front()->total_ms);
  if (!trace_out.empty() && !slowest.empty()) {
    const obs::QueryProfile& slow = *slowest.front();
    Status written = WriteStringToFile(trace_out, slow.ExportChromeJson());
    if (written.ok()) {
      std::printf("wrote Chrome trace of '%s' (trace %s, %.3f ms, %s) to "
                  "%s — load in chrome://tracing\n",
                  slow.query.c_str(), slow.trace.TraceIdHex().c_str(),
                  slow.total_ms, slow.outcome.c_str(), trace_out.c_str());
    } else {
      std::printf("could not write %s: %s\n", trace_out.c_str(),
                  written.ToString().c_str());
    }
  }
  // ---- 6. Incident validation ----------------------------------------------
  // The incident stack must have caught the outage on its own: at least
  // one bundle on disk, one naming the dead shard, and the sampler's
  // rings showing shard-2's engine completion rate collapsing through
  // the outage window and recovering after revival.
  int verdict = 0;
  if (!incident_dir.empty()) {
    watchdog->Stop();
    sampler->Stop();
#if !ESHARP_OBS_ENABLED
    std::printf("\nincident stack: built with -DESHARP_OBS_OFF=ON, "
                "nothing recorded (as designed); skipping validation\n");
#else
    std::vector<obs::IncidentBundleInfo> bundles = recorder->Bundles();
    std::printf("\nincident bundles (%zu):\n", bundles.size());
    std::string all_bundles;
    for (const obs::IncidentBundleInfo& bundle : bundles) {
      std::printf("  #%llu %-28s %6zu bytes  %s\n",
                  static_cast<unsigned long long>(bundle.sequence),
                  bundle.reason.c_str(), bundle.size_bytes,
                  bundle.path.c_str());
      auto content = ReadFileToString(bundle.path);
      if (content.ok()) all_bundles += *content;
    }
    if (bundles.empty()) {
      std::printf("FAIL: no incident bundle was written\n");
      verdict = 1;
    } else if (all_bundles.find("shard-2") == std::string::npos ||
               all_bundles.find("down") == std::string::npos) {
      std::printf("FAIL: no bundle names the dead shard's down transition\n");
      verdict = 1;
    }

    // The dip: among the per-engine completion-rate series, exactly the
    // dead shard's should be busy before the kill, near zero during the
    // outage, and busy again after revival. The retired reference engine
    // fails the recovery leg; the surviving shards never dip.
    std::string dip_series;
    for (const std::string& name : sampler->SeriesNames()) {
      if (name.rfind("serving.completed{", 0) != 0) continue;
      double max_before = 0, min_during = -1, max_after = 0;
      for (const obs::TimeSeriesPoint& point : sampler->Range(name)) {
        if (point.time_seconds < kill_t) {
          max_before = std::max(max_before, point.value);
        } else if (point.time_seconds > kill_t + 0.2 &&
                   point.time_seconds < revive_t) {
          min_during = min_during < 0 ? point.value
                                      : std::min(min_during, point.value);
        } else if (point.time_seconds > revive_t + 0.1) {
          max_after = std::max(max_after, point.value);
        }
      }
      if (max_before > 0 && min_during >= 0 &&
          min_during < 0.2 * max_before && max_after > 0.2 * max_before) {
        dip_series = name;
        std::printf("outage visible in %s: %.0f qps before, %.0f during, "
                    "%.0f after revival\n",
                    name.c_str(), max_before, min_during, max_after);
      }
    }
    // Series ids carry label quotes, which land JSON-escaped in the
    // bundle file; escape the needle the same way before searching.
    std::string dip_needle;
    for (char c : dip_series) {
      if (c == '"' || c == '\\') dip_needle += '\\';
      dip_needle += c;
    }
    if (dip_series.empty()) {
      std::printf("FAIL: no sampled series shows the dip-and-recover "
                  "signature of the killed shard\n");
      verdict = 1;
    } else if (all_bundles.find(dip_needle) == std::string::npos) {
      std::printf("FAIL: bundle time series do not include %s\n",
                  dip_series.c_str());
      verdict = 1;
    }
    if (verdict == 0) {
      std::printf("incident validation: PASS (%zu bundles, dip captured)\n",
                  bundles.size());
    }
#endif
  }
  if (server != nullptr) server->Stop();
  return verdict;
}
