// Serving demo: the e# online stage as a live, concurrent service.
//
//  1. Build a world (universe, query log, tweet corpus) and run the offline
//     pipeline — week 1's artifacts.
//  2. Publish them to a SnapshotManager and start a ServingEngine.
//  3. Fire mixed traffic at the engine from client threads: repeated hot
//     queries (cache hits), scattered tail queries (misses), an unknown
//     query (baseline degradation).
//  4. Mid-traffic, run the weekly refresh (warm-started offline pipeline,
//     §6.3) and hot-swap the store under the live load.
//  5. Print the serving metrics dashboard, the whole-process metrics
//     registry, and an EXPLAIN ANALYZE tree for one SQL-backend clustering
//     iteration.
//
// Build and run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/serving_demo --metrics_json=/tmp/m.json --trace=/tmp/trace.json
//
// --metrics_json writes a JSON snapshot of every metric in the process;
// --trace writes a Chrome about:tracing / Perfetto-loadable trace covering
// both the served requests (request -> admission/cache/expand/detect/rank)
// and the weekly refresh (offline_pipeline -> extract/cluster/index with
// per-iteration modularity annotations).
//
// --port=N starts the embedded debugz server alongside the traffic (0 picks
// an ephemeral port) and self-scrapes /metrics and /readyz mid-swap to show
// the endpoints answering concurrently with serving. --serve_seconds=S keeps
// the process (and a trickle of traffic) alive afterwards so you can curl:
//   ./build/examples/serving_demo --port=8080 --serve_seconds=60 &
//   curl localhost:8080/statusz
//   curl localhost:8080/metrics
//   curl localhost:8080/tracez

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "esharp/pipeline.h"
#include "microblog/generator.h"
#include "obs/debugz.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "querylog/generator.h"
#include "serving/engine.h"
#include "serving/introspect.h"

using namespace esharp;

int main(int argc, char** argv) {
  std::string metrics_json_path, trace_path;
  int port = -1;  // < 0: debugz server disabled
  double serve_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics_json=", 15) == 0) {
      metrics_json_path = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--serve_seconds=", 16) == 0) {
      serve_seconds = std::atof(argv[i] + 16);
    }
  }

  obs::Tracer tracer;

  // ---- 1. Week 1: simulate inputs and run the offline pipeline ------------
  querylog::UniverseOptions universe_options;
  universe_options.num_categories = 3;
  universe_options.domains_per_category = 12;
  universe_options.seed = 11;
  auto universe = querylog::TopicUniverse::Generate(universe_options);
  if (!universe.ok()) return 1;

  querylog::GeneratorOptions log_options;
  log_options.seed = 12;
  log_options.head_impressions = 30000;
  auto week1 = GenerateQueryLog(*universe, log_options);
  if (!week1.ok()) return 1;

  core::OfflineOptions offline_options;
  offline_options.extraction.min_similarity = 0.15;
  offline_options.tracer = &tracer;
  auto artifacts = RunOfflinePipeline(week1->log, offline_options);
  if (!artifacts.ok()) return 1;

  microblog::CorpusOptions corpus_options;
  corpus_options.seed = 13;
  corpus_options.casual_users = 300;
  auto corpus = GenerateCorpus(*universe, corpus_options);
  if (!corpus.ok()) return 1;

  std::printf("offline week 1: %zu queries -> %zu communities\n",
              artifacts->similarity_graph.num_vertices(),
              artifacts->store.num_communities());

  // ---- 2. Publish week 1 and start serving --------------------------------
  serving::SnapshotManager manager(&*corpus);
  uint64_t v1 = manager.Publish(std::make_shared<const community::CommunityStore>(
      artifacts->store));
  std::printf("published snapshot v%llu\n\n",
              static_cast<unsigned long long>(v1));

  serving::ServingOptions serving_options;
  serving_options.num_threads = 4;
  serving_options.max_in_flight = 128;
  serving_options.tracer = &tracer;
  serving::ServingEngine engine(&manager, serving_options);

  // ---- 2b. The debugz server, watching the engine it shares a process with.
  // Declared after the engine so they tear down in the safe order: the
  // watchdog and server capture `&engine` and must stop first.
  std::unique_ptr<obs::SloWatchdog> watchdog;
  std::unique_ptr<obs::DebugServer> server;
  if (port >= 0) {
    watchdog = std::make_unique<obs::SloWatchdog>();
    for (obs::SloObjective& objective :
         serving::DefaultServingObjectives(&engine)) {
      watchdog->AddObjective(std::move(objective));
    }
    watchdog->Start(/*period_seconds=*/0.5);

    obs::DebugServerOptions server_options;
    server_options.port = port;
    server = std::make_unique<obs::DebugServer>(server_options);
    serving::ServingIntrospectionOptions wiring;
    wiring.build_info = "serving_demo (e# reproduction)";
    wiring.tracer = &tracer;
    wiring.watchdog = watchdog.get();
    serving::MountServingEndpoints(server.get(), &engine, wiring);
    Status started = server->Start();
    if (!started.ok()) {
      std::printf("debugz: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("debugz serving on http://127.0.0.1:%d — try:\n", server->port());
    std::printf("  curl localhost:%d/statusz\n", server->port());
    std::printf("  curl localhost:%d/metrics\n", server->port());
    std::printf("  curl localhost:%d/tracez\n\n", server->port());
  }

  // ---- 3. Mixed traffic from client threads -------------------------------
  // Hot queries: the head terms of the first few domains (cache-friendly).
  // Cold queries: one term per remaining domain (mostly misses). Plus an
  // unknown query that degrades to the plain baseline.
  std::vector<std::string> hot, cold;
  for (size_t d = 0; d < universe->domains().size(); ++d) {
    const querylog::TopicDomain& dom = universe->domain(d);
    (d < 4 ? hot : cold).push_back(dom.terms[0]);
  }

  auto client = [&engine](const std::vector<std::string>& queries,
                          size_t rounds) {
    for (size_t r = 0; r < rounds; ++r) {
      for (const std::string& q : queries) {
        auto response = engine.Query({q});
        (void)response;
      }
    }
  };

  std::thread hot_client(client, hot, 25);
  std::thread cold_client(client, cold, 5);
  std::thread misc_client([&engine] {
    for (int i = 0; i < 20; ++i) {
      (void)engine.Query({"completely unknown query zz"});
    }
  });

  // ---- 4. The weekly refresh hot-swaps mid-traffic ------------------------
  // Week 2 re-runs the offline pipeline warm-started from week 1's
  // communities (§6.3) and republishes — while the clients above keep
  // querying. Readers in flight finish against week 1; new requests see
  // week 2; stale cache entries are invalidated by version. The refresh
  // shares the demo's tracer, so the trace file shows the offline job
  // overlapping the served requests.
  log_options.seed = 14;  // next week's log differs
  auto week2 = GenerateQueryLog(*universe, log_options);
  if (!week2.ok()) return 1;
  offline_options.previous_store = &artifacts->store;
  auto refreshed = RunOfflinePipeline(week2->log, offline_options);
  if (!refreshed.ok()) return 1;
  uint64_t v2 = manager.Publish(std::make_shared<const community::CommunityStore>(
      refreshed->store));
  std::printf("hot-swapped to snapshot v%llu mid-traffic (%zu communities)\n",
              static_cast<unsigned long long>(v2),
              refreshed->store.num_communities());

  // Self-scrape while the clients are still firing: the debug endpoints
  // answer concurrently with live traffic and the swap we just did.
  if (server != nullptr) {
    auto metrics = obs::HttpGet("127.0.0.1", server->port(), "/metrics");
    auto ready = obs::HttpGet("127.0.0.1", server->port(), "/readyz");
    if (metrics.ok() && ready.ok()) {
      std::printf(
          "mid-traffic self-scrape: /metrics %d (%zu bytes), /readyz %d (%s)\n",
          metrics->status, metrics->body.size(), ready->status,
          ready->body.substr(0, ready->body.find('\n')).c_str());
    }
  }

  hot_client.join();
  cold_client.join();
  misc_client.join();

  // A post-swap query answers from the new generation.
  auto post = engine.Query({hot[0], /*deadline_ms=*/-1, /*bypass_cache=*/true});
  if (post.ok()) {
    std::printf("post-swap query '%s': %zu experts from snapshot v%llu\n\n",
                hot[0].c_str(), post->experts.size(),
                static_cast<unsigned long long>(post->snapshot_version));
  }

  // ---- 5. The dashboards --------------------------------------------------
  std::printf("serving metrics:\n%s", engine.metrics().ToTable().c_str());
  serving::CacheStats cache = engine.cache_stats();
  std::printf("cache: %llu hits, %llu misses, %llu invalidated/expired\n\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.expirations));

  // EXPLAIN ANALYZE: rerun clustering through the SQL engine backend with
  // profiling on — the per-operator tree of Fig. 4's main statement, with
  // exact row counts (the paper's deployment story made diagnosable).
  core::OfflineOptions sql_options;
  sql_options.extraction.min_similarity = 0.15;
  sql_options.backend = core::ClusteringBackend::kSqlEngine;
  sql_options.max_iterations = 3;
  sql::ExplainStats explain;
  sql_options.explain = &explain;
  auto sql_run = RunOfflinePipeline(week1->log, sql_options);
  if (sql_run.ok() && explain.NodeCount() > 0) {
    std::printf("EXPLAIN ANALYZE (SQL backend, clustering iteration 0):\n%s\n",
                explain.ToString().c_str());
  }

  // One pane of glass: every instrument in the process, Prometheus-style.
  std::printf("process metrics registry:\n%s", obs::DumpAll().c_str());

  if (!metrics_json_path.empty()) {
    Status s = obs::MetricsRegistry::Global().WriteJsonFile(metrics_json_path);
    std::printf("%s\n", s.ok() ? ("wrote " + metrics_json_path).c_str()
                               : s.ToString().c_str());
  }
  if (!trace_path.empty()) {
    Status s = tracer.WriteChromeJsonFile(trace_path);
    std::printf("%s\n", s.ok() ? ("wrote " + trace_path).c_str()
                               : s.ToString().c_str());
  }

  // ---- 6. Linger for curl -------------------------------------------------
  // With --serve_seconds the process stays up, trickling one query per 100ms
  // so /tracez, /statusz and the SLO table have live data to show.
  if (server != nullptr && serve_seconds > 0) {
    std::printf("serving debug endpoints for %.0fs (ctrl-c to stop early)\n",
                serve_seconds);
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(serve_seconds));
    size_t i = 0;
    while (std::chrono::steady_clock::now() < until) {
      (void)engine.Query({hot[i++ % hot.size()]});
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  return 0;
}
