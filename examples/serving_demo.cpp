// Serving demo: the e# online stage as a live, concurrent service.
//
//  1. Build a world (universe, query log, tweet corpus) and run the offline
//     pipeline — week 1's artifacts.
//  2. Publish them to a SnapshotManager and start a ServingEngine.
//  3. Fire mixed traffic at the engine from client threads: repeated hot
//     queries (cache hits), scattered tail queries (misses), an unknown
//     query (baseline degradation).
//  4. Mid-traffic, run the weekly refresh (warm-started offline pipeline,
//     §6.3) and hot-swap the store under the live load.
//  5. Print the serving metrics dashboard.
//
// Build and run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/serving_demo

#include <cstdio>
#include <thread>
#include <vector>

#include "esharp/pipeline.h"
#include "microblog/generator.h"
#include "querylog/generator.h"
#include "serving/engine.h"

using namespace esharp;

int main() {
  // ---- 1. Week 1: simulate inputs and run the offline pipeline ------------
  querylog::UniverseOptions universe_options;
  universe_options.num_categories = 3;
  universe_options.domains_per_category = 12;
  universe_options.seed = 11;
  auto universe = querylog::TopicUniverse::Generate(universe_options);
  if (!universe.ok()) return 1;

  querylog::GeneratorOptions log_options;
  log_options.seed = 12;
  log_options.head_impressions = 30000;
  auto week1 = GenerateQueryLog(*universe, log_options);
  if (!week1.ok()) return 1;

  core::OfflineOptions offline_options;
  offline_options.extraction.min_similarity = 0.15;
  auto artifacts = RunOfflinePipeline(week1->log, offline_options);
  if (!artifacts.ok()) return 1;

  microblog::CorpusOptions corpus_options;
  corpus_options.seed = 13;
  corpus_options.casual_users = 300;
  auto corpus = GenerateCorpus(*universe, corpus_options);
  if (!corpus.ok()) return 1;

  std::printf("offline week 1: %zu queries -> %zu communities\n",
              artifacts->similarity_graph.num_vertices(),
              artifacts->store.num_communities());

  // ---- 2. Publish week 1 and start serving --------------------------------
  serving::SnapshotManager manager(&*corpus);
  uint64_t v1 = manager.Publish(std::make_shared<const community::CommunityStore>(
      artifacts->store));
  std::printf("published snapshot v%llu\n\n",
              static_cast<unsigned long long>(v1));

  serving::ServingOptions serving_options;
  serving_options.num_threads = 4;
  serving_options.max_in_flight = 128;
  serving::ServingEngine engine(&manager, serving_options);

  // ---- 3. Mixed traffic from client threads -------------------------------
  // Hot queries: the head terms of the first few domains (cache-friendly).
  // Cold queries: one term per remaining domain (mostly misses). Plus an
  // unknown query that degrades to the plain baseline.
  std::vector<std::string> hot, cold;
  for (size_t d = 0; d < universe->domains().size(); ++d) {
    const querylog::TopicDomain& dom = universe->domain(d);
    (d < 4 ? hot : cold).push_back(dom.terms[0]);
  }

  auto client = [&engine](const std::vector<std::string>& queries,
                          size_t rounds) {
    for (size_t r = 0; r < rounds; ++r) {
      for (const std::string& q : queries) {
        auto response = engine.Query({q});
        (void)response;
      }
    }
  };

  std::thread hot_client(client, hot, 25);
  std::thread cold_client(client, cold, 5);
  std::thread misc_client([&engine] {
    for (int i = 0; i < 20; ++i) {
      (void)engine.Query({"completely unknown query zz"});
    }
  });

  // ---- 4. The weekly refresh hot-swaps mid-traffic ------------------------
  // Week 2 re-runs the offline pipeline warm-started from week 1's
  // communities (§6.3) and republishes — while the clients above keep
  // querying. Readers in flight finish against week 1; new requests see
  // week 2; stale cache entries are invalidated by version.
  log_options.seed = 14;  // next week's log differs
  auto week2 = GenerateQueryLog(*universe, log_options);
  if (!week2.ok()) return 1;
  offline_options.previous_store = &artifacts->store;
  auto refreshed = RunOfflinePipeline(week2->log, offline_options);
  if (!refreshed.ok()) return 1;
  uint64_t v2 = manager.Publish(std::make_shared<const community::CommunityStore>(
      refreshed->store));
  std::printf("hot-swapped to snapshot v%llu mid-traffic (%zu communities)\n",
              static_cast<unsigned long long>(v2),
              refreshed->store.num_communities());

  hot_client.join();
  cold_client.join();
  misc_client.join();

  // A post-swap query answers from the new generation.
  auto post = engine.Query({hot[0], /*deadline_ms=*/-1, /*bypass_cache=*/true});
  if (post.ok()) {
    std::printf("post-swap query '%s': %zu experts from snapshot v%llu\n\n",
                hot[0].c_str(), post->experts.size(),
                static_cast<unsigned long long>(post->snapshot_version));
  }

  // ---- 5. The dashboard ---------------------------------------------------
  std::printf("serving metrics:\n%s", engine.metrics().ToTable().c_str());
  serving::CacheStats cache = engine.cache_stats();
  std::printf("cache: %llu hits, %llu misses, %llu invalidated/expired\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.expirations));
  return 0;
}
