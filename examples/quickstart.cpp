// Quickstart: the complete e# flow in one small program.
//
//  1. Simulate a topic universe, a month of search logs and a tweet corpus
//     (stand-ins for the proprietary data the paper uses).
//  2. Run the offline pipeline: click vectors -> similarity graph ->
//     community detection -> indexed community store.
//  3. Ask for experts on a topic, with and without query expansion.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "esharp/esharp.h"
#include "esharp/pipeline.h"
#include "microblog/generator.h"
#include "querylog/generator.h"

using namespace esharp;

int main() {
  // ---- 1. Simulated inputs ------------------------------------------------
  querylog::UniverseOptions universe_options;
  universe_options.num_categories = 3;
  universe_options.domains_per_category = 20;
  universe_options.seed = 1;
  auto universe = querylog::TopicUniverse::Generate(universe_options);
  if (!universe.ok()) {
    std::printf("universe: %s\n", universe.status().ToString().c_str());
    return 1;
  }

  querylog::GeneratorOptions log_options;
  log_options.seed = 2;
  auto generated = GenerateQueryLog(*universe, log_options);
  if (!generated.ok()) {
    std::printf("log: %s\n", generated.status().ToString().c_str());
    return 1;
  }
  std::printf("Simulated query log: %zu distinct queries, %zu click records\n",
              generated->log.num_queries(), generated->log.num_records());

  microblog::CorpusOptions corpus_options;
  corpus_options.seed = 3;
  corpus_options.casual_users = 400;
  auto corpus = GenerateCorpus(*universe, corpus_options);
  if (!corpus.ok()) {
    std::printf("corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("Simulated microblog: %zu users, %zu tweets\n",
              corpus->num_users(), corpus->num_tweets());

  // ---- 2. Offline: build the collection of expertise domains --------------
  core::OfflineOptions offline_options;
  auto artifacts = RunOfflinePipeline(generated->log, offline_options);
  if (!artifacts.ok()) {
    std::printf("offline: %s\n", artifacts.status().ToString().c_str());
    return 1;
  }
  std::printf("Offline pipeline: %zu queries -> %zu communities\n",
              artifacts->similarity_graph.num_vertices(),
              artifacts->store.num_communities());

  // ---- 3. Online: find experts -------------------------------------------
  core::ESharp esharp(&artifacts->store, &*corpus);
  const char* query = "49ers";

  core::QueryExpansion expansion = esharp.Expand(query);
  std::printf("\nQuery '%s' expands to %zu terms:\n  ", query,
              expansion.terms.size());
  for (size_t i = 0; i < expansion.terms.size() && i < 8; ++i) {
    std::printf("%s%s", i ? ", " : "", expansion.terms[i].c_str());
  }
  std::printf("%s\n", expansion.terms.size() > 8 ? ", ..." : "");

  auto baseline = esharp.detector().FindExperts(query);
  auto expanded = esharp.FindExperts(query);
  if (!baseline.ok() || !expanded.ok()) return 1;

  std::printf("\nBaseline (Pal & Counts) found %zu experts;"
              " e# found %zu experts.\n",
              baseline->size(), expanded->size());
  std::printf("\nTop e# experts for '%s':\n", query);
  for (size_t i = 0; i < expanded->size() && i < 5; ++i) {
    const auto& profile = corpus->user((*expanded)[i].user);
    std::printf("  %-24s score=%.2f  (%s)\n", profile.screen_name.c_str(),
                (*expanded)[i].score, profile.description.c_str());
  }
  return 0;
}
