// Topic explorer: browse the collection of expertise domains the offline
// stage mines from the (simulated) query log — the artifact the paper
// stores in SQL Server and queries "in a few milliseconds".
//
// Prints the largest communities with their closest neighbors, then runs a
// few interactive-style lookups, including misspelled and hashtagged
// variants, to show that the matching is robust because the log itself
// carries the variants ("terms often come in hundreds of variants ... This
// improves the flexibility of the matching at little computational cost",
// §5).

#include <algorithm>
#include <cstdio>

#include "esharp/pipeline.h"
#include "querylog/generator.h"

using namespace esharp;

int main() {
  querylog::UniverseOptions universe_options;
  universe_options.seed = 77;
  auto universe = querylog::TopicUniverse::Generate(universe_options);
  if (!universe.ok()) return 1;

  querylog::GeneratorOptions log_options;
  log_options.seed = 78;
  auto generated = GenerateQueryLog(*universe, log_options);
  if (!generated.ok()) return 1;

  core::OfflineOptions offline_options;
  auto artifacts = RunOfflinePipeline(generated->log, offline_options);
  if (!artifacts.ok()) return 1;
  const community::CommunityStore& store = artifacts->store;

  // Largest communities first.
  std::vector<size_t> order(store.num_communities());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return store.community(a).terms.size() > store.community(b).terms.size();
  });

  std::printf("Collection: %zu communities over %zu queries\n",
              store.num_communities(),
              artifacts->similarity_graph.num_vertices());

  std::printf("\nTop 5 expertise domains by vocabulary size:\n");
  for (size_t i = 0; i < 5 && i < order.size(); ++i) {
    const community::Community& c = store.community(order[i]);
    std::printf("\n#%zu (%zu terms): ", i + 1, c.terms.size());
    for (size_t t = 0; t < c.terms.size() && t < 8; ++t) {
      std::printf("%s%s", t ? ", " : "", c.terms[t].c_str());
    }
    if (c.terms.size() > 8) std::printf(", ...");
    std::printf("\n  nearest domains:");
    for (const auto& [neighbor, weight] :
         store.ClosestCommunities(order[i], 2)) {
      const community::Community& n = store.community(neighbor);
      std::printf(" ['%s'+%zu terms, w=%.2f]",
                  n.terms.empty() ? "?" : n.terms[0].c_str(),
                  n.terms.size() - 1, weight);
    }
    std::printf("\n");
  }

  std::printf("\nLookups (exact match after lower-casing, variants included"
              " because the log contains them):\n");
  for (const char* probe :
       {"49ers", "49ERS", "nasdaq", "diabetes", "no such topic"}) {
    auto found = store.Find(probe);
    if (found.ok()) {
      std::printf("  '%s' -> community of '%s' (%zu terms)\n", probe,
                  (*found)->terms.front().c_str(), (*found)->terms.size());
    } else {
      std::printf("  '%s' -> no community (falls back to plain search)\n",
                  probe);
    }
  }
  return 0;
}
