// The paper's core systems idea, step by step: community detection as
// declarative relational plans (Fig. 4 of the paper), executed on the
// bundled mini SQL engine.
//
// This example builds the similarity graph of a toy world, registers the
// `graph` and `communities` tables, then runs ONE iteration of the
// algorithm statement by statement, printing each plan (EXPLAIN) and its
// materialized result, so you can see exactly what the production pipeline
// ships to Hive/SCOPE. It then runs the full loop via DetectCommunitiesSql
// and cross-checks against the native implementation.

#include <cstdio>

#include "community/parallel_cd.h"
#include "community/sql_cd.h"
#include "community/store.h"
#include "sqlengine/catalog.h"
#include "sqlengine/plan.h"

using namespace esharp;
using namespace esharp::sql;

namespace {

// The fictive graph of the paper's Fig. 3: {Football, NFL, 49ers} densely
// connected, {San Francisco, SF Bridge, California} densely connected, one
// weak link between the groups.
graph::Graph Fig3Graph() {
  graph::Graph g;
  auto football = g.AddVertex("football");
  auto nfl = g.AddVertex("nfl");
  auto niners = g.AddVertex("49ers");
  auto sf = g.AddVertex("san francisco");
  auto bridge = g.AddVertex("sf bridge");
  auto california = g.AddVertex("california");
  (void)g.AddEdge(football, nfl, 1.0);
  (void)g.AddEdge(football, niners, 0.9);
  (void)g.AddEdge(nfl, niners, 0.8);
  (void)g.AddEdge(sf, bridge, 1.0);
  (void)g.AddEdge(sf, california, 0.9);
  (void)g.AddEdge(bridge, california, 0.8);
  (void)g.AddEdge(niners, sf, 0.15);  // weak cross-topic link
  g.Finalize();
  return g;
}

Table GraphTable(const graph::Graph& g) {
  TableBuilder b({{"query1", DataType::kString},
                  {"query2", DataType::kString},
                  {"distance", DataType::kDouble}});
  for (const graph::Edge& e : g.edges()) {
    b.AddRow({Value::String(g.label(e.u)), Value::String(g.label(e.v)),
              Value::Double(e.weight)});
    b.AddRow({Value::String(g.label(e.v)), Value::String(g.label(e.u)),
              Value::Double(e.weight)});
  }
  return b.Build();
}

Table SingletonCommunities(const graph::Graph& g) {
  TableBuilder b({{"comm_name", DataType::kString},
                  {"query", DataType::kString}});
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    b.AddRow({Value::String(g.label(v)), Value::String(g.label(v))});
  }
  return b.Build();
}

void Show(const char* title, const Plan& plan, const Table& result) {
  std::printf("\n--- %s ---\n%s%s", title, plan.Explain().c_str(),
              result.ToString(12).c_str());
}

}  // namespace

int main() {
  graph::Graph g = Fig3Graph();
  const double total_weight = g.TotalWeight();

  Catalog catalog;
  catalog.Register("graph", GraphTable(g));
  catalog.Register("communities", SingletonCommunities(g));
  Executor executor;

  ScalarUdf modul_gain = [total_weight](const std::vector<Value>& args)
      -> Result<Value> {
    double d1 = *args[0].AsDouble(), d2 = *args[1].AsDouble();
    double w = *args[2].AsDouble();
    return Value::Double(w - d1 * d2 / (2.0 * total_weight));
  };

  // Step 0: attach each edge endpoint to its community.
  Plan edges_c =
      Plan::Scan("graph")
          .Join(Plan::Scan("communities"), {"query1"}, {"query"})
          .Join(Plan::Scan("communities"), {"query2"}, {"query"})
          .Select({{Col("comm_name"), "comm1"},
                   {Col("r_comm_name"), "comm2"},
                   {Col("distance"), "w"}});

  Plan degrees = edges_c.GroupBy({"comm1"}, {SumOf(Col("w"), "degree")})
                     .Select({{Col("comm1"), "comm"},
                              {Col("degree"), "degree"}});
  Show("community degree sums", degrees, *executor.Execute(degrees, catalog));

  // Step 1 (Fig. 4 "neighbors"): positive-gain community pairs.
  Plan neighbors =
      edges_c.Where(Ne(Col("comm1"), Col("comm2")))
          .GroupBy({"comm1", "comm2"}, {SumOf(Col("w"), "w12")})
          .Join(degrees, {"comm1"}, {"comm"})
          .Join(degrees, {"comm2"}, {"comm"})
          .Select({{Col("comm1"), "comm1"},
                   {Col("comm2"), "comm2"},
                   {Udf("ModulGain", modul_gain,
                        {Col("degree"), Col("r_degree"), Col("w12")}),
                    "gain"}})
          .Where(Gt(Col("gain"), LitDouble(0.0)));
  Show("neighbors (DeltaMod > 0)", neighbors,
       *executor.Execute(neighbors.OrderBy({"comm1", "comm2"}), catalog));

  // Step 2 (Fig. 4 "partitions"): keep the closest neighborhood, argmax.
  Plan partitions = neighbors.GroupBy(
      {"comm1"}, {ArgMaxOf(Col("gain"), Col("comm2"), "best")});
  Show("partitions (argmax gain)", partitions,
       *executor.Execute(partitions.OrderBy({"comm1"}), catalog));

  // Full loop, then cross-check against the native implementation.
  auto sql_result = community::DetectCommunitiesSql(g);
  auto native_result = community::DetectCommunitiesParallel(g);
  if (!sql_result.ok() || !native_result.ok()) return 1;

  std::printf("\n--- final communities (SQL engine) ---\n");
  community::CommunityStore store =
      community::CommunityStore::Build(g, sql_result->assignment);
  for (size_t c = 0; c < store.num_communities(); ++c) {
    std::printf("community %zu: ", c);
    for (const std::string& t : store.community(c).terms) {
      std::printf("[%s] ", t.c_str());
    }
    std::printf("\n");
  }
  bool identical = sql_result->assignment.size() ==
                   native_result->assignment.size();
  for (graph::VertexId v = 0; identical && v < g.num_vertices(); ++v) {
    for (graph::VertexId u = 0; u < v; ++u) {
      bool sql_same = sql_result->assignment[u] == sql_result->assignment[v];
      bool nat_same =
          native_result->assignment[u] == native_result->assignment[v];
      if (sql_same != nat_same) identical = false;
    }
  }
  std::printf("\nSQL and native detection agree: %s\n",
              identical ? "yes" : "NO (bug!)");
  return identical ? 0 : 1;
}
