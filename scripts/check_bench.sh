#!/usr/bin/env bash
# Regression gate over every committed BENCH_*.json baseline: re-runs each
# JSON-emitting bench at its baseline configuration into a temp dir, then
# bench_diff's the fresh snapshot against the committed one. Exits non-zero
# if any bench fails to run or any diff reports a regression beyond the
# threshold (bench_diff's default unless THRESHOLD_PCT is set).
#
# Usage: scripts/check_bench.sh [build_dir]       (default: build)
#   THRESHOLD_PCT=25 scripts/check_bench.sh       # loosen for noisy boxes
#   ATTEMPTS=1 scripts/check_bench.sh             # disable the retry
#
# A baseline only counts as regressed after ATTEMPTS (default 3) fresh
# runs, diffed best-of (bench_diff merges repeated runs per metric, so
# each metric needs just one unperturbed sample). Transient CPU
# contention — another build, a scraper, the CI agent itself — skews a
# whole run and then vanishes; a real regression survives the best-of
# merge across every attempt. On small (single-core) machines this is
# what makes the default threshold usable at all.
#
# Keep this list in sync with EXPERIMENTS.md ("Bench snapshots"): one line
# per committed baseline, naming the bench invocation that regenerates it.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
BENCH_DIR="$BUILD_DIR/bench"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

if [ ! -x "$BENCH_DIR/bench_diff" ]; then
  echo "error: $BENCH_DIR/bench_diff not built (cmake --build $BUILD_DIR)" >&2
  exit 2
fi

DIFF_ARGS=()
if [ -n "${THRESHOLD_PCT:-}" ]; then
  DIFF_ARGS+=("--threshold_pct=$THRESHOLD_PCT")
fi

ATTEMPTS="${ATTEMPTS:-3}"
failures=0

# run_one <baseline.json> <bench binary> [bench args...]
run_one() {
  baseline="$REPO_ROOT/$1"
  bench="$2"
  shift 2
  fresh="$OUT_DIR/$(basename "$baseline")"
  if [ ! -f "$baseline" ]; then
    echo "SKIP  $(basename "$baseline"): no committed baseline"
    return
  fi
  attempt=1
  runs=()
  while :; do
    fresh="$OUT_DIR/$(basename "$baseline").$attempt"
    echo "RUN   $bench $* --json=$fresh (attempt $attempt/$ATTEMPTS)"
    if ! "$BENCH_DIR/$bench" "$@" "--json=$fresh" > "$OUT_DIR/$bench.log" 2>&1
    then
      # Self-enforcing benches (--overhead_budget_pct, speedup floors)
      # abort the whole run when a measurement lands outside budget — on a
      # contended box that is the same transient skew the best-of retry
      # exists for, so burn an attempt instead of failing outright.
      if [ "$attempt" -ge "$ATTEMPTS" ]; then
        echo "FAIL  $bench exited non-zero; log tail:" >&2
        tail -20 "$OUT_DIR/$bench.log" >&2
        failures=$((failures + 1))
        return
      fi
      echo "RETRY $bench exited non-zero (contention?), rerunning; log tail:"
      tail -3 "$OUT_DIR/$bench.log"
      attempt=$((attempt + 1))
      continue
    fi
    runs+=("$fresh")
    if "$BENCH_DIR/bench_diff" "$baseline" "${runs[@]}" \
         ${DIFF_ARGS[@]+"${DIFF_ARGS[@]}"} > "$OUT_DIR/$bench.diff" 2>&1
    then
      cat "$OUT_DIR/$bench.diff"
      echo "OK    $(basename "$baseline")"
      return
    fi
    if [ "$attempt" -ge "$ATTEMPTS" ]; then
      cat "$OUT_DIR/$bench.diff"
      echo "FAIL  $(basename "$baseline"): regression after best-of-$ATTEMPTS" >&2
      failures=$((failures + 1))
      return
    fi
    echo "RETRY $(basename "$baseline"): dirty best-of diff, rerunning (contention?)"
    attempt=$((attempt + 1))
  done
}

# The serving/cluster runs pin workloads large enough that per-run walls
# are well past scheduler-hiccup scale; the committed baselines are
# generated with these exact arguments (EXPERIMENTS.md).
run_one BENCH_serving.json  serving_load 4 3000 2000
run_one BENCH_cluster.json  cluster_load 4 1000 --overhead_budget_pct=2
run_one BENCH_pipeline.json scaling_pipeline
run_one BENCH_sql.json      micro_sql
run_one BENCH_online.json   micro_engine
run_one BENCH_coldstart.json cold_start --snapshot="$OUT_DIR/coldstart.esnap"
run_one BENCH_obs.json      micro_obs 5000 2000000 --overhead_budget_pct=2
run_one BENCH_ingest.json   ingest_bench

if [ "$failures" -ne 0 ]; then
  echo "check_bench: $failures baseline(s) regressed or failed" >&2
  exit 1
fi
echo "check_bench: all baselines clean"
