#!/usr/bin/env bash
# Portable-path gate: configures a separate build tree with the SIMD
# kernels compiled out (-DESHARP_SIMD=OFF — scalar twins only, no
# target-attribute variants, no runtime dispatch) and runs the full test
# suite against it. Every bit-identity, snapshot and serving test must
# pass on the pure scalar path, so a machine without AVX2/SSE4.2 — or a
# future port — can never silently rot.
#
# Usage: scripts/check_simd_fallback.sh [build_dir]   (default: build-nosimd)
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-nosimd}"

echo "== configure (-DESHARP_SIMD=OFF) -> $BUILD_DIR"
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DESHARP_SIMD=OFF

echo "== build"
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest (full suite, scalar kernels only)"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)"

echo "check_simd_fallback: scalar fallback build is clean"
