#!/usr/bin/env bash
# Compile-out gate for the observability layer: configures a separate
# build tree with -DESHARP_OBS_OFF=ON (metrics, spans, the time-series
# sampler and the flight recorder all compile to no-ops) and runs the
# full test suite against it. Every suite carries #if ESHARP_OBS_ENABLED
# guards asserting the no-op behavior — Sample() retains nothing,
# Trigger() refuses, exporters stay empty — so the stripped build can
# never silently rot, and the "obs off means obs free" claim stays
# enforced rather than aspirational.
#
# Usage: scripts/check_obsoff.sh [build_dir]   (default: build-obsoff)
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-obsoff}"

echo "== configure (-DESHARP_OBS_OFF=ON) -> $BUILD_DIR"
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DESHARP_OBS_OFF=ON

echo "== build"
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest (full suite, observability compiled out)"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)"

echo "check_obsoff: obs-off build is clean"
